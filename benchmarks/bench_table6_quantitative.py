"""Table 6 — quantitative coverage / influence of every query method."""

from __future__ import annotations

from _harness import BENCH_EFFECTIVENESS, record

from repro.experiments.tables import quantitative_table


def test_table6_quantitative(benchmark):
    """Regenerate Table 6 over frequency-weighted keyword workloads."""
    table = benchmark.pedantic(
        quantitative_table, kwargs=dict(config=BENCH_EFFECTIVENESS), rounds=1, iterations=1
    )
    record("table6_quantitative", table.render(precision=4))

    # Shape check against the paper: k-SIR achieves the highest coverage and
    # the highest influence on every dataset.
    ksir_column = table.headers.index("ksir")
    for row in table.rows:
        values = row[2:]
        assert row[ksir_column] == max(values), f"k-SIR not best for {row[0]} {row[1]}"
