"""Table 6 — quantitative coverage / influence of every query method.

Thin wrapper over the ``table6_quantitative`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_table6_quantitative.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run table6_quantitative``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("table6_quantitative")

if __name__ == "__main__":
    sys.exit(main())
