"""Figure 13 — query time as the sliding-window length T varies."""

from __future__ import annotations

import numpy as np
from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure13_time_vs_window


def test_figure13_time_vs_window(benchmark):
    """Regenerate Figure 13 (query time in ms vs window length in hours)."""
    config = BENCH_EFFICIENCY.with_overrides(num_queries=4)
    figure = benchmark.pedantic(
        figure13_time_vs_window, kwargs=dict(config=config), rounds=1, iterations=1
    )
    record("figure13_time_vs_window", figure.render(precision=3))

    # Shape checks: query time grows with T for every method (more active
    # elements), and the index-assisted methods keep beating the baselines.
    for dataset, panel in figure.panels.items():
        for method, series in panel.items():
            assert series[-1] >= series[0] * 0.5, f"{method} trend broken on {dataset}"
        assert np.mean(panel["mttd"]) < np.mean(panel["sieve"]), dataset
