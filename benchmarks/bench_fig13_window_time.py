"""Figure 13 — query time as the sliding-window length T varies.

Thin wrapper over the ``fig13_window_time`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_fig13_window_time.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run fig13_window_time``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("fig13_window_time")

if __name__ == "__main__":
    sys.exit(main())
