"""Ablation — bisect-backed ranked-list maintenance vs naive re-sorting.

Thin wrapper over the ``ablation_ranked_list`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_ablation_ranked_list.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run ablation_ranked_list``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("ablation_ranked_list")

if __name__ == "__main__":
    sys.exit(main())
