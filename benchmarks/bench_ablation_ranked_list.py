"""Ablation — bisect-backed ranked-list maintenance vs naive re-sorting."""

from __future__ import annotations

from _harness import record

from repro.experiments.ablations import ranked_list_ablation


def test_ablation_ranked_list_maintenance(benchmark):
    """Quantify what the order-maintaining ranked-list structure buys."""
    result = benchmark.pedantic(
        ranked_list_ablation,
        kwargs=dict(dataset_name="twitter-small", max_operations=15000),
        rounds=1,
        iterations=1,
    )
    record("ablation_ranked_list", result.render())
    # The sorted list must not be slower than re-sorting everything.
    assert result.variant_value <= result.baseline_value
