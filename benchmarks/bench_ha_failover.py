"""HA failover — kill a shard mid-stream, measure recovery and verify zero loss.

Thin wrapper over the ``ha_failover`` spec in the :mod:`repro.bench`
registry.  One run drives a supervised process-sharded cluster through a
synthetic stream, SIGKILLs a shard worker mid-stream and measures how long
the supervisor takes to restart, restore and WAL-replay it; the check
asserts the recovered cluster answers a query workload identically to an
uninterrupted single-node run and that delta checkpoints are smaller than
full snapshots.  Run as a script (``python benchmarks/bench_ha_failover.py
[--tier tiny|full] [--seed N] [--output-dir DIR]``) or through
``repro-ksir bench run ha_failover``.  Under pytest the tiny tier is
executed as a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("ha_failover")

if __name__ == "__main__":
    sys.exit(main())
