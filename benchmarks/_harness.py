"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (scaled to
the synthetic ``-small`` datasets), records the rendered artefact under
``benchmarks/results/`` and prints it, so a single
``pytest benchmarks/ --benchmark-only`` run leaves a readable copy of every
reproduced table/figure on disk alongside the timing numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.config import (
    EffectivenessConfig,
    EfficiencyConfig,
    SweepValues,
)

#: Directory where rendered tables/figures are written.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Benchmark-sized efficiency configuration: the paper's sweeps over the three
#: laptop-scale datasets, with a reduced number of queries per sweep point so
#: the whole harness finishes in minutes.
BENCH_EFFICIENCY = EfficiencyConfig(
    num_queries=5,
    sweeps=SweepValues(),
)

#: Benchmark-sized effectiveness configuration (Tables 5 and 6).
BENCH_EFFECTIVENESS = EffectivenessConfig(
    num_user_study_queries=10,
    num_quantitative_queries=12,
)

#: A single-dataset configuration for the micro-benchmarks.
MICRO_EFFICIENCY = EfficiencyConfig(datasets=("twitter-small",), num_queries=5)


def record(name: str, text: str) -> str:
    """Print a rendered artefact and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]", file=sys.stderr)
    return text
