"""Table 3 — dataset statistics of the three synthetic stand-in streams."""

from __future__ import annotations

from _harness import BENCH_EFFECTIVENESS, record

from repro.experiments.tables import dataset_statistics_table


def test_table3_dataset_statistics(benchmark):
    """Regenerate Table 3 and record the per-dataset statistics."""
    table = benchmark.pedantic(
        dataset_statistics_table,
        kwargs=dict(datasets=BENCH_EFFECTIVENESS.datasets, seed=BENCH_EFFECTIVENESS.seed),
        rounds=1,
        iterations=1,
    )
    text = record("table3_dataset_statistics", table.render())
    assert "aminer-small" in text
    assert len(table.rows) == len(BENCH_EFFECTIVENESS.datasets)
