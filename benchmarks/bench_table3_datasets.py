"""Table 3 — dataset statistics of the three synthetic stand-in streams.

Thin wrapper over the ``table3_datasets`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_table3_datasets.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run table3_datasets``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("table3_datasets")

if __name__ == "__main__":
    sys.exit(main())
