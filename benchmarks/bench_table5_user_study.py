"""Table 5 — the simulated user study (representativeness / impact ratings).

Thin wrapper over the ``table5_user_study`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_table5_user_study.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run table5_user_study``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("table5_user_study")

if __name__ == "__main__":
    sys.exit(main())
