"""Table 5 — the simulated user study (representativeness / impact ratings)."""

from __future__ import annotations

from _harness import BENCH_EFFECTIVENESS, record

from repro.experiments.tables import user_study_table


def test_table5_user_study(benchmark):
    """Regenerate Table 5 with simulated evaluators over trending-topic queries."""
    table = benchmark.pedantic(
        user_study_table, kwargs=dict(config=BENCH_EFFECTIVENESS), rounds=1, iterations=1
    )
    text = record("table5_user_study", table.render(precision=2))

    # Shape check against the paper: k-SIR obtains (close to) the best impact
    # rating on every dataset and is never the worst on representativeness.
    header = table.headers
    ksir_column = header.index("ksir")
    for row in table.rows:
        values = row[2:]
        if row[1] == "Impact":
            assert row[ksir_column] >= max(values) - 0.5
        else:
            assert row[ksir_column] > min(values)
    assert "kappa" in text
