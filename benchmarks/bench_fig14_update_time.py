"""Figure 14 — per-element ranked-list update time vs z and vs T.

Thin wrapper over the ``fig14_update_time`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_fig14_update_time.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run fig14_update_time``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("fig14_update_time")

if __name__ == "__main__":
    sys.exit(main())
