"""Figure 14 — per-element ranked-list update time vs z and vs T."""

from __future__ import annotations

from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure14_update_time


def test_figure14_update_time(benchmark):
    """Regenerate Figure 14 (ranked-list maintenance cost per element)."""
    figure = benchmark.pedantic(
        figure14_update_time, kwargs=dict(config=BENCH_EFFICIENCY), rounds=1, iterations=1
    )
    record("figure14_update_time", figure.render(precision=4))

    # Shape check: maintenance stays cheap (well under a few milliseconds per
    # element on every dataset; the paper reports < 0.3 ms on its testbed).
    for panel_name, panel in figure.panels.items():
        for value in panel["update"]:
            assert value < 5.0, f"update time too high in {panel_name}"
