"""Micro-benchmarks — single-query latency of every k-SIR processing algorithm.

Unlike the table/figure benches (which run once and record the rendered
artefact), these use pytest-benchmark's statistical timing to measure the
per-query latency of each algorithm on the default configuration
(twitter-small, k = 10, ε = 0.1), which is the number behind Figure 9's
default point.
"""

from __future__ import annotations

import pytest
from _harness import MICRO_EFFICIENCY

from repro.experiments.runner import EfficiencyExperiment, prepare_processor

ALGORITHMS = ("topk", "mttd", "mtts", "celf", "sieve")


def _prepared():
    config = MICRO_EFFICIENCY
    dataset_name = config.datasets[0]
    scoring = config.scoring_for(dataset_name)
    dataset, processor = prepare_processor(
        dataset_name,
        seed=config.seed,
        window_length=config.window_length,
        bucket_length=config.bucket_length,
        lambda_weight=scoring.lambda_weight,
        eta=scoring.eta,
        replay_fraction=config.replay_fraction,
    )
    experiment = EfficiencyExperiment(dataset, processor, seed=config.seed)
    query = experiment.make_workload(1, k=config.k)[0]
    return processor, query


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_query_latency(benchmark, algorithm):
    """Latency of one k-SIR query with the given algorithm."""
    processor, query = _prepared()
    result = benchmark(processor.query, query, algorithm=algorithm, epsilon=0.1)
    assert len(result) <= query.k


def test_snapshot_construction_latency(benchmark):
    """Cost of building the frozen scoring snapshot of the active window."""
    processor, _query = _prepared()
    snapshot = benchmark(processor.snapshot)
    assert snapshot.active_count == processor.active_count
