"""Event-time ingest under disorder — throughput and watermark lag.

Thin wrapper over the ``stream_disorder`` spec in the :mod:`repro.bench`
registry.  Each scenario replays the same synthetic stream through the
engine's raw-event ingest (``KSIREngine.ingest``) at a different disorder
level (0/5/20% of elements delayed by up to two buckets); the check
asserts that nothing is dropped, the bucket grid matches the in-order
replay, and a panel of queries answers identically (within 1e-9) at every
level.  Run as a script (``python benchmarks/bench_stream_disorder.py
[--tier tiny|full] [--seed N] [--output-dir DIR]``) or through
``repro-ksir bench run stream_disorder``.  Under pytest the tiny tier is
executed as a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("stream_disorder")

if __name__ == "__main__":
    sys.exit(main())
