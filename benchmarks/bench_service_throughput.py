"""Service throughput — incremental standing-query maintenance vs naive re-run.

Thin wrapper over the ``service_throughput`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_service_throughput.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run service_throughput``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("service_throughput")

if __name__ == "__main__":
    sys.exit(main())
