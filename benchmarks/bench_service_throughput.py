"""Service throughput — incremental standing-query maintenance vs naive re-run.

100 standing queries are registered against a replayed synthetic stream with
many topics (so the per-topic dirty sets cover only a fraction of the topic
space per bucket).  Two engines replay the same stream:

* **incremental** — the scheduler re-evaluates only the standing queries
  whose topic support intersects the bucket's dirty topics;
* **naive** — every standing query is re-run on every bucket.

The recorded artefact reports the re-eval ratio, the sustained maintenance
throughput in query-bucket pairs per second and the incremental/naive
speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from _harness import record

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.datasets.profiles import get_profile
from repro.datasets.synthetic import SyntheticDataset, SyntheticStreamGenerator
from repro.service import ServiceEngine, ServiceMetrics

NUM_QUERIES = 100
SEED = 2019

#: A many-topic, small-bucket profile: per-bucket dirty sets then touch only
#: a fraction of the topic space, which is the regime standing-query serving
#: targets (many users, each monitoring a narrow topical interest).
SERVICE_PROFILE = replace(
    get_profile("tiny"),
    name="service-bench",
    num_elements=1_200,
    vocabulary_size=1_700,
    num_topics=120,
    duration=24 * 3600,
    reference_horizon=3 * 3600,
)

SERVICE_CONFIG = ProcessorConfig(
    window_length=6 * 3600,
    bucket_length=450,
    scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
)


@dataclass
class ServingRun:
    """Aggregates of one full serve over the stream."""

    mode: str
    metrics: ServiceMetrics

    def row(self) -> str:
        m = self.metrics
        return (
            f"{self.mode:<12} {m.evaluations:>7} {m.opportunities:>7} "
            f"{m.reeval_ratio:>7.3f} {m.latency_p50_ms:>8.3f} {m.latency_p99_ms:>8.3f} "
            f"{m.maintenance_seconds:>8.3f} {m.queries_per_sec:>10.1f}"
        )


def _serve(dataset: SyntheticDataset, incremental: bool) -> ServingRun:
    processor = KSIRProcessor(dataset.topic_model, SERVICE_CONFIG)
    with ServiceEngine(processor, incremental=incremental, max_workers=1) as engine:
        for i in range(NUM_QUERIES):
            engine.register(
                dataset.make_query(k=5, topic=i % SERVICE_PROFILE.num_topics),
                algorithm="mttd",
                epsilon=0.1,
            )
        engine.serve_stream(dataset.stream)
        return ServingRun(
            mode="incremental" if incremental else "naive", metrics=engine.metrics
        )


def _render(runs: Tuple[ServingRun, ServingRun]) -> str:
    incremental, naive = runs
    speedup = incremental.metrics.queries_per_sec / max(
        1e-9, naive.metrics.queries_per_sec
    )
    lines = [
        f"service throughput — {NUM_QUERIES} standing queries, "
        f"{incremental.metrics.buckets} buckets, z={SERVICE_PROFILE.num_topics}",
        f"{'mode':<12} {'evals':>7} {'pairs':>7} {'ratio':>7} "
        f"{'p50ms':>8} {'p99ms':>8} {'maint_s':>8} {'pairs/sec':>10}",
        incremental.row(),
        naive.row(),
        f"incremental vs naive: {naive.metrics.evaluations / max(1, incremental.metrics.evaluations):.2f}x "
        f"fewer evaluations, {speedup:.2f}x maintenance throughput",
    ]
    return "\n".join(lines)


def test_service_throughput(benchmark):
    """Incremental vs naive maintenance of 100 standing queries."""
    dataset = SyntheticStreamGenerator(SERVICE_PROFILE, seed=SEED).generate()

    def run_both() -> Tuple[ServingRun, ServingRun]:
        return _serve(dataset, incremental=True), _serve(dataset, incremental=False)

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record("service_throughput", _render(runs))

    incremental, naive = runs
    # The incremental scheduler must re-evaluate strictly fewer query-bucket
    # pairs than the naive baseline, while maintaining the same pairs...
    assert incremental.metrics.evaluations < naive.metrics.evaluations
    assert incremental.metrics.opportunities == naive.metrics.opportunities
    # ...and the saved evaluations translate into >= 3x maintenance throughput.
    speedup = incremental.metrics.queries_per_sec / naive.metrics.queries_per_sec
    assert speedup >= 3.0, f"throughput speedup {speedup:.2f}x below 3x"
