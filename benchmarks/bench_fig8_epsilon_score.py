"""Figure 8 — MTTS / MTTD result quality as the approximation parameter ε varies."""

from __future__ import annotations

from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure8_score_vs_epsilon


def test_figure8_score_vs_epsilon(benchmark):
    """Regenerate Figure 8 (representativeness score vs ε) with CELF as reference."""
    figure = benchmark.pedantic(
        figure8_score_vs_epsilon, kwargs=dict(config=BENCH_EFFICIENCY), rounds=1, iterations=1
    )
    record("figure8_score_vs_epsilon", figure.render(precision=4))

    # Shape check: at the default ε = 0.1 both methods are within a few
    # percent of CELF; larger ε trades quality for speed but never collapses
    # (the paper reports ≤ 5 % loss on its corpora; on the synthetic AMiner
    # stand-in MTTD's early termination costs more at ε ≥ 0.4, see
    # EXPERIMENTS.md).
    for dataset, panel in figure.panels.items():
        celf = panel["celf"][0]
        for method in ("mtts", "mttd"):
            assert panel[method][0] >= 0.95 * celf, (
                f"{method} lost too much quality at the default epsilon on {dataset}"
            )
            for value in panel[method]:
                assert value >= 0.75 * celf, f"{method} collapsed on {dataset}"
