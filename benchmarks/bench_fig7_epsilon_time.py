"""Figure 7 — MTTS / MTTD query time as the approximation parameter ε varies."""

from __future__ import annotations

from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure7_time_vs_epsilon


def test_figure7_time_vs_epsilon(benchmark):
    """Regenerate Figure 7 (query time in ms vs ε) on all three datasets."""
    figure = benchmark.pedantic(
        figure7_time_vs_epsilon, kwargs=dict(config=BENCH_EFFICIENCY), rounds=1, iterations=1
    )
    record("figure7_time_vs_epsilon", figure.render(precision=3))

    # Shape check: MTTS gets faster as ε grows (fewer candidates); the paper
    # reports a pronounced drop from ε = 0.1 to ε = 0.5.
    for dataset, panel in figure.panels.items():
        mtts = panel["mtts"]
        assert mtts[-1] <= mtts[0] * 1.1, f"MTTS time did not drop with ε on {dataset}"
