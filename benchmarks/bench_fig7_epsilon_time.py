"""Figure 7 — MTTS / MTTD query time as the approximation parameter ε varies.

Thin wrapper over the ``fig7_epsilon_time`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_fig7_epsilon_time.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run fig7_epsilon_time``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("fig7_epsilon_time")

if __name__ == "__main__":
    sys.exit(main())
