"""Serving-tier load — thousands of concurrent REST + WebSocket clients.

Thin wrapper over the ``server_load`` spec in the :mod:`repro.bench` registry.
One run boots the full HTTP/WebSocket stack in-process, registers standing
queries over REST, opens a fleet of WebSocket subscribers and ingests stream
buckets while REST readers hammer the query endpoints; the check asserts that
every result-changing bucket's delta reached every subscriber of the updated
query.  Run as a script (``python benchmarks/bench_server_load.py [--tier
tiny|full] [--seed N] [--output-dir DIR]``) or through ``repro-ksir bench run
server_load``.  Under pytest the tiny tier is executed as a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("server_load")

if __name__ == "__main__":
    sys.exit(main())
