"""Figure 12 — query time as the number of topics z varies.

Thin wrapper over the ``fig12_topics_time`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_fig12_topics_time.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run fig12_topics_time``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("fig12_topics_time")

if __name__ == "__main__":
    sys.exit(main())
