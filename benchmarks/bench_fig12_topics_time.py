"""Figure 12 — query time as the number of topics z varies."""

from __future__ import annotations

from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import INDEXED_METHODS, figure12_time_vs_topics

# The full five-method sweep is dominated by SieveStreaming; the paper's key
# message for Figure 12 is the trend of the index-assisted methods, so the
# bench sweeps MTTS/MTTD plus CELF as the batch reference.
METHODS = tuple(INDEXED_METHODS) + ("celf",)


def test_figure12_time_vs_topics(benchmark):
    """Regenerate Figure 12 (query time in ms vs number of topics)."""
    config = BENCH_EFFICIENCY.with_overrides(num_queries=4)
    figure = benchmark.pedantic(
        figure12_time_vs_topics,
        kwargs=dict(config=config, methods=METHODS),
        rounds=1,
        iterations=1,
    )
    record("figure12_time_vs_topics", figure.render(precision=3))

    # Shape check: with more topics the per-topic lists get shorter, so the
    # index-assisted methods do not get slower as z grows (the paper reports
    # falling query times except for one uptick on AMiner at z = 250).
    for dataset, panel in figure.panels.items():
        for method in INDEXED_METHODS:
            series = panel[method]
            assert min(series[1:]) <= series[0] * 1.5, (
                f"{method} query time exploded with z on {dataset}"
            )
