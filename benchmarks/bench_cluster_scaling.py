"""Cluster scaling — sharded ingest and query throughput vs the single node.

The same synthetic stream is replayed through one ``KSIRProcessor`` and
through ``ClusterCoordinator`` instances at 1/2/4/8 shards, then a fixed
query workload is answered on every configuration.

**How ingest throughput is measured.**  Each shard's processor times its own
``process_bucket`` calls.  The fan-out is forced to the deterministic
``serial`` backend so those per-shard busy times are true solo CPU times —
with the thread backend on a GIL interpreter, concurrent shards would charge
each other's GIL waits to their own clocks.  The *aggregate* ingest
throughput of an ``N``-shard cluster is then the sum of the per-shard rates
(home elements / shard busy seconds): the capacity the cluster sustains when
every shard owns a core or a machine, which is the deployment the layer
exists for.  Wall-clock replay time on this (possibly single-core) machine
is reported alongside, unaggregated and honest.

The sharding tax is visible in the same table: replicating followers to
their parents' shards inflates routed elements by the replication factor, so
aggregate capacity grows sublinearly in the shard count.  The headline
assertion is that 4 shards still clear >= 2x the single-node ingest rate.

Run as a script (``python benchmarks/bench_cluster_scaling.py [--tiny]``) or
through pytest-benchmark like the other benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.datasets.profiles import get_profile
from repro.datasets.synthetic import SyntheticDataset, SyntheticStreamGenerator
from repro.utils.timing import StopWatch

SEED = 2019

CLUSTER_CONFIG = ProcessorConfig(
    window_length=6 * 3600,
    bucket_length=900,
    scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
)


def build_profile(tiny: bool):
    """The benchmark stream profile (scaled down under ``--tiny``)."""
    return replace(
        get_profile("tiny"),
        name="cluster-bench",
        num_elements=600 if tiny else 6_000,
        vocabulary_size=1_200 if tiny else 2_400,
        num_topics=24,
        duration=24 * 3600,
        reference_horizon=3 * 3600,
    )


@dataclass
class ScalingRun:
    """Measurements of one configuration (single node or N shards)."""

    label: str
    shards: int
    elements: int
    busy_seconds: float
    wall_seconds: float
    aggregate_rate: float
    routed_elements: int
    query_mean_ms: float
    top_result: Tuple[int, ...]

    def row(self) -> str:
        return (
            f"{self.label:<10} {self.elements:>8} {self.routed_elements:>8} "
            f"{self.busy_seconds:>8.3f} {self.wall_seconds:>8.3f} "
            f"{self.aggregate_rate:>10.1f} {self.query_mean_ms:>9.3f}"
        )


def _run_queries(backend, queries: Sequence[KSIRQuery]) -> Tuple[float, Tuple[int, ...]]:
    """Answer the workload; returns (mean latency ms, first answer's ids)."""
    watch = StopWatch()
    total = 0.0
    first: Tuple[int, ...] = ()
    for index, query in enumerate(queries):
        watch.start()
        result = backend.query(query, algorithm="mttd", epsilon=0.1)
        total += watch.stop()
        if index == 0:
            first = tuple(sorted(result.element_ids))
    mean_ms = (total / max(1, len(queries))) * 1000.0
    return mean_ms, first


def run_single(dataset: SyntheticDataset, queries: Sequence[KSIRQuery]) -> ScalingRun:
    processor = KSIRProcessor(dataset.topic_model, CLUSTER_CONFIG)
    watch = StopWatch()
    watch.start()
    processor.process_stream(dataset.stream)
    wall = watch.stop()
    busy = processor.ingest_timer.total_ms / 1000.0
    query_mean_ms, first = _run_queries(processor, queries)
    return ScalingRun(
        label="single",
        shards=1,
        elements=processor.elements_processed,
        busy_seconds=busy,
        wall_seconds=wall,
        aggregate_rate=processor.elements_processed / max(1e-9, busy),
        routed_elements=processor.elements_processed,
        query_mean_ms=query_mean_ms,
        top_result=first,
    )


def run_cluster(
    dataset: SyntheticDataset, num_shards: int, queries: Sequence[KSIRQuery]
) -> ScalingRun:
    with ClusterCoordinator(
        dataset.topic_model,
        CLUSTER_CONFIG,
        cluster=ClusterConfig(num_shards=num_shards, backend="serial"),
    ) as coordinator:
        watch = StopWatch()
        watch.start()
        coordinator.process_stream(dataset.stream)
        wall = watch.stop()
        stats = coordinator.shard_stats()
        busy = sum(stat.ingest_seconds for stat in stats)
        aggregate = sum(
            stat.home_elements / max(1e-9, stat.ingest_seconds) for stat in stats
        )
        routed = sum(stat.home_elements + stat.foreign_elements for stat in stats)
        query_mean_ms, first = _run_queries(coordinator, queries)
        return ScalingRun(
            label=f"{num_shards}-shard",
            shards=num_shards,
            elements=coordinator.elements_processed,
            busy_seconds=busy,
            wall_seconds=wall,
            aggregate_rate=aggregate,
            routed_elements=routed,
            query_mean_ms=query_mean_ms,
            top_result=first,
        )


def render(runs: Sequence[ScalingRun]) -> str:
    single = runs[0]
    lines = [
        "cluster scaling — aggregate ingest capacity and query latency vs single node",
        "(aggregate rate = sum of per-shard home-elements/busy-second rates, i.e. the",
        " capacity with one core per shard; wall time is this machine's replay clock)",
        f"{'config':<10} {'elements':>8} {'routed':>8} {'busy_s':>8} {'wall_s':>8} "
        f"{'agg el/s':>10} {'query_ms':>9}",
    ]
    for run in runs:
        lines.append(run.row())
    for run in runs[1:]:
        speedup = run.aggregate_rate / max(1e-9, single.aggregate_rate)
        replication = run.routed_elements / max(1, run.elements)
        lines.append(
            f"{run.label}: {speedup:.2f}x aggregate ingest vs single "
            f"(replication factor {replication:.2f}), answers match: "
            f"{'yes' if run.top_result == single.top_result else 'NO'}"
        )
    return "\n".join(lines)


def run_all(
    tiny: bool, shard_counts: Sequence[int], num_queries: int
) -> Tuple[ScalingRun, ...]:
    dataset = SyntheticStreamGenerator(build_profile(tiny), seed=SEED).generate()
    queries = [
        dataset.make_query(k=5, topic=topic % dataset.profile.num_topics)
        for topic in range(num_queries)
    ]
    runs: List[ScalingRun] = [run_single(dataset, queries)]
    for num_shards in shard_counts:
        runs.append(run_cluster(dataset, num_shards, queries))
    return tuple(runs)


# -- pytest-benchmark entry point -------------------------------------------------


def test_cluster_scaling(benchmark):
    """Sharded ingest capacity must clear 2x single-node at 4 shards."""
    from _harness import record

    runs = benchmark.pedantic(
        lambda: run_all(tiny=False, shard_counts=(1, 2, 4, 8), num_queries=8),
        rounds=1,
        iterations=1,
    )
    record("cluster_scaling", render(runs))

    single = runs[0]
    by_shards: Dict[int, ScalingRun] = {run.shards: run for run in runs[1:]}
    # Scatter-gather answers must agree with the single node on the shared
    # sanity query regardless of the shard count.
    for run in runs[1:]:
        assert run.top_result == single.top_result, run.label
    # The acceptance bar: 4 shards sustain >= 2x the single-node ingest rate
    # in aggregate, the replication tax notwithstanding.
    speedup = by_shards[4].aggregate_rate / single.aggregate_rate
    assert speedup >= 2.0, f"4-shard aggregate ingest speedup {speedup:.2f}x below 2x"


# -- script entry point ------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI-sized run (600 elements, 1/2/4 shards)")
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per configuration")
    args = parser.parse_args(list(argv) if argv is not None else None)

    shard_counts = tuple(args.shards) if args.shards else (
        (1, 2, 4) if args.tiny else (1, 2, 4, 8)
    )
    num_queries = args.queries if args.queries is not None else (4 if args.tiny else 8)
    runs = run_all(tiny=args.tiny, shard_counts=shard_counts, num_queries=num_queries)
    text = render(runs)
    try:
        from _harness import record

        record("cluster_scaling", text)
    except ImportError:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
