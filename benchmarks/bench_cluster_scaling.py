"""Cluster scaling — sharded ingest and query throughput vs the single node.

Thin wrapper over the ``cluster_scaling`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_cluster_scaling.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run cluster_scaling``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("cluster_scaling")

if __name__ == "__main__":
    sys.exit(main())
