"""Ablation — MTTD's lazy-heap candidate buffer vs a linear-scan buffer.

Thin wrapper over the ``ablation_lazy_buffer`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_ablation_lazy_buffer.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run ablation_lazy_buffer``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("ablation_lazy_buffer")

if __name__ == "__main__":
    sys.exit(main())
