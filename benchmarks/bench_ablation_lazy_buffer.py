"""Ablation — MTTD's lazy-heap candidate buffer vs a linear-scan buffer."""

from __future__ import annotations

from _harness import BENCH_EFFICIENCY, record

from repro.experiments.ablations import lazy_buffer_ablation


def test_ablation_lazy_buffer(benchmark):
    """Isolate the cost of MTTD's buffer data structure."""
    result = benchmark.pedantic(
        lazy_buffer_ablation,
        kwargs=dict(dataset_name="twitter-small", config=BENCH_EFFICIENCY, num_queries=8),
        rounds=1,
        iterations=1,
    )
    record("ablation_lazy_buffer", result.render())
    # Both variants implement the same selection rule; the lazy heap should
    # not be dramatically slower than the linear scan at this scale.
    assert result.variant_value <= result.baseline_value * 1.5
