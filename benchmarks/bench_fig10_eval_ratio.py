"""Figure 10 — fraction of active elements evaluated by MTTS / MTTD vs k."""

from __future__ import annotations

from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure10_evaluation_ratio


def test_figure10_evaluation_ratio(benchmark):
    """Regenerate Figure 10 (ratio of evaluated elements vs k)."""
    figure = benchmark.pedantic(
        figure10_evaluation_ratio, kwargs=dict(config=BENCH_EFFICIENCY), rounds=1, iterations=1
    )
    record("figure10_evaluation_ratio", figure.render(precision=4))

    # Shape checks: the ratio is far below 1 (the pruning works), grows with
    # k, and MTTD's ratio is at least MTTS's (it retrieves more, evaluates
    # buffered elements repeatedly) — all as reported in the paper.
    for dataset, panel in figure.panels.items():
        mtts, mttd = panel["mtts"], panel["mttd"]
        assert max(mtts + mttd) < 0.5, f"pruning ineffective on {dataset}"
        assert mtts[-1] >= mtts[0], f"MTTS ratio not growing with k on {dataset}"
        assert sum(mttd) >= sum(mtts) * 0.9, f"MTTD ratio unexpectedly low on {dataset}"
