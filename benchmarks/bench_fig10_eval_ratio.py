"""Figure 10 — fraction of active elements evaluated by MTTS / MTTD vs k.

Thin wrapper over the ``fig10_eval_ratio`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_fig10_eval_ratio.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run fig10_eval_ratio``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("fig10_eval_ratio")

if __name__ == "__main__":
    sys.exit(main())
