"""Micro-benchmarks — stream ingestion and ranked-list maintenance throughput.

These isolate the maintenance path of Algorithm 1 (the numbers behind
Figure 14): how long it takes to push one bucket of new elements through
topic profiling, window insertion and ranked-list updates.
"""

from __future__ import annotations

from _harness import MICRO_EFFICIENCY

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.experiments.runner import load_dataset


def _fresh_processor_and_buckets(num_buckets: int = 12):
    config = MICRO_EFFICIENCY
    dataset_name = config.datasets[0]
    dataset = load_dataset(dataset_name, seed=config.seed)
    scoring = config.scoring_for(dataset_name)
    processor_config = ProcessorConfig(
        window_length=config.window_length,
        bucket_length=config.bucket_length,
        scoring=scoring,
    )
    buckets = list(dataset.stream.buckets(processor_config.bucket_length))[:num_buckets]
    return dataset, processor_config, buckets


def test_bucket_ingestion_throughput(benchmark):
    """Time to ingest a fixed prefix of buckets into a fresh processor."""
    dataset, processor_config, buckets = _fresh_processor_and_buckets()

    def ingest():
        processor = KSIRProcessor(dataset.topic_model, processor_config)
        for bucket in buckets:
            processor.process_bucket(bucket.elements, bucket.end_time)
        return processor

    processor = benchmark(ingest)
    assert processor.buckets_processed == len(buckets)
    elements = sum(len(bucket) for bucket in buckets)
    if elements:
        mean_update = processor.update_timer.mean_ms
        assert mean_update < 5.0


def test_ranked_list_update_cost(benchmark):
    """Per-element ranked-list maintenance cost over a replayed prefix."""
    dataset, processor_config, buckets = _fresh_processor_and_buckets(num_buckets=30)
    processor = KSIRProcessor(dataset.topic_model, processor_config)
    for bucket in buckets[:-1]:
        processor.process_bucket(bucket.elements, bucket.end_time)
    final_bucket = buckets[-1]

    def replay_final():
        # Re-ingesting the same bucket is idempotent enough for timing: the
        # window keeps the latest copy of each element.
        processor.process_bucket(final_bucket.elements, final_bucket.end_time)

    benchmark(replay_final)
    assert processor.active_count > 0
