"""Micro-benchmark — bucket-ingest throughput: batched fast path vs element-by-element.

Thin wrapper over the ``micro_stream_update`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_micro_stream_update.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run micro_stream_update``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("micro_stream_update")

if __name__ == "__main__":
    sys.exit(main())
