"""Figure 9 — query time of all five methods as the result size k varies."""

from __future__ import annotations

import numpy as np
from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure9_time_vs_k


def test_figure9_time_vs_k(benchmark):
    """Regenerate Figure 9 (query time in ms vs k) for CELF, MTTS, MTTD, Top-k, Sieve."""
    figure = benchmark.pedantic(
        figure9_time_vs_k, kwargs=dict(config=BENCH_EFFICIENCY), rounds=1, iterations=1
    )
    record("figure9_time_vs_k", figure.render(precision=3))

    # Shape checks: the index-assisted methods beat the submodular baselines
    # on average, and Top-k Representative is the fastest method overall.
    for dataset, panel in figure.panels.items():
        mttd = float(np.mean(panel["mttd"]))
        celf = float(np.mean(panel["celf"]))
        sieve = float(np.mean(panel["sieve"]))
        topk = float(np.mean(panel["topk"]))
        assert mttd < celf, f"MTTD slower than CELF on {dataset}"
        assert mttd < sieve, f"MTTD slower than SieveStreaming on {dataset}"
        assert topk <= mttd * 1.5, f"Top-k unexpectedly slow on {dataset}"
