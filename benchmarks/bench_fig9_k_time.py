"""Figure 9 — query time of all five methods as the result size k varies.

Thin wrapper over the ``fig9_k_time`` spec in the :mod:`repro.bench` registry.
Run as a script (``python benchmarks/bench_fig9_k_time.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``; ``--tiny`` is an alias for ``--tier tiny``) or through
``repro-ksir bench run fig9_k_time``.  Under pytest the tiny tier is executed as
a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("fig9_k_time")

if __name__ == "__main__":
    sys.exit(main())
