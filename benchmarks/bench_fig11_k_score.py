"""Figure 11 — result quality of all five methods as the result size k varies."""

from __future__ import annotations

import numpy as np
from _harness import BENCH_EFFICIENCY, record

from repro.experiments.figures import figure11_score_vs_k


def test_figure11_score_vs_k(benchmark):
    """Regenerate Figure 11 (representativeness score vs k)."""
    figure = benchmark.pedantic(
        figure11_score_vs_k, kwargs=dict(config=BENCH_EFFICIENCY), rounds=1, iterations=1
    )
    record("figure11_score_vs_k", figure.render(precision=4))

    # Shape checks from the paper: MTTD is nearly indistinguishable from CELF
    # (> 99 %), MTTS stays above 95 %, SieveStreaming is below CELF, and the
    # Top-k Representative baseline is the weakest.
    for dataset, panel in figure.panels.items():
        celf = np.asarray(panel["celf"])
        mttd = np.asarray(panel["mttd"])
        mtts = np.asarray(panel["mtts"])
        topk = np.asarray(panel["topk"])
        assert np.all(mttd >= 0.97 * celf), f"MTTD quality too low on {dataset}"
        assert np.all(mtts >= 0.90 * celf), f"MTTS quality too low on {dataset}"
        assert np.mean(topk) <= np.mean(celf), f"Top-k should not beat CELF on {dataset}"
