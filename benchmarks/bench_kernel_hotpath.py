"""Hot-path kernel layer — compiled (Numba) kernels vs the NumPy reference.

Thin wrapper over the ``kernel_hotpath`` spec in the :mod:`repro.bench`
registry.  One run replays the aminer bucket stream through batched ingest
twice — once with the kernel layer forced to the pure-NumPy reference and
once under ``kernels="auto"`` (compiled when the ``[kernels]`` extra is
installed, reference fallback otherwise) — recording per-kernel cumulative
milliseconds and call counts as scenario metrics.  The check asserts both
paths leave identical ranked lists (scores within 1e-9).  Run as a script
(``python benchmarks/bench_kernel_hotpath.py [--tier tiny|full] [--seed N]
[--output-dir DIR]``) or through ``repro-ksir bench run kernel_hotpath``.
Under pytest the tiny tier is executed as a smoke test.
"""

from __future__ import annotations

import sys

from repro.bench.scripts import bench_script

main, test_tiny_tier = bench_script("kernel_hotpath")

if __name__ == "__main__":
    sys.exit(main())
