"""The event-time ingest benchmark: throughput and watermark lag under disorder.

One scenario replays the same synthetic stream through
:meth:`repro.api.engine.KSIREngine.ingest` — the bounded reordering
buffer — at a given disorder level (the fraction of elements displaced by
up to ``max_delay_buckets`` buckets of stream time, injected by the seeded
:func:`repro.streams.inject_disorder`).  The measured region covers the
full raw-event path: watermark tracking, re-sorting into true buckets,
sealing, and the engine's bucket processing.

Recorded per scenario: element throughput (the report's rate), the
watermark-lag p50/p95 (stream-time distance between the event-time
high-water mark and each sealed bucket's end), and the lateness counters.
The check pins the correctness contract: with ``allowed_lateness ≥``
the injected delay bound, *no* element may be dropped and every disorder
level must answer a panel of queries identically (within 1e-9) to the
in-order run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.api import EngineConfig, KSIREngine
from repro.bench.spec import Outcome
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.streams import StreamConfig, inject_disorder

#: Injected delay bound (buckets) — and the allowed lateness absorbing it.
_MAX_DELAY_BUCKETS = 2
#: Verification queries answered by every scenario.
_NUM_QUERIES = 4


@lru_cache(maxsize=4)
def _workload(profile: str, seed: int):
    """Dataset, engine config and query panel shared by the scenarios."""
    dataset = SyntheticStreamGenerator.from_profile(profile, seed=seed).generate()
    processor = ProcessorConfig(
        window_length=6 * 3600,
        bucket_length=900,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    config = EngineConfig(
        processor=processor,
        streams=StreamConfig(allowed_lateness=_MAX_DELAY_BUCKETS),
    )
    elements = tuple(dataset.stream)
    queries = tuple(
        dataset.make_query(k=5, topic=index % dataset.topic_model.num_topics)
        for index in range(_NUM_QUERIES)
    )
    return dataset, config, elements, queries


def stream_disorder_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    """Build the measured callable of one ``stream_disorder`` scenario."""
    dataset, config, elements, queries = _workload(params["profile"], seed)
    disorder = float(params["disorder"])
    if disorder > 0.0:
        arrivals: Tuple[Any, ...] = tuple(inject_disorder(
            elements,
            bucket_length=config.processor.bucket_length,
            max_delay_buckets=_MAX_DELAY_BUCKETS,
            fraction=disorder,
            seed=seed,
        ))
    else:
        arrivals = tuple(sorted(
            elements, key=lambda element: (element.timestamp, element.element_id)
        ))

    def measured() -> Outcome:
        engine = KSIREngine(dataset.topic_model, config)
        engine.ingest(arrivals)
        engine.ingest_flush()
        metrics = engine.stream_metrics()
        answers = tuple(
            (tuple(result.element_ids), result.score)
            for result in (engine.query(query) for query in queries)
        )
        return Outcome(
            units=len(arrivals),
            value={
                "answers": answers,
                "metrics": metrics,
                "buckets_processed": engine.buckets_processed,
            },
            metrics={
                "watermark_lag_p50": metrics.watermark_lag_p50,
                "watermark_lag_p95": metrics.watermark_lag_p95,
                "late_events": float(metrics.late_events),
                "dropped_late": float(metrics.dropped_late),
                "buckets_sealed": float(metrics.buckets_sealed),
            },
        )

    return measured


def stream_disorder_check(values: Mapping[str, Any], report: Any) -> None:
    """No drops under bounded disorder; answers identical to in-order."""
    reference = values["in-order"]
    for name, value in values.items():
        metrics = value["metrics"]
        assert metrics.dropped_late == 0, (
            f"{name}: {metrics.dropped_late} elements dropped despite disorder "
            f"bounded by the allowed lateness"
        )
        assert metrics.pending_events == 0, (
            f"{name}: {metrics.pending_events} elements still buffered after flush"
        )
        assert value["buckets_processed"] == reference["buckets_processed"], (
            f"{name}: bucket grid diverged from the in-order replay"
        )
        for index, (ids, score) in enumerate(value["answers"]):
            expected_ids, expected_score = reference["answers"][index]
            assert ids == expected_ids, (
                f"{name}: query {index} answer diverged from in-order"
            )
            assert abs(score - expected_score) <= 1e-9, (
                f"{name}: query {index} score drifted by "
                f"{abs(score - expected_score):.3g}"
            )
    in_order_metrics: Dict[str, Any] = dict(reference["metrics"].to_dict())
    assert in_order_metrics["late_events"] == 0, (
        "the in-order scenario observed late events"
    )
