"""Regression classification between two benchmark reports.

:func:`compare` matches the scenarios of an old (baseline) and a new
(candidate) report and classifies each pair:

* ``regression`` — the normalised latency ratio exceeds ``1 + tolerance``;
* ``improvement`` — the ratio is below ``1 − tolerance``;
* ``within_tolerance`` — everything in between, plus scenarios too fast to
  judge (both medians under ``min_p50_ms``, where timer noise dominates);
* ``added`` / ``removed`` — scenarios present on only one side (never a
  failure by themselves);
* ``skipped`` — the reports were recorded at different size tiers, so
  their latencies describe different workloads and are never classified
  (a warning is emitted instead).

**Cross-machine normalisation.**  Raw wall-clock comparison against a
committed baseline would gate on the speed difference between the
committing machine and the CI runner.  When both reports carry an
``environment.calibration_ms`` (the runtime of a fixed reference workload,
see :mod:`repro.bench.runner`), latencies are divided by their own
calibration first, so the ratio measures *relative* performance against the
machine's own baseline speed.  Pass ``use_calibration=False`` to compare
raw milliseconds (same-machine comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bench.report import BenchReport

REGRESSION = "regression"
IMPROVEMENT = "improvement"
WITHIN_TOLERANCE = "within_tolerance"
ADDED = "added"
REMOVED = "removed"
SKIPPED = "skipped"


@dataclass(frozen=True)
class ScenarioComparison:
    """The classification of one scenario pair."""

    benchmark: str
    scenario: str
    status: str
    old_p50_ms: Optional[float] = None
    new_p50_ms: Optional[float] = None
    ratio: Optional[float] = None

    def row(self) -> str:
        old = f"{self.old_p50_ms:.3f}" if self.old_p50_ms is not None else "-"
        new = f"{self.new_p50_ms:.3f}" if self.new_p50_ms is not None else "-"
        ratio = f"{self.ratio:.3f}" if self.ratio is not None else "-"
        return (
            f"  {self.benchmark:<24} {self.scenario:<20} {old:>10} {new:>10} "
            f"{ratio:>7} {self.status}"
        )


@dataclass
class ComparisonReport:
    """All scenario classifications of one compare run."""

    tolerance: float
    normalised: bool
    entries: List[ScenarioComparison] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> Tuple[ScenarioComparison, ...]:
        """The entries classified as regressions."""
        return tuple(entry for entry in self.entries if entry.status == REGRESSION)

    @property
    def has_regressions(self) -> bool:
        """Whether any scenario regressed beyond the tolerance."""
        return any(entry.status == REGRESSION for entry in self.entries)

    def render(self) -> str:
        """A human-readable comparison table."""
        mode = "calibration-normalised" if self.normalised else "raw"
        lines = [
            f"benchmark comparison — tolerance {self.tolerance:.0%}, {mode} latencies",
        ]
        lines.extend(f"  warning: {warning}" for warning in self.warnings)
        lines.append(
            f"  {'benchmark':<24} {'scenario':<20} {'old_p50':>10} {'new_p50':>10} "
            f"{'ratio':>7} status"
        )
        lines.extend(entry.row() for entry in self.entries)
        count = len(self.regressions)
        lines.append(
            f"{count} regression(s) beyond {self.tolerance:.0%}"
            if count
            else "no regressions"
        )
        return "\n".join(lines)


def environment_warnings(old: BenchReport, new: BenchReport) -> List[str]:
    """Provenance checks that calibration cannot normalise away.

    Calibration divides out single-thread machine speed, but parallel
    scaling scenarios (cluster shards, evaluator pools) also depend on the
    number of cores — a baseline recorded on a 1-CPU box is silently
    incomparable to a 8-CPU run however well-calibrated both are.  Returns
    one human-readable warning per mismatch (empty when comparable).
    """
    warnings: List[str] = []
    old_cpus = old.environment.get("cpu_count")
    new_cpus = new.environment.get("cpu_count")
    if old_cpus is not None and new_cpus is not None and old_cpus != new_cpus:
        warnings.append(
            f"{old.benchmark}: cpu_count mismatch (baseline {old_cpus}, "
            f"candidate {new_cpus}) — parallel-scaling ratios are not "
            "comparable across core counts"
        )
    old_kernels = old.environment.get("kernels")
    new_kernels = new.environment.get("kernels")
    if old_kernels is not None and new_kernels is not None and old_kernels != new_kernels:
        warnings.append(
            f"{old.benchmark}: kernel backend mismatch (baseline "
            f"{old_kernels}, candidate {new_kernels}) — compiled-vs-"
            "reference speedups are not comparable across kernel modes"
        )
    return warnings


def compare(
    old: BenchReport,
    new: BenchReport,
    tolerance: float = 0.25,
    use_calibration: bool = True,
    min_p50_ms: float = 1.0,
) -> ComparisonReport:
    """Classify the scenario-by-scenario change from ``old`` to ``new``."""
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    old_scale = new_scale = 1.0
    normalised = False
    if use_calibration:
        old_calibration = old.calibration_ms
        new_calibration = new.calibration_ms
        if old_calibration and new_calibration:
            old_scale = old_calibration
            new_scale = new_calibration
            normalised = True

    result = ComparisonReport(tolerance=tolerance, normalised=normalised)
    result.warnings.extend(environment_warnings(old, new))
    tiers_match = old.tier == new.tier
    if not tiers_match:
        result.warnings.append(
            f"{old.benchmark}: tier mismatch (baseline {old.tier!r}, "
            f"candidate {new.tier!r}) — latency ratios would compare "
            "different workload sizes; scenarios skipped"
        )
    old_by_name = {scenario.name: scenario for scenario in old.scenarios}
    new_by_name = {scenario.name: scenario for scenario in new.scenarios}

    for name, old_scenario in old_by_name.items():
        new_scenario = new_by_name.get(name)
        if new_scenario is None:
            result.entries.append(
                ScenarioComparison(
                    benchmark=old.benchmark,
                    scenario=name,
                    status=REMOVED,
                    old_p50_ms=old_scenario.p50_ms,
                )
            )
            continue
        old_p50 = old_scenario.p50_ms
        new_p50 = new_scenario.p50_ms
        if not tiers_match:
            status, ratio = SKIPPED, None
        elif old_p50 < min_p50_ms and new_p50 < min_p50_ms:
            status, ratio = WITHIN_TOLERANCE, None
        else:
            ratio = (new_p50 / new_scale) / max(1e-12, old_p50 / old_scale)
            if ratio > 1.0 + tolerance:
                status = REGRESSION
            elif ratio < 1.0 - tolerance:
                status = IMPROVEMENT
            else:
                status = WITHIN_TOLERANCE
        result.entries.append(
            ScenarioComparison(
                benchmark=old.benchmark,
                scenario=name,
                status=status,
                old_p50_ms=old_p50,
                new_p50_ms=new_p50,
                ratio=ratio,
            )
        )

    for name, new_scenario in new_by_name.items():
        if name not in old_by_name:
            result.entries.append(
                ScenarioComparison(
                    benchmark=new.benchmark,
                    scenario=name,
                    status=ADDED,
                    new_p50_ms=new_scenario.p50_ms,
                )
            )
    return result


def compare_many(
    old_reports: Sequence[BenchReport],
    new_reports: Sequence[BenchReport],
    tolerance: float = 0.25,
    use_calibration: bool = True,
    min_p50_ms: float = 1.0,
) -> ComparisonReport:
    """Compare two report collections matched by benchmark name.

    Benchmarks present on only one side are reported as whole-benchmark
    ``added``/``removed`` entries (not failures); matched benchmarks are
    compared scenario by scenario with :func:`compare`.
    """
    merged = ComparisonReport(tolerance=tolerance, normalised=False)
    old_by_name = {report.benchmark: report for report in old_reports}
    new_by_name = {report.benchmark: report for report in new_reports}
    for name in sorted(set(old_by_name) | set(new_by_name)):
        old = old_by_name.get(name)
        new = new_by_name.get(name)
        if old is None or new is None:
            merged.entries.append(
                ScenarioComparison(
                    benchmark=name,
                    scenario="*",
                    status=ADDED if old is None else REMOVED,
                )
            )
            continue
        partial = compare(
            old,
            new,
            tolerance=tolerance,
            use_calibration=use_calibration,
            min_p50_ms=min_p50_ms,
        )
        merged.normalised = merged.normalised or partial.normalised
        merged.entries.extend(partial.entries)
        merged.warnings.extend(partial.warnings)
    return merged
