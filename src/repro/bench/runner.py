"""Benchmark execution: monotonic timing, environment capture, reports.

:func:`run_spec` executes every scenario of one tier of a
:class:`~repro.bench.spec.BenchSpec`: the scenario's measured callable is
built once (untimed), warmed up, then timed ``repeat`` times with
``time.perf_counter``.  The samples, work units and derived statistics go
into a :class:`~repro.bench.report.BenchReport`; the spec's check runs
afterwards and flips ``checks_passed`` on assertion failure rather than
aborting the run (CI still fails through the exit code, but the JSON
trajectory is always written).

The captured environment includes a **calibration** figure: the runtime of
a fixed pure-Python + numpy reference workload.  Two reports' calibrations
let :func:`repro.bench.compare.compare` normalise away most of the raw
speed difference between the machine that committed a baseline and the CI
runner evaluating against it.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.bench.report import BenchReport, ScenarioResult
from repro.bench.spec import BenchSpec, Outcome
from repro.kernels import active_kernel_backend, numba_available


def calibration_workload() -> float:
    """A fixed reference workload; returns a value so it cannot be elided.

    Mixes dict-heavy pure Python with small-array numpy, mirroring the mix
    the real benchmarks exercise.
    """
    accumulator = 0.0
    table: Dict[int, float] = {}
    for index in range(20_000):
        key = (index * 2654435761) % 4096
        table[key] = table.get(key, 0.0) + index * 1e-6
    accumulator += sum(table.values())
    values = np.arange(1.0, 2049.0)
    for _ in range(50):
        accumulator += float(np.log(values).sum())
    return accumulator


def measure_calibration(rounds: int = 3) -> float:
    """Best-of-``rounds`` runtime of the calibration workload, in ms."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        calibration_workload()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def capture_environment(calibrate: bool = True) -> Dict[str, Any]:
    """Machine/interpreter metadata recorded in every report."""
    environment: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "kernels": active_kernel_backend(),
        "numba_available": numba_available(),
    }
    if calibrate:
        environment["calibration_ms"] = measure_calibration()
    return environment


def _coerce_outcome(result: Any) -> Outcome:
    """Normalise a measured callable's return value into an Outcome."""
    if isinstance(result, Outcome):
        return result
    if isinstance(result, int):
        return Outcome(units=result)
    return Outcome()


def run_spec(
    spec: BenchSpec,
    tier: str = "tiny",
    seed: int = 2019,
    environment: Optional[Mapping[str, Any]] = None,
) -> Tuple[BenchReport, Dict[str, Any]]:
    """Execute one tier of a spec.

    Returns ``(report, values)`` where ``values`` maps scenario names to
    the last :attr:`Outcome.value` of each scenario (for the spec check and
    for artefact rendering; never serialised).
    """
    policy = spec.tier(tier)
    env = dict(environment) if environment is not None else capture_environment()

    results = []
    values: Dict[str, Any] = {}
    artefacts: Dict[str, str] = {}
    for scenario in policy.scenarios:
        measured = spec.setup(dict(scenario.params), seed)
        for _ in range(policy.warmup):
            measured()
        samples_ms = []
        outcome = Outcome()
        for _ in range(policy.repeat):
            start = time.perf_counter()
            raw = measured()
            elapsed = time.perf_counter() - start
            samples_ms.append(elapsed * 1000.0)
            outcome = _coerce_outcome(raw)
        values[scenario.name] = outcome.value
        if outcome.artefact is not None:
            artefacts[scenario.name] = outcome.artefact
        results.append(
            ScenarioResult(
                name=scenario.name,
                params=dict(scenario.params),
                warmup=policy.warmup,
                repeat=policy.repeat,
                samples_ms=samples_ms,
                units=outcome.units,
                metrics=dict(outcome.metrics),
            )
        )

    if spec.baseline is not None:
        baseline = next(result for result in results if result.name == spec.baseline)
        for result in results:
            if result.name != spec.baseline and result.p50_ms > 0.0:
                result.speedup_vs_baseline = baseline.p50_ms / result.p50_ms

    report = BenchReport(
        benchmark=spec.name,
        tier=tier,
        seed=seed,
        created_unix=time.time(),
        environment=env,
        scenarios=results,
    )
    if spec.check is not None:
        try:
            spec.check(values, report)
        except AssertionError as failure:
            report.checks_passed = False
            report.check_error = str(failure) or failure.__class__.__name__
    # Stash rendered artefacts on the values map under a reserved key so the
    # CLI can persist them without re-running scenarios.
    values["__artefacts__"] = artefacts
    return report, values
