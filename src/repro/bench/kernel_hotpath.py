"""The ``kernel_hotpath`` benchmark: compiled vs reference hot kernels.

One scenario replays the aminer bucket stream through the batched ingest
path with the kernel layer forced to the pure-NumPy reference
(``kernels="numpy"``); the other runs the same stream under
``kernels="auto"``, which compiles the four hot kernels with Numba when
the ``[kernels]`` extra is installed and silently falls back otherwise.
Per-kernel cumulative milliseconds and call counts from
:func:`repro.kernels.kernel_stats` are recorded as scenario metrics, so
the committed report carries the per-kernel timing table the perf
trajectory tracks.

The check asserts the two paths leave **identical ranked lists** (scores
within 1e-9 — the same contract the columnar-store and shm-transport
migrations were held to) and, when the compiled path actually ran on
Numba, that it is not slower than the reference beyond noise.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Any, Callable, Dict, Mapping

from repro.api import EngineConfig, KernelConfig, KSIREngine, LocalBackend
from repro.bench.spec import Outcome
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.experiments.runner import load_dataset
from repro.kernels import active_kernel_backend, kernel_stats, reset_kernel_stats


@lru_cache(maxsize=4)
def _hotpath_buckets(dataset_name: str, seed: int, max_buckets: int) -> Any:
    """Dataset + bucketised stream prefix (mirrors the ingest micro-bench)."""
    dataset = load_dataset(dataset_name, seed=seed)
    config = ProcessorConfig(
        window_length=24 * 3600,
        bucket_length=15 * 60,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    buckets = tuple(dataset.stream.buckets(config.bucket_length))
    if max_buckets:
        buckets = buckets[:max_buckets]
    return dataset, config, buckets


def kernel_hotpath_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    """Build the measured callable for one kernel-mode scenario."""
    dataset, config, buckets = _hotpath_buckets(
        params["dataset"], seed, params.get("max_buckets", 0)
    )
    engine_config = EngineConfig(
        processor=replace(config, batched_ingest=True),
        kernels=KernelConfig(mode=params["kernels"]),
    )
    elements = sum(len(bucket) for bucket in buckets)

    def measured() -> Outcome:
        reset_kernel_stats()
        engine = KSIREngine(dataset.topic_model, engine_config)
        for bucket in buckets:
            engine.ingest_bucket(bucket.elements, bucket.end_time)
        stats = kernel_stats()
        metrics: Dict[str, float] = {
            "kernel_backend_numba": 1.0 if stats["backend"] == "numba" else 0.0,
        }
        for name, counters in stats["per_kernel"].items():
            metrics[f"kernel_{name}_ms"] = counters["total_ns"] / 1e6
            metrics[f"kernel_{name}_calls"] = float(counters["calls"])
        return Outcome(units=elements, value=engine, metrics=metrics)

    return measured


def _ranked_lists(engine: KSIREngine) -> Any:
    backend = engine.backend
    assert isinstance(backend, LocalBackend)
    return backend.processor.ranked_lists


def kernel_hotpath_check(values: Mapping[str, Any], report: Any) -> None:
    """Reference == compiled ranked lists at 1e-9; compiled not slower."""
    index_a = _ranked_lists(values["numpy"])
    index_b = _ranked_lists(values["compiled"])
    assert index_a.num_topics == index_b.num_topics
    for topic in range(index_a.num_topics):
        items_a = dict(index_a.items(topic))
        items_b = dict(index_b.items(topic))
        assert items_a.keys() == items_b.keys(), f"topic {topic} members differ"
        for element_id, score in items_a.items():
            assert abs(score - items_b[element_id]) <= 1e-9, (
                f"topic {topic} element {element_id} score drift between "
                "kernel backends"
            )
    compiled = report.scenario("compiled")
    if compiled.metrics.get("kernel_backend_numba"):
        speedup = compiled.speedup_vs_baseline or 0.0
        assert speedup >= 0.8, (
            f"compiled kernels {speedup:.2f}x vs the NumPy reference — the "
            "Numba path must not be materially slower"
        )
    # When Numba is absent both scenarios run the reference; equality above
    # is the fallback-parity proof and no speedup is asserted.
    assert active_kernel_backend() in ("numba", "numpy")
