"""The HA failover benchmark: recovery time and zero-loss replay.

One measured run drives a supervised process-sharded cluster through a
synthetic stream, SIGKILLs one shard worker mid-stream and lets the
supervisor heal it — restart, restore from the newest delta-checkpoint
chain state and replay exactly the WAL gap.  The run records how long the
recovery took, how many buckets the restored shard replayed and how much
smaller the delta segments are than full snapshots; the check asserts the
recovery actually happened, that no element was lost (the recovered
cluster answers a query workload identically to an uninterrupted
single-node run) and that delta checkpoints save space.

The spec (``ha_failover`` in :mod:`repro.bench.suites`) is the perf-gate
guard of :mod:`repro.ha`: a regression in recovery latency or in the
delta encoder's compactness fails the comparison against the committed
baseline.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.api import EngineConfig, KSIREngine
from repro.bench.spec import Outcome
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.core.stream import replay_stream
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.evaluation.workload import WorkloadGenerator

#: Score tolerance of the zero-loss equivalence check (matches the
#: cluster equivalence suite).
_TOLERANCE = 1e-9


def ha_failover_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    """Build the measured callable of one ``ha_failover`` scenario."""
    from repro.cluster import ClusterConfig

    dataset = SyntheticStreamGenerator.from_profile(
        str(params["profile"]), seed=seed
    ).generate()
    processor = ProcessorConfig(
        window_length=6 * 3600,
        bucket_length=900,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    num_shards = int(params["shards"])
    kill_after = int(params["kill_after"])
    kill_shard = num_shards - 1
    num_queries = int(params["queries"])
    sharded_config = EngineConfig(
        backend="sharded",
        processor=processor,
        cluster=ClusterConfig(num_shards=num_shards, backend="process"),
    )
    local_config = EngineConfig(processor=processor)
    total_elements = sum(1 for _ in dataset.stream)

    def measured() -> Outcome:
        from repro.ha import ClusterSupervisor, HAConfig
        from repro.ha.chaos import kill_worker

        generator = WorkloadGenerator(dataset, k=5, seed=seed + 17)
        queries = tuple(generator.generate_query() for _ in range(num_queries))

        with KSIREngine(dataset.topic_model, local_config) as reference:
            reference.process_stream(dataset.stream)
            expected = tuple(
                reference.query(query, algorithm="mttd", epsilon=0.1).score
                for query in queries
            )

        with tempfile.TemporaryDirectory() as tmp:
            engine = KSIREngine(dataset.topic_model, sharded_config)
            supervisor = ClusterSupervisor(
                engine,
                ha=HAConfig(checkpoint_every=int(params["checkpoint_every"])),
                checkpoint_dir=Path(tmp) / "chain",
            )
            with supervisor:
                buckets_seen = 0

                def ingest(elements: Any, end_time: int) -> None:
                    nonlocal buckets_seen
                    if buckets_seen == kill_after:
                        kill_worker(supervisor.coordinator, kill_shard)
                    supervisor.ingest_bucket(elements, end_time)
                    buckets_seen += 1

                replay_stream(dataset.stream, processor.bucket_length, ingest)
                worst = max(
                    abs(
                        supervisor.query(
                            query, algorithm="mttd", epsilon=0.1
                        ).score
                        - score
                    )
                    for query, score in zip(queries, expected)
                )
                status = supervisor.status()
                chain_stats = status["chain"] or {}
                stats = {
                    "buckets": buckets_seen,
                    "elements_processed": supervisor.engine.elements_processed,
                    "elements_expected": total_elements,
                    "recoveries": status["recoveries"],
                    "recovery_ms": 1_000.0
                    * float(status["last_recovery_seconds"] or 0.0),
                    "replayed_buckets": status["last_replayed_buckets"],
                    "delta_savings": float(chain_stats.get("delta_savings", 0.0)),
                    "delta_segments": int(chain_stats.get("delta_segments", 0)),
                    "max_score_delta": worst,
                }
        return Outcome(
            units=stats["buckets"],
            metrics={
                "recovery_ms": stats["recovery_ms"],
                "replayed_buckets": float(stats["replayed_buckets"]),
                "delta_savings": stats["delta_savings"],
                "max_score_delta": stats["max_score_delta"],
                "elements_processed": float(stats["elements_processed"]),
            },
            value=stats,
        )

    return measured


def ha_failover_check(values: Mapping[str, Any], report: Any) -> None:
    """Recovery happened, nothing was lost, deltas actually save space."""
    stats = values["failover"]
    assert stats["recoveries"] >= 1, "the killed shard was never recovered"
    assert stats["replayed_buckets"] >= 1, "recovery replayed no WAL bucket"
    assert stats["elements_processed"] == stats["elements_expected"], (
        f"lost elements: processed {stats['elements_processed']} of "
        f"{stats['elements_expected']}"
    )
    assert stats["max_score_delta"] <= _TOLERANCE, (
        f"recovered cluster diverged from the uninterrupted run by "
        f"{stats['max_score_delta']:.3g}"
    )
    assert stats["delta_segments"] >= 1, "the chain never wrote a delta segment"
    assert stats["delta_savings"] > 0.0, (
        f"delta segments are not smaller than fulls "
        f"(savings {stats['delta_savings']:.1%})"
    )
