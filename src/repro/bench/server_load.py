"""The serving-tier load benchmark: concurrent REST + WebSocket clients.

One measured run boots the full stack in-process — engine, ASGI app,
stdlib socket server — registers standing queries over HTTP, opens a fleet
of WebSocket subscribers, then ingests stream buckets over REST while a
pool of keep-alive REST clients hammers read endpoints.  Every
``POST /ingest/bucket`` response names the standing queries the
incremental scheduler re-evaluated, which makes the push contract exactly
checkable: each subscriber must receive one delta per bucket that updated
its query, and nothing for buckets that did not.

The spec (``server_load`` in :mod:`repro.bench.suites`) records request
latency percentiles and push throughput; its check fails the run when any
expected delta was not delivered.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Mapping, Set, Tuple

from repro.api import EngineConfig, KSIREngine
from repro.bench.spec import Outcome
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.service.metrics import percentile

#: Concurrent WebSocket connection attempts (stays under the listen backlog).
_CONNECT_PARALLELISM = 64
#: Seconds allowed for the push drain after the last ingested bucket.
_DRAIN_TIMEOUT = 30.0


def server_load_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    """Build the measured callable of one ``server_load`` scenario."""
    dataset = SyntheticStreamGenerator.from_profile("tiny", seed=seed).generate()
    config = EngineConfig(
        backend="service",
        processor=ProcessorConfig(
            window_length=3 * 3600,
            bucket_length=900,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        ),
    )
    buckets = tuple(dataset.stream.buckets(config.processor.bucket_length))
    buckets = buckets[: int(params["buckets"])]
    num_queries = int(params["queries"])
    queries = tuple(
        dataset.make_query(k=5, topic=index % dataset.topic_model.num_topics)
        for index in range(num_queries)
    )

    def measured() -> Outcome:
        stats = asyncio.run(
            _drive(
                dataset.topic_model,
                config,
                queries,
                buckets,
                subscribers=int(params["subscribers"]),
                rest_clients=int(params["rest_clients"]),
            )
        )
        return Outcome(
            units=max(1, int(stats["pushes_total"])),
            metrics={
                "subscribers": float(stats["subscribers"]),
                "request_p50_ms": stats["request_p50_ms"],
                "request_p95_ms": stats["request_p95_ms"],
                "pushes_per_sec": stats["pushes_per_sec"],
                "pushes_total": float(stats["pushes_total"]),
                "missing_pushes": float(stats["missing_pushes"]),
                "updated_query_buckets": float(stats["updated_query_buckets"]),
                "rest_requests": float(stats["rest_requests"]),
            },
            value=stats,
        )

    return measured


def server_load_check(values: Mapping[str, Any], report: Any) -> None:
    """Shape assertions: full delivery, live fleet, non-trivial updates."""
    for name, stats in values.items():
        assert stats["missing_pushes"] == 0, (
            f"{name}: {stats['missing_pushes']} expected deltas were never "
            "delivered to their subscribers"
        )
        assert stats["subscribers"] == stats["requested_subscribers"], (
            f"{name}: only {stats['subscribers']} of "
            f"{stats['requested_subscribers']} WebSocket subscribers connected"
        )
        assert stats["updated_query_buckets"] > 0, (
            f"{name}: no bucket updated any standing query — the push path "
            "was never exercised"
        )
        assert stats["pushes_total"] > 0, f"{name}: no deltas were pushed"


async def _drive(
    topic_model: Any,
    config: EngineConfig,
    queries: Tuple[Any, ...],
    buckets: Tuple[Any, ...],
    subscribers: int,
    rest_clients: int,
) -> Dict[str, Any]:
    from repro.server.app import create_app
    from repro.server.asgi import serve
    from repro.server.ws_client import HttpClient, WebSocketClient

    engine = KSIREngine(topic_model, config)
    app = create_app(engine, max_workers=8, push_queue_size=64)
    handle = await serve(app)
    latencies: List[float] = []
    rest_requests = 0
    stop_rest = asyncio.Event()

    async def timed(client: HttpClient, method: str, path: str, payload=None):
        started = time.perf_counter()
        response = await client.request(method, path, payload)
        latencies.append((time.perf_counter() - started) * 1000.0)
        return response

    try:
        control = HttpClient(handle.host, handle.port)
        for index, query in enumerate(queries):
            response = await timed(control, "POST", "/queries", {
                "vector": [float(v) for v in query.vector],
                "k": query.k,
                "query_id": f"q{index}",
                "algorithm": "mttd",
                "epsilon": 0.2,
            })
            assert response.status == 201, response.body

        # -- WebSocket fleet -----------------------------------------------------------
        received: List[Set[int]] = [set() for _ in range(subscribers)]
        assigned = [f"q{index % len(queries)}" for index in range(subscribers)]
        sockets: List[WebSocketClient] = []
        gate = asyncio.Semaphore(_CONNECT_PARALLELISM)

        async def connect(index: int) -> WebSocketClient:
            async with gate:
                return await WebSocketClient.connect(
                    handle.host, handle.port, f"/ws/queries/{assigned[index]}"
                )

        sockets = list(
            await asyncio.gather(*(connect(i) for i in range(subscribers)))
        )

        async def reader(index: int) -> None:
            ws = sockets[index]
            while True:
                message = await ws.recv_json()
                if message is None:
                    return
                if message.get("type") == "delta":
                    received[index].add(int(message["bucket"]))

        readers = [asyncio.ensure_future(reader(i)) for i in range(subscribers)]

        # -- REST read load ------------------------------------------------------------
        async def rest_loop(worker: int) -> int:
            count = 0
            async with HttpClient(handle.host, handle.port) as client:
                while not stop_rest.is_set():
                    target = f"/queries/q{(worker + count) % len(queries)}/result"
                    response = await timed(client, "GET", target)
                    assert response.status == 200, response.body
                    response = await timed(client, "GET", "/health")
                    assert response.status == 200
                    count += 2
            return count

        rest_tasks = [
            asyncio.ensure_future(rest_loop(worker))
            for worker in range(rest_clients)
        ]

        # -- ingest + push accounting --------------------------------------------------
        expected_buckets: Dict[str, Set[int]] = {f"q{i}": set() for i in range(len(queries))}
        updated_query_buckets = 0
        push_clock_start = time.perf_counter()
        for bucket in buckets:
            response = await timed(control, "POST", "/ingest/bucket", {
                "end_time": int(bucket.end_time),
                "elements": [element.to_dict() for element in bucket.elements],
            })
            assert response.status == 200, response.body
            summary = response.json()
            for query_id in summary["updated"]:
                expected_buckets[query_id].add(int(summary["bucket"]))
                updated_query_buckets += 1

        # -- drain ---------------------------------------------------------------------
        def missing() -> int:
            return sum(
                len(expected_buckets[assigned[index]] - received[index])
                for index in range(subscribers)
            )

        deadline = time.perf_counter() + _DRAIN_TIMEOUT
        while missing() and time.perf_counter() < deadline:
            await asyncio.sleep(0.05)
        push_elapsed = max(1e-9, time.perf_counter() - push_clock_start)

        stop_rest.set()
        rest_counts = await asyncio.gather(*rest_tasks)
        rest_requests = int(sum(rest_counts))
        for task in readers:
            task.cancel()
        await asyncio.gather(*readers, return_exceptions=True)
        close_gate = asyncio.Semaphore(_CONNECT_PARALLELISM)

        async def close_socket(ws: WebSocketClient) -> None:
            async with close_gate:
                await ws.close()

        await asyncio.gather(
            *(close_socket(ws) for ws in sockets), return_exceptions=True
        )
        await control.close()

        pushes_total = sum(len(marks) for marks in received)
        ordered = sorted(latencies)
        return {
            "requested_subscribers": subscribers,
            "subscribers": len(sockets),
            "request_p50_ms": percentile(ordered, 0.50),
            "request_p95_ms": percentile(ordered, 0.95),
            "pushes_total": pushes_total,
            "pushes_per_sec": pushes_total / push_elapsed,
            "missing_pushes": missing(),
            "updated_query_buckets": updated_query_buckets,
            "rest_requests": rest_requests,
            "hub_pushes": app.hub.pushes,
        }
    finally:
        stop_rest.set()
        await handle.stop()
        app.close()
