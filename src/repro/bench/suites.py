"""The built-in benchmark suite: every ``benchmarks/bench_*.py`` as a spec.

Importing this module registers one :class:`~repro.bench.spec.BenchSpec`
per benchmark.  The former per-script logic (scenario sizes, shape
assertions) lives here declaratively; the scripts under ``benchmarks/``
are thin wrappers resolving their spec by name, and the CLI
(``repro-ksir bench``) runs any subset uniformly.

Tier conventions:

* ``tiny`` — CI-sized: single dataset, few queries, seconds per benchmark.
  Statistical shape checks are relaxed (they were tuned for the full
  sweeps); structural invariants still apply.
* ``full`` — the historical benchmark sizes, including the original shape
  assertions from the per-script era.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Any, Callable, Mapping, Tuple

import numpy as np

from repro.api import EngineConfig, KSIREngine, LocalBackend, ServiceConfig
from repro.bench.spec import BenchSpec, Outcome, Scenario, TierPolicy, register
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.datasets.profiles import get_profile
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.experiments import ablations, figures, tables
from repro.experiments.config import EffectivenessConfig, EfficiencyConfig
from repro.experiments.runner import EfficiencyExperiment, load_dataset, prepare_processor

#: Tag selecting the fast CI perf-smoke subset.
MICRO = "micro"

FULL_DATASETS: Tuple[str, ...] = ("aminer-small", "reddit-small", "twitter-small")
TINY_DATASETS: Tuple[str, ...] = ("twitter-small",)


# ---------------------------------------------------------------------------
# Micro benchmarks (the CI perf-smoke subset)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _ingest_buckets(dataset_name: str, seed: int, max_buckets: int):
    """Dataset + bucketised stream prefix for the ingest micro-benchmark."""
    dataset = load_dataset(dataset_name, seed=seed)
    config = ProcessorConfig(
        window_length=24 * 3600,
        bucket_length=15 * 60,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    buckets = tuple(dataset.stream.buckets(config.bucket_length))
    if max_buckets:
        buckets = buckets[:max_buckets]
    return dataset, config, buckets


def _stream_update_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    dataset, config, buckets = _ingest_buckets(
        params["dataset"], seed, params.get("max_buckets", 0)
    )
    config = replace(config, batched_ingest=params["batched"])
    engine_config = EngineConfig(processor=config)
    elements = sum(len(bucket) for bucket in buckets)

    def measured() -> Outcome:
        engine = KSIREngine(dataset.topic_model, engine_config)
        for bucket in buckets:
            engine.ingest_bucket(bucket.elements, bucket.end_time)
        return Outcome(units=elements, value=engine)

    return measured


def _engine_ranked_lists(engine: KSIREngine):
    """The single-node ranked-list index behind a facade engine."""
    backend = engine.backend
    assert isinstance(backend, LocalBackend)
    return backend.processor.ranked_lists


def _stream_update_check(values: Mapping[str, Any], report: Any) -> None:
    sequential = values["sequential"]
    batched = values["batched"]
    # The two paths must leave identical ranked lists (scores within 1e-9).
    index_a = _engine_ranked_lists(sequential)
    index_b = _engine_ranked_lists(batched)
    assert index_a.num_topics == index_b.num_topics
    for topic in range(index_a.num_topics):
        items_a = dict(index_a.items(topic))
        items_b = dict(index_b.items(topic))
        assert items_a.keys() == items_b.keys(), f"topic {topic} members differ"
        for element_id, score in items_a.items():
            assert abs(score - items_b[element_id]) <= 1e-9, (
                f"topic {topic} element {element_id} score drift"
            )
    speedup = report.scenario("batched").speedup_vs_baseline or 0.0
    floor = 1.5 if report.tier == "full" else 1.2
    assert speedup >= floor, (
        f"batched ingest speedup {speedup:.2f}x below {floor}x"
    )


register(
    BenchSpec(
        name="micro_stream_update",
        description=(
            "bucket-ingest throughput: batched fast path vs element-by-element "
            "(profiles, window, ranked lists)"
        ),
        setup=_stream_update_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("sequential", {"dataset": "aminer-small",
                                            "max_buckets": 48, "batched": False}),
                    Scenario("batched", {"dataset": "aminer-small",
                                         "max_buckets": 48, "batched": True}),
                ),
                warmup=1,
                repeat=3,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("sequential", {"dataset": "aminer-small",
                                            "max_buckets": 0, "batched": False}),
                    Scenario("batched", {"dataset": "aminer-small",
                                         "max_buckets": 0, "batched": True}),
                ),
                warmup=1,
                repeat=5,
            ),
        },
        baseline="sequential",
        check=_stream_update_check,
        tags=(MICRO, "core"),
    )
)


_QUERY_ALGORITHMS = ("topk", "mttd", "mtts", "celf", "sieve")


def _query_latency_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    dataset_name = params["dataset"]
    config = EfficiencyConfig(datasets=(dataset_name,), num_queries=1, seed=seed)
    scoring = config.scoring_for(dataset_name)
    dataset, processor = prepare_processor(
        dataset_name,
        seed=seed,
        window_length=config.window_length,
        bucket_length=config.bucket_length,
        lambda_weight=scoring.lambda_weight,
        eta=scoring.eta,
        replay_fraction=config.replay_fraction,
    )
    experiment = EfficiencyExperiment(dataset, processor, seed=seed)
    query = experiment.make_workload(1, k=config.k)[0]
    algorithm = params["algorithm"]

    def measured() -> Outcome:
        result = processor.query(query, algorithm=algorithm, epsilon=0.1)
        assert len(result) <= query.k
        return Outcome(units=1, value=result)

    return measured


def _query_latency_scenarios(dataset: str) -> Tuple[Scenario, ...]:
    return tuple(
        Scenario(algorithm, {"dataset": dataset, "algorithm": algorithm})
        for algorithm in _QUERY_ALGORITHMS
    )


register(
    BenchSpec(
        name="micro_query_latency",
        description="single k-SIR query latency of every registered algorithm",
        setup=_query_latency_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=_query_latency_scenarios("tiny"), warmup=2, repeat=9
            ),
            "full": TierPolicy(
                scenarios=_query_latency_scenarios("twitter-small"), warmup=2, repeat=25
            ),
        },
        tags=(MICRO, "core"),
    )
)


# ---------------------------------------------------------------------------
# Service / cluster benchmarks
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4)
def _service_dataset(num_elements: int, num_topics: int, seed: int):
    profile = replace(
        get_profile("tiny"),
        name="service-bench",
        num_elements=num_elements,
        vocabulary_size=1_700,
        num_topics=num_topics,
        duration=24 * 3600,
        reference_horizon=3 * 3600,
    )
    return SyntheticStreamGenerator(profile, seed=seed).generate()


def _service_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    dataset = _service_dataset(params["elements"], params["topics"], seed)
    engine_config = EngineConfig(
        backend="service",
        processor=ProcessorConfig(
            window_length=6 * 3600,
            bucket_length=450,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        ),
        service=ServiceConfig(max_workers=1, incremental=params["incremental"]),
    )
    num_queries = params["queries"]

    def measured() -> Outcome:
        with KSIREngine(dataset.topic_model, engine_config) as engine:
            for index in range(num_queries):
                engine.register(
                    dataset.make_query(k=5, topic=index % params["topics"]),
                    algorithm="mttd",
                    epsilon=0.1,
                )
            engine.process_stream(dataset.stream)
            service = engine.service_engine
            assert service is not None
            metrics = service.metrics
        return Outcome(
            units=metrics.opportunities,
            value=metrics,
            metrics={
                "evaluations": float(metrics.evaluations),
                "reeval_ratio": float(metrics.reeval_ratio),
                "queries_per_sec": float(metrics.queries_per_sec),
                "latency_p50_ms": float(metrics.latency_p50_ms),
            },
        )

    return measured


def _service_check(values: Mapping[str, Any], report: Any) -> None:
    incremental = values["incremental"]
    naive = values["naive"]
    assert incremental.evaluations < naive.evaluations, (
        "incremental scheduler did not save evaluations"
    )
    assert incremental.opportunities == naive.opportunities
    if report.tier == "full":
        speedup = incremental.queries_per_sec / max(1e-9, naive.queries_per_sec)
        assert speedup >= 3.0, f"maintenance throughput speedup {speedup:.2f}x below 3x"


register(
    BenchSpec(
        name="service_throughput",
        description="standing-query maintenance: incremental scheduler vs naive re-run",
        setup=_service_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("naive", {"elements": 500, "topics": 60,
                                       "queries": 40, "incremental": False}),
                    Scenario("incremental", {"elements": 500, "topics": 60,
                                             "queries": 40, "incremental": True}),
                ),
                warmup=0,
                repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("naive", {"elements": 1_200, "topics": 120,
                                       "queries": 100, "incremental": False}),
                    Scenario("incremental", {"elements": 1_200, "topics": 120,
                                             "queries": 100, "incremental": True}),
                ),
                warmup=0,
                repeat=1,
            ),
        },
        baseline="naive",
        check=_service_check,
        tags=("service",),
    )
)


@lru_cache(maxsize=4)
def _cluster_dataset(tiny: bool, seed: int):
    profile = replace(
        get_profile("tiny"),
        name="cluster-bench",
        num_elements=600 if tiny else 6_000,
        vocabulary_size=1_200 if tiny else 2_400,
        num_topics=24,
        duration=24 * 3600,
        reference_horizon=3 * 3600,
    )
    dataset = SyntheticStreamGenerator(profile, seed=seed).generate()
    queries = tuple(
        dataset.make_query(k=5, topic=index % profile.num_topics)
        for index in range(4 if tiny else 8)
    )
    return dataset, queries


def _cluster_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    from repro.cluster import ClusterConfig

    dataset, queries = _cluster_dataset(params["tiny"], seed)
    config = ProcessorConfig(
        window_length=6 * 3600,
        bucket_length=900,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    num_shards = params["shards"]
    elements = sum(1 for _ in dataset.stream)

    def measured() -> Outcome:
        if num_shards <= 1:
            engine = KSIREngine(dataset.topic_model, EngineConfig(processor=config))
            engine.process_stream(dataset.stream)
            backend = engine.backend
            assert isinstance(backend, LocalBackend)
            busy = backend.processor.ingest_timer.total_ms / 1000.0
            aggregate = engine.elements_processed / max(1e-9, busy)
            routed = engine.elements_processed
            first = tuple(
                sorted(engine.query(queries[0], algorithm="mttd", epsilon=0.1).element_ids)
            )
            for query in queries[1:]:
                engine.query(query, algorithm="mttd", epsilon=0.1)
        else:
            cluster_config = EngineConfig(
                backend="sharded",
                processor=config,
                cluster=ClusterConfig(
                    num_shards=num_shards,
                    backend="serial",
                    transport=str(params.get("transport", "serial")),
                ),
            )
            with KSIREngine(dataset.topic_model, cluster_config) as coordinator:
                coordinator.process_stream(dataset.stream)
                stats = coordinator.backend.coordinator.shard_stats()
                busy = sum(stat.ingest_seconds for stat in stats)
                aggregate = sum(
                    stat.home_elements / max(1e-9, stat.ingest_seconds) for stat in stats
                )
                routed = sum(stat.home_elements + stat.foreign_elements for stat in stats)
                first = tuple(
                    sorted(
                        coordinator.query(
                            queries[0], algorithm="mttd", epsilon=0.1
                        ).element_ids
                    )
                )
                for query in queries[1:]:
                    coordinator.query(query, algorithm="mttd", epsilon=0.1)
        return Outcome(
            units=elements,
            value={"aggregate_rate": aggregate, "top_result": first},
            metrics={
                "aggregate_rate": aggregate,
                "busy_seconds": busy,
                "routed_elements": float(routed),
            },
        )

    return measured


def _cluster_check(values: Mapping[str, Any], report: Any) -> None:
    single = values["single"]
    for name, value in values.items():
        if name.startswith("shard-"):
            assert value["top_result"] == single["top_result"], (
                f"{name} answer diverged from single node"
            )
    if report.tier == "full":
        speedup = values["shard-4"]["aggregate_rate"] / max(
            1e-9, single["aggregate_rate"]
        )
        assert speedup >= 2.0, f"4-shard aggregate ingest {speedup:.2f}x below 2x"


def _cluster_scenarios(
    tiny: bool,
    shard_counts: Tuple[int, ...],
    shm_counts: Tuple[int, ...] = (),
) -> Tuple[Scenario, ...]:
    scenarios = [Scenario("single", {"tiny": tiny, "shards": 1})]
    scenarios.extend(
        Scenario(f"shard-{count}", {"tiny": tiny, "shards": count})
        for count in shard_counts
    )
    scenarios.extend(
        Scenario(
            f"shard-{count}-shm",
            {"tiny": tiny, "shards": count, "transport": "shm"},
        )
        for count in shm_counts
    )
    return tuple(scenarios)


register(
    BenchSpec(
        name="cluster_scaling",
        description="sharded aggregate ingest capacity and query parity vs single node",
        setup=_cluster_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=_cluster_scenarios(True, (2, 4), shm_counts=(2,)),
                warmup=0,
                repeat=1,
            ),
            "full": TierPolicy(
                scenarios=_cluster_scenarios(False, (2, 4, 8), shm_counts=(2, 4)),
                warmup=0,
                repeat=1,
            ),
        },
        baseline="single",
        check=_cluster_check,
        tags=("cluster",),
    )
)


# ---------------------------------------------------------------------------
# Paper tables and figures
# ---------------------------------------------------------------------------


def _figure_spec(
    name: str,
    description: str,
    build: Callable[..., Any],
    precision: int,
    full_queries: int,
    full_check: Callable[[Any], None],
    extra_kwargs: Mapping[str, Any] = (),
) -> BenchSpec:
    """A spec regenerating one of the paper's figures as a single scenario."""

    def setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
        config = EfficiencyConfig(
            datasets=tuple(params["datasets"]),
            num_queries=params["queries"],
            seed=seed,
        )
        kwargs = dict(extra_kwargs)

        def measured() -> Outcome:
            figure = build(config=config, **kwargs)
            return Outcome(
                units=len(config.datasets) * params["queries"],
                artefact=figure.render(precision=precision),
                value=figure,
            )

        return measured

    def check(values: Mapping[str, Any], report: Any) -> None:
        figure = values["sweep"]
        assert figure.panels, "figure has no panels"
        if report.tier == "full":
            full_check(figure)

    return BenchSpec(
        name=name,
        description=description,
        setup=setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("sweep", {"datasets": TINY_DATASETS, "queries": 2}),
                ),
                warmup=0,
                repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("sweep", {"datasets": FULL_DATASETS,
                                       "queries": full_queries}),
                ),
                warmup=0,
                repeat=1,
            ),
        },
        check=check,
        tags=("figure",),
    )


def _check_fig7(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        mtts = panel["mtts"]
        assert mtts[-1] <= mtts[0] * 1.1, f"MTTS time did not drop with ε on {dataset}"


def _check_fig8(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        celf = panel["celf"][0]
        for method in ("mtts", "mttd"):
            assert panel[method][0] >= 0.95 * celf, (
                f"{method} lost too much quality at the default epsilon on {dataset}"
            )
            for value in panel[method]:
                assert value >= 0.75 * celf, f"{method} collapsed on {dataset}"


def _check_fig9(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        mttd = float(np.mean(panel["mttd"]))
        assert mttd < float(np.mean(panel["celf"])), f"MTTD slower than CELF on {dataset}"
        assert mttd < float(np.mean(panel["sieve"])), (
            f"MTTD slower than SieveStreaming on {dataset}"
        )
        assert float(np.mean(panel["topk"])) <= mttd * 1.5, (
            f"Top-k unexpectedly slow on {dataset}"
        )


def _check_fig10(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        mtts, mttd = panel["mtts"], panel["mttd"]
        assert max(mtts + mttd) < 0.5, f"pruning ineffective on {dataset}"
        assert mtts[-1] >= mtts[0], f"MTTS ratio not growing with k on {dataset}"
        assert sum(mttd) >= sum(mtts) * 0.9, f"MTTD ratio unexpectedly low on {dataset}"


def _check_fig11(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        celf = np.asarray(panel["celf"])
        assert np.all(np.asarray(panel["mttd"]) >= 0.97 * celf), (
            f"MTTD quality too low on {dataset}"
        )
        assert np.all(np.asarray(panel["mtts"]) >= 0.90 * celf), (
            f"MTTS quality too low on {dataset}"
        )
        assert np.mean(np.asarray(panel["topk"])) <= np.mean(celf), (
            f"Top-k should not beat CELF on {dataset}"
        )


def _check_fig12(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        for method in figures.INDEXED_METHODS:
            series = panel[method]
            assert min(series[1:]) <= series[0] * 1.5, (
                f"{method} query time exploded with z on {dataset}"
            )


def _check_fig13(figure: Any) -> None:
    for dataset, panel in figure.panels.items():
        for method, series in panel.items():
            assert series[-1] >= series[0] * 0.5, f"{method} trend broken on {dataset}"
        assert np.mean(panel["mttd"]) < np.mean(panel["sieve"]), dataset


register(_figure_spec(
    "fig7_epsilon_time", "Figure 7: MTTS/MTTD query time vs ε",
    figures.figure7_time_vs_epsilon, 3, 5, _check_fig7,
))
register(_figure_spec(
    "fig8_epsilon_score", "Figure 8: result quality vs ε (CELF reference)",
    figures.figure8_score_vs_epsilon, 4, 5, _check_fig8,
))
register(_figure_spec(
    "fig9_k_time", "Figure 9: query time of all five methods vs k",
    figures.figure9_time_vs_k, 3, 5, _check_fig9,
))
register(_figure_spec(
    "fig10_eval_ratio", "Figure 10: fraction of active elements evaluated vs k",
    figures.figure10_evaluation_ratio, 4, 5, _check_fig10,
))
register(_figure_spec(
    "fig11_k_score", "Figure 11: result quality of all five methods vs k",
    figures.figure11_score_vs_k, 4, 5, _check_fig11,
))
register(_figure_spec(
    "fig12_topics_time", "Figure 12: query time vs number of topics z",
    figures.figure12_time_vs_topics, 3, 4, _check_fig12,
    extra_kwargs={"methods": tuple(figures.INDEXED_METHODS) + ("celf",)},
))
register(_figure_spec(
    "fig13_window_time", "Figure 13: query time vs window length T",
    figures.figure13_time_vs_window, 3, 4, _check_fig13,
))


def _fig14_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    config = EfficiencyConfig(
        datasets=tuple(params["datasets"]), num_queries=params["queries"], seed=seed
    )

    def measured() -> Outcome:
        figure = figures.figure14_update_time(config=config)
        return Outcome(
            units=len(config.datasets),
            artefact=figure.render(precision=4),
            value=figure,
        )

    return measured


def _fig14_check(values: Mapping[str, Any], report: Any) -> None:
    figure = values["sweep"]
    for panel_name, panel in figure.panels.items():
        for value in panel["update"]:
            assert value < 5.0, f"update time too high in {panel_name}"


register(
    BenchSpec(
        name="fig14_update_time",
        description="Figure 14: per-element ranked-list update time vs z and T",
        setup=_fig14_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("sweep", {"datasets": TINY_DATASETS, "queries": 2}),
                ),
                warmup=0,
                repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("sweep", {"datasets": FULL_DATASETS, "queries": 5}),
                ),
                warmup=0,
                repeat=1,
            ),
        },
        check=_fig14_check,
        tags=("figure",),
    )
)


def _table3_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    datasets = tuple(params["datasets"])

    def measured() -> Outcome:
        table = tables.dataset_statistics_table(datasets=datasets, seed=seed)
        return Outcome(units=len(datasets), artefact=table.render(), value=table)

    return measured


def _table3_check(values: Mapping[str, Any], report: Any) -> None:
    table = values["render"]
    assert table.rows, "table 3 has no rows"
    if report.tier == "full":
        assert len(table.rows) == len(FULL_DATASETS)


register(
    BenchSpec(
        name="table3_datasets",
        description="Table 3: dataset statistics of the synthetic streams",
        setup=_table3_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(Scenario("render", {"datasets": TINY_DATASETS}),),
                warmup=0, repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(Scenario("render", {"datasets": FULL_DATASETS}),),
                warmup=0, repeat=1,
            ),
        },
        check=_table3_check,
        tags=("table",),
    )
)


def _effectiveness_setup(
    build: Callable[..., Any], precision: int
) -> Callable[[Mapping[str, Any], int], Callable[[], Outcome]]:
    def setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
        config = EffectivenessConfig(datasets=tuple(params["datasets"]), seed=seed)

        def measured() -> Outcome:
            table = build(config, num_queries=params["queries"])
            return Outcome(
                units=len(config.datasets) * params["queries"],
                artefact=table.render(precision),
                value=table,
            )

        return measured

    return setup


def _table5_check(values: Mapping[str, Any], report: Any) -> None:
    table = values["render"]
    assert table.rows, "table 5 has no rows"
    if report.tier == "full":
        ksir_column = table.headers.index("ksir")
        for row in table.rows:
            row_values = row[2:]
            if row[1] == "Impact":
                assert row[ksir_column] >= max(row_values) - 0.5
            else:
                assert row[ksir_column] > min(row_values)


def _table6_check(values: Mapping[str, Any], report: Any) -> None:
    table = values["render"]
    assert table.rows, "table 6 has no rows"
    if report.tier == "full":
        ksir_column = table.headers.index("ksir")
        for row in table.rows:
            row_values = row[2:]
            assert row[ksir_column] == max(row_values), (
                f"k-SIR not best for {row[0]} {row[1]}"
            )


def _effectiveness_tiers(full_queries: int) -> Mapping[str, TierPolicy]:
    return {
        "tiny": TierPolicy(
            scenarios=(
                Scenario("render", {"datasets": TINY_DATASETS, "queries": 4}),
            ),
            warmup=0, repeat=1,
        ),
        "full": TierPolicy(
            scenarios=(
                Scenario("render", {"datasets": FULL_DATASETS,
                                    "queries": full_queries}),
            ),
            warmup=0, repeat=1,
        ),
    }


register(
    BenchSpec(
        name="table5_user_study",
        description="Table 5: simulated user-study ratings per dataset and method",
        setup=_effectiveness_setup(tables.user_study_table, 2),
        tiers=_effectiveness_tiers(10),
        check=_table5_check,
        tags=("table",),
    )
)
register(
    BenchSpec(
        name="table6_quantitative",
        description="Table 6: quantitative coverage and influence per method",
        setup=_effectiveness_setup(tables.quantitative_table, 4),
        tiers=_effectiveness_tiers(12),
        check=_table6_check,
        tags=("table",),
    )
)


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def _ablation_ranked_list_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    def measured() -> Outcome:
        result = ablations.ranked_list_ablation(
            dataset_name=params["dataset"],
            seed=seed,
            max_operations=params["operations"],
        )
        return Outcome(
            units=params["operations"], artefact=result.render(), value=result
        )

    return measured


def _ablation_ranked_list_check(values: Mapping[str, Any], report: Any) -> None:
    result = values["ablation"]
    assert result.variant_value <= result.baseline_value * (
        1.0 if report.tier == "full" else 1.5
    ), "sorted-list maintenance slower than re-sorting"


register(
    BenchSpec(
        name="ablation_ranked_list",
        description="ablation: bisect-backed ranked lists vs naive re-sorting",
        setup=_ablation_ranked_list_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("ablation", {"dataset": "twitter-small",
                                          "operations": 3_000}),
                ),
                warmup=0, repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("ablation", {"dataset": "twitter-small",
                                          "operations": 15_000}),
                ),
                warmup=0, repeat=1,
            ),
        },
        check=_ablation_ranked_list_check,
        tags=("ablation",),
    )
)


def _ablation_lazy_buffer_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    config = EfficiencyConfig(seed=seed, num_queries=params["queries"])

    def measured() -> Outcome:
        result = ablations.lazy_buffer_ablation(
            dataset_name=params["dataset"],
            config=config,
            num_queries=params["queries"],
        )
        return Outcome(units=params["queries"], artefact=result.render(), value=result)

    return measured


def _ablation_lazy_buffer_check(values: Mapping[str, Any], report: Any) -> None:
    result = values["ablation"]
    if report.tier == "full":
        assert result.variant_value <= result.baseline_value * 1.5, (
            "lazy heap dramatically slower than linear scan"
        )


register(
    BenchSpec(
        name="ablation_lazy_buffer",
        description="ablation: MTTD lazy-heap candidate buffer vs linear scan",
        setup=_ablation_lazy_buffer_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("ablation", {"dataset": "twitter-small", "queries": 3}),
                ),
                warmup=0, repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("ablation", {"dataset": "twitter-small", "queries": 8}),
                ),
                warmup=0, repeat=1,
            ),
        },
        check=_ablation_lazy_buffer_check,
        tags=("ablation",),
    )
)


# ---------------------------------------------------------------------------
# Serving tier (repro.server): concurrent REST + WebSocket load
# ---------------------------------------------------------------------------


def _server_load_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    # Deferred so importing the suite registry never touches the serving
    # tier; the driver itself is stdlib-only (see repro.bench.server_load).
    from repro.bench.server_load import server_load_setup

    return server_load_setup(params, seed)


def _server_load_check(values: Mapping[str, Any], report: Any) -> None:
    from repro.bench.server_load import server_load_check

    server_load_check(values, report)


# ---------------------------------------------------------------------------
# Event-time ingestion (repro.streams): disorder absorption
# ---------------------------------------------------------------------------


def _stream_disorder_setup(
    params: Mapping[str, Any], seed: int
) -> Callable[[], Outcome]:
    # Deferred so importing the suite registry never touches the streams
    # subsystem's benchmark driver.
    from repro.bench.stream_disorder import stream_disorder_setup

    return stream_disorder_setup(params, seed)


def _stream_disorder_check(values: Mapping[str, Any], report: Any) -> None:
    from repro.bench.stream_disorder import stream_disorder_check

    stream_disorder_check(values, report)


def _stream_disorder_scenarios(profile: str) -> Tuple[Scenario, ...]:
    return tuple(
        Scenario(name, {"profile": profile, "disorder": disorder})
        for name, disorder in (
            ("in-order", 0.0),
            ("disorder-5", 0.05),
            ("disorder-20", 0.20),
        )
    )


register(
    BenchSpec(
        name="stream_disorder",
        description=(
            "event-time ingest: raw-event throughput and watermark-lag "
            "p50/p95 under 0/5/20% bounded disorder, with in-order "
            "equivalence and zero-drop checks"
        ),
        setup=_stream_disorder_setup,
        tiers={
            # Runs are ~15 ms on tiny, so single-shot timings gate too
            # noisily; a short warmup + median of 3 keeps CI stable.
            "tiny": TierPolicy(
                scenarios=_stream_disorder_scenarios("tiny"),
                warmup=1,
                repeat=3,
            ),
            "full": TierPolicy(
                scenarios=_stream_disorder_scenarios("twitter-small"),
                warmup=1,
                repeat=3,
            ),
        },
        baseline="in-order",
        check=_stream_disorder_check,
        tags=("streams",),
    )
)


# ---------------------------------------------------------------------------
# Supervised cluster runtime (repro.ha): failover recovery
# ---------------------------------------------------------------------------


def _ha_failover_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    # Deferred so importing the suite registry never touches the HA stack.
    from repro.bench.ha_failover import ha_failover_setup

    return ha_failover_setup(params, seed)


def _ha_failover_check(values: Mapping[str, Any], report: Any) -> None:
    from repro.bench.ha_failover import ha_failover_check

    ha_failover_check(values, report)


register(
    BenchSpec(
        name="ha_failover",
        description=(
            "supervised cluster: kill a shard mid-stream, measure restart + "
            "WAL-replay recovery, verify zero-loss equivalence and delta-"
            "checkpoint savings"
        ),
        setup=_ha_failover_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("failover", {"profile": "tiny", "shards": 2,
                                          "kill_after": 5, "checkpoint_every": 4,
                                          "queries": 4}),
                ),
                warmup=0, repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("failover", {"profile": "twitter-small", "shards": 4,
                                          "kill_after": 24, "checkpoint_every": 8,
                                          "queries": 8}),
                ),
                warmup=0, repeat=1,
            ),
        },
        check=_ha_failover_check,
        tags=("cluster", "ha"),
    )
)


register(
    BenchSpec(
        name="server_load",
        description="serving tier: concurrent REST + WebSocket push load over HTTP",
        setup=_server_load_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=(
                    Scenario("load", {"subscribers": 64, "queries": 16,
                                      "buckets": 6, "rest_clients": 8}),
                ),
                warmup=0, repeat=1,
            ),
            "full": TierPolicy(
                scenarios=(
                    Scenario("load", {"subscribers": 1_000, "queries": 50,
                                      "buckets": 8, "rest_clients": 32}),
                ),
                warmup=0, repeat=1,
            ),
        },
        check=_server_load_check,
        # Deliberately NOT tagged "service": the committed baseline records
        # the full tier (the 1000-subscriber acceptance run) and must not be
        # latency-compared against CI's tiny-tier runs; CI exercises the
        # tiny tier in the server smoke job instead.
        tags=("server",),
    )
)


# ---------------------------------------------------------------------------
# Hot-path kernels (repro.kernels): compiled vs NumPy reference
# ---------------------------------------------------------------------------


def _kernel_hotpath_setup(params: Mapping[str, Any], seed: int) -> Callable[[], Outcome]:
    # Deferred so importing the suite registry never touches the kernel
    # benchmark driver (see repro.bench.kernel_hotpath).
    from repro.bench.kernel_hotpath import kernel_hotpath_setup

    return kernel_hotpath_setup(params, seed)


def _kernel_hotpath_check(values: Mapping[str, Any], report: Any) -> None:
    from repro.bench.kernel_hotpath import kernel_hotpath_check

    kernel_hotpath_check(values, report)


def _kernel_hotpath_scenarios(max_buckets: int) -> Tuple[Scenario, ...]:
    return tuple(
        Scenario(name, {"dataset": "aminer-small", "max_buckets": max_buckets,
                        "kernels": mode})
        for name, mode in (("numpy", "numpy"), ("compiled", "auto"))
    )


register(
    BenchSpec(
        name="kernel_hotpath",
        description=(
            "hot-path kernel layer: batched ingest with compiled (Numba) "
            "kernels vs the NumPy reference, with per-kernel timings"
        ),
        setup=_kernel_hotpath_setup,
        tiers={
            "tiny": TierPolicy(
                scenarios=_kernel_hotpath_scenarios(max_buckets=48),
                warmup=1,
                repeat=3,
            ),
            "full": TierPolicy(
                scenarios=_kernel_hotpath_scenarios(max_buckets=0),
                warmup=1,
                repeat=5,
            ),
        },
        baseline="numpy",
        check=_kernel_hotpath_check,
        # Selected by CI perf-smoke via --tag kernels (alongside the micro
        # subset); deliberately not tagged "micro" so the historical micro
        # selection stays exactly the two ingest/query micro-benchmarks.
        tags=("kernels",),
    )
)
