"""The canonical ``BENCH_<name>.json`` report schema.

Every benchmark run produces one report per benchmark:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "benchmark": "micro_stream_update",
      "tier": "tiny",
      "seed": 2019,
      "created_unix": 1753600000.0,
      "environment": {"python": "...", "platform": "...", "cpu_count": 8,
                       "numpy": "...", "calibration_ms": 18.4},
      "checks_passed": true,
      "scenarios": [
        {"name": "batched", "params": {"dataset": "aminer-small"},
         "warmup": 1, "repeat": 3, "samples_ms": [.., ..],
         "p50_ms": 101.2, "p95_ms": 104.9, "mean_ms": 102.0,
         "min_ms": 100.8, "max_ms": 105.1,
         "units": 6000, "throughput_per_sec": 59288.5,
         "speedup_vs_baseline": 1.71, "metrics": {}}
      ]
    }

``environment.calibration_ms`` is the runtime of a fixed pure-Python/numpy
reference workload measured in the same process; :mod:`repro.bench.compare`
uses the ratio of two reports' calibrations to normalise latencies across
machines, which is what makes a committed baseline usable as a CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

SCHEMA_VERSION = "repro-bench/1"

#: Required keys (and their types) of a report dict.
_REPORT_FIELDS: Mapping[str, type] = {
    "schema": str,
    "benchmark": str,
    "tier": str,
    "seed": int,
    "created_unix": float,
    "environment": dict,
    "checks_passed": bool,
    "scenarios": list,
}

_SCENARIO_FIELDS: Mapping[str, type] = {
    "name": str,
    "params": dict,
    "warmup": int,
    "repeat": int,
    "samples_ms": list,
    "p50_ms": float,
    "p95_ms": float,
    "mean_ms": float,
    "min_ms": float,
    "max_ms": float,
    "units": int,
    "throughput_per_sec": float,
    "metrics": dict,
}


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of a non-empty sample list."""
    if not samples:
        raise ValueError("percentile of an empty sample list")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * fraction
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@dataclass
class ScenarioResult:
    """Measurements of one scenario."""

    name: str
    params: Dict[str, Any]
    warmup: int
    repeat: int
    samples_ms: List[float]
    units: int
    metrics: Dict[str, float] = field(default_factory=dict)
    speedup_vs_baseline: Optional[float] = None

    @property
    def p50_ms(self) -> float:
        """Median sample in milliseconds."""
        return percentile(self.samples_ms, 0.5)

    @property
    def p95_ms(self) -> float:
        """95th-percentile sample in milliseconds."""
        return percentile(self.samples_ms, 0.95)

    @property
    def mean_ms(self) -> float:
        """Mean sample in milliseconds."""
        return float(sum(self.samples_ms) / len(self.samples_ms))

    @property
    def throughput_per_sec(self) -> float:
        """Work units per second at the median latency."""
        p50 = self.p50_ms
        if p50 <= 0.0:
            return 0.0
        return self.units / (p50 / 1000.0)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable form."""
        return {
            "name": self.name,
            "params": dict(self.params),
            "warmup": self.warmup,
            "repeat": self.repeat,
            "samples_ms": [float(sample) for sample in self.samples_ms],
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "mean_ms": self.mean_ms,
            "min_ms": float(min(self.samples_ms)),
            "max_ms": float(max(self.samples_ms)),
            "units": int(self.units),
            "throughput_per_sec": self.throughput_per_sec,
            "speedup_vs_baseline": self.speedup_vs_baseline,
            "metrics": {key: float(value) for key, value in self.metrics.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a scenario result from its JSON form."""
        return cls(
            name=data["name"],
            params=dict(data["params"]),
            warmup=int(data["warmup"]),
            repeat=int(data["repeat"]),
            samples_ms=[float(sample) for sample in data["samples_ms"]],
            units=int(data["units"]),
            metrics=dict(data.get("metrics", {})),
            speedup_vs_baseline=data.get("speedup_vs_baseline"),
        )


@dataclass
class BenchReport:
    """One benchmark's results for one tier, in canonical form."""

    benchmark: str
    tier: str
    seed: int
    created_unix: float
    environment: Dict[str, Any]
    scenarios: List[ScenarioResult]
    checks_passed: bool = True
    check_error: Optional[str] = None

    def scenario(self, name: str) -> ScenarioResult:
        """Look up a scenario result by name (KeyError when absent)."""
        for result in self.scenarios:
            if result.name == name:
                return result
        raise KeyError(f"no scenario {name!r} in report {self.benchmark!r}")

    @property
    def calibration_ms(self) -> Optional[float]:
        """The environment's calibration runtime, when captured."""
        value = self.environment.get("calibration_ms")
        return float(value) if value is not None else None

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable form (schema ``repro-bench/1``)."""
        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "tier": self.tier,
            "seed": int(self.seed),
            "created_unix": float(self.created_unix),
            "environment": dict(self.environment),
            "checks_passed": bool(self.checks_passed),
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }
        if self.check_error is not None:
            data["check_error"] = self.check_error
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchReport":
        """Rebuild a report from its JSON form (validates first)."""
        validate_report_dict(data)
        return cls(
            benchmark=data["benchmark"],
            tier=data["tier"],
            seed=int(data["seed"]),
            created_unix=float(data["created_unix"]),
            environment=dict(data["environment"]),
            scenarios=[ScenarioResult.from_dict(entry) for entry in data["scenarios"]],
            checks_passed=bool(data["checks_passed"]),
            check_error=data.get("check_error"),
        )

    # -- persistence -----------------------------------------------------------

    def path_in(self, directory: Path) -> Path:
        """The canonical file path of this report under ``directory``."""
        return Path(directory) / f"BENCH_{self.benchmark}.json"

    def save(self, directory: Path) -> Path:
        """Write ``BENCH_<name>.json`` under ``directory`` and return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.path_in(directory)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Path) -> "BenchReport":
        """Read and validate a report file."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)

    def summary(self) -> str:
        """A compact human-readable table of the report."""
        lines = [
            f"{self.benchmark} [{self.tier}] seed={self.seed} "
            f"checks={'ok' if self.checks_passed else 'FAILED'}",
            f"  {'scenario':<24} {'p50_ms':>10} {'p95_ms':>10} "
            f"{'units':>8} {'units/s':>12} {'speedup':>8}",
        ]
        for scenario in self.scenarios:
            speedup = (
                f"{scenario.speedup_vs_baseline:.2f}x"
                if scenario.speedup_vs_baseline is not None
                else "-"
            )
            lines.append(
                f"  {scenario.name:<24} {scenario.p50_ms:>10.3f} "
                f"{scenario.p95_ms:>10.3f} {scenario.units:>8} "
                f"{scenario.throughput_per_sec:>12.1f} {speedup:>8}"
            )
        return "\n".join(lines)


def validate_report_dict(data: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``data`` is a schema-valid report dict."""
    if not isinstance(data, Mapping):
        raise ValueError("report must be a JSON object")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {data.get('schema')!r}, expected {SCHEMA_VERSION!r}"
        )
    for key, expected in _REPORT_FIELDS.items():
        if key not in data:
            raise ValueError(f"report is missing required key {key!r}")
        value = data[key]
        if expected is float and isinstance(value, int):
            continue
        if not isinstance(value, expected):
            raise ValueError(
                f"report key {key!r} has type {type(value).__name__}, "
                f"expected {expected.__name__}"
            )
    if not data["scenarios"]:
        raise ValueError("report has no scenarios")
    seen = set()
    for entry in data["scenarios"]:
        if not isinstance(entry, Mapping):
            raise ValueError("scenario entries must be JSON objects")
        for key, expected in _SCENARIO_FIELDS.items():
            if key not in entry:
                raise ValueError(f"scenario is missing required key {key!r}")
            value = entry[key]
            if expected is float and isinstance(value, int):
                continue
            if not isinstance(value, expected):
                raise ValueError(
                    f"scenario key {key!r} has type {type(value).__name__}, "
                    f"expected {expected.__name__}"
                )
        if not entry["samples_ms"]:
            raise ValueError(f"scenario {entry['name']!r} has no samples")
        if entry["name"] in seen:
            raise ValueError(f"duplicate scenario {entry['name']!r}")
        seen.add(entry["name"])
        speedup = entry.get("speedup_vs_baseline")
        if speedup is not None and not isinstance(speedup, (int, float)):
            raise ValueError("speedup_vs_baseline must be a number or null")


def load_reports(path: Path) -> Tuple[BenchReport, ...]:
    """Load one report file or every ``BENCH_*.json`` in a directory."""
    path = Path(path)
    if path.is_dir():
        return tuple(
            BenchReport.load(file) for file in sorted(path.glob("BENCH_*.json"))
        )
    return (BenchReport.load(path),)
