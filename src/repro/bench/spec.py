"""Declarative benchmark specifications and the process-wide registry.

A :class:`BenchSpec` describes one benchmark: a name, the scenarios of each
size tier (``tiny`` for CI smoke runs, ``full`` for real measurements), the
warmup/repeat policy, and an optional post-run check.  Scenarios are plain
parameter mappings; the spec's ``setup`` callable turns ``(params, seed)``
into a zero-argument measured callable, so all expensive preparation
(dataset generation, stream replay) happens outside the timed region.

Specs register themselves into a module-level registry; the CLI
(``repro-ksir bench``), the thin ``benchmarks/bench_*.py`` wrappers and the
tests all resolve benchmarks through :func:`get_spec` / :func:`iter_specs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

#: The two benchmark size tiers every spec must provide.
TIERS = ("tiny", "full")


@dataclass(frozen=True)
class Scenario:
    """One measured configuration of a benchmark.

    ``params`` are passed verbatim to the spec's ``setup`` callable; they
    are also recorded in the JSON report so a result is reproducible from
    its file alone.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TierPolicy:
    """Scenario set and warmup/repeat policy of one tier."""

    scenarios: Tuple[Scenario, ...]
    warmup: int = 1
    repeat: int = 3

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a tier needs at least one scenario")
        if self.warmup < 0 or self.repeat < 1:
            raise ValueError("warmup must be >= 0 and repeat >= 1")


@dataclass(frozen=True)
class Outcome:
    """What a measured callable returns.

    ``units`` is the amount of work one call performed (elements ingested,
    queries answered, ...) and feeds the throughput figure; ``artefact`` is
    an optional rendered table/figure persisted next to the JSON report;
    ``value`` is an arbitrary object handed to the spec's check function
    (never serialised); ``metrics`` are extra scenario-level numbers
    recorded verbatim in the JSON report.
    """

    units: int = 1
    artefact: Optional[str] = None
    value: Any = None
    metrics: Mapping[str, float] = field(default_factory=dict)


#: ``setup(params, seed)`` returns the zero-argument measured callable.
SetupFn = Callable[[Mapping[str, Any], int], Callable[[], Any]]

#: ``check(values, report)`` receives ``{scenario name: Outcome.value}`` and
#: the finished report; it raises ``AssertionError`` on failure.
CheckFn = Callable[[Mapping[str, Any], Any], None]


@dataclass(frozen=True)
class BenchSpec:
    """A registered benchmark.

    Attributes
    ----------
    name:
        Registry key; the JSON report is written as ``BENCH_<name>.json``.
    description:
        One-line summary shown by ``repro-ksir bench list``.
    setup:
        Builds the measured callable for one scenario (untimed).
    tiers:
        ``{"tiny": TierPolicy, "full": TierPolicy}``.
    baseline:
        Optional scenario name serving as the speedup reference: every
        other scenario's ``speedup_vs_baseline`` is ``baseline p50 / own
        p50``.
    check:
        Optional shape assertions run after measurement (see
        :data:`CheckFn`); a failure marks the report ``checks_passed:
        false`` and makes the runner exit non-zero.
    tags:
        Free-form labels used for CLI selection (e.g. ``micro`` for the CI
        perf-smoke subset).
    """

    name: str
    description: str
    setup: SetupFn
    tiers: Mapping[str, TierPolicy]
    baseline: Optional[str] = None
    check: Optional[CheckFn] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in " /\\"):
            raise ValueError(f"invalid benchmark name {self.name!r}")
        for tier in TIERS:
            if tier not in self.tiers:
                raise ValueError(f"benchmark {self.name!r} is missing tier {tier!r}")
        for tier, policy in self.tiers.items():
            names = [scenario.name for scenario in policy.scenarios]
            if len(names) != len(set(names)):
                raise ValueError(
                    f"benchmark {self.name!r} tier {tier!r} has duplicate scenarios"
                )
            if self.baseline is not None and self.baseline not in names:
                raise ValueError(
                    f"benchmark {self.name!r} tier {tier!r} lacks baseline "
                    f"scenario {self.baseline!r}"
                )

    def tier(self, name: str) -> TierPolicy:
        """The policy of one tier (KeyError when unknown)."""
        return self.tiers[name]


_REGISTRY: Dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    """Add a spec to the registry; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"benchmark {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Drop a spec (used by tests)."""
    _REGISTRY.pop(name, None)


def get_spec(name: str) -> BenchSpec:
    """Look up a registered spec by name."""
    _ensure_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown benchmark {name!r}; registered: {known}") from None


def spec_names() -> Tuple[str, ...]:
    """Sorted names of every registered benchmark."""
    _ensure_suites()
    return tuple(sorted(_REGISTRY))


def iter_specs(
    names: Sequence[str] = (), tags: Sequence[str] = ()
) -> Tuple[BenchSpec, ...]:
    """Resolve a benchmark selection.

    ``names`` picks specs explicitly (unknown names raise); ``tags`` keeps
    the specs carrying at least one of the given tags.  With neither, every
    registered spec is returned.
    """
    _ensure_suites()
    if names:
        selected = [get_spec(name) for name in names]
    else:
        selected = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if tags:
        wanted = set(tags)
        selected = [spec for spec in selected if wanted.intersection(spec.tags)]
    return tuple(selected)


def _ensure_suites() -> None:
    """Import the built-in suites exactly once (registration side effect)."""
    from repro.bench import suites  # noqa: F401  (import registers the specs)
