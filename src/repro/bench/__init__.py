"""Unified benchmark subsystem: registry, runner, JSON reports, comparison.

Quick tour:

* :mod:`repro.bench.spec` — declarative :class:`BenchSpec` definitions and
  the process-wide registry (``register`` / ``get_spec`` / ``iter_specs``).
* :mod:`repro.bench.runner` — ``run_spec`` executes one tier with monotonic
  timing, warmup/repeat policy and environment capture (including the
  cross-machine calibration figure).
* :mod:`repro.bench.report` — the canonical ``BENCH_<name>.json`` schema
  (p50/p95 latency, throughput, speedup vs. baseline) with validation and
  round-tripping.
* :mod:`repro.bench.compare` — ``compare(old, new, tolerance)`` classifies
  per-scenario regressions/improvements; CI gates on it.
* :mod:`repro.bench.suites` — the built-in suite covering every benchmark
  formerly scripted under ``benchmarks/``.
* :mod:`repro.bench.scripts` — the uniform ``main()``/pytest wrapper used
  by the thin ``benchmarks/bench_*.py`` shims.
"""

from repro.bench.compare import (
    ComparisonReport,
    ScenarioComparison,
    compare,
    compare_many,
    environment_warnings,
)
from repro.bench.report import (
    BenchReport,
    ScenarioResult,
    load_reports,
    validate_report_dict,
)
from repro.bench.runner import capture_environment, run_spec
from repro.bench.spec import (
    BenchSpec,
    Outcome,
    Scenario,
    TierPolicy,
    get_spec,
    iter_specs,
    register,
    spec_names,
)

__all__ = [
    "BenchReport",
    "BenchSpec",
    "ComparisonReport",
    "Outcome",
    "Scenario",
    "ScenarioComparison",
    "ScenarioResult",
    "TierPolicy",
    "capture_environment",
    "compare",
    "compare_many",
    "environment_warnings",
    "get_spec",
    "iter_specs",
    "load_reports",
    "register",
    "run_spec",
    "spec_names",
    "validate_report_dict",
]
