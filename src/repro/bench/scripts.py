"""The uniform entry point behind every ``benchmarks/bench_*.py`` shim.

Each script resolves its spec by name and delegates here, so every
benchmark accepts the same arguments (``--tier``, the legacy ``--tiny``
alias, ``--seed``, ``--output-dir``) and produces the same artefacts: a
schema-valid ``BENCH_<name>.json`` plus the rendered table/figure text.
:func:`bench_script` also returns a pytest test function running the tiny
tier, so ``pytest benchmarks/`` still smoke-checks every benchmark.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.bench.report import BenchReport
from repro.bench.runner import run_spec
from repro.bench.spec import TIERS, get_spec

#: Default location of JSON reports and rendered artefacts.
DEFAULT_OUTPUT_DIR = Path("benchmarks/results")


def write_outputs(
    report: BenchReport, values: Mapping[str, Any], output_dir: Path
) -> Path:
    """Persist a report and its rendered artefacts; returns the JSON path."""
    path = report.save(output_dir)
    artefacts: Dict[str, str] = values.get("__artefacts__", {})
    for scenario_name, text in artefacts.items():
        suffix = "" if len(artefacts) == 1 else f"_{scenario_name}"
        artefact_path = Path(output_dir) / f"{report.benchmark}{suffix}.txt"
        artefact_path.write_text(text + "\n", encoding="utf-8")
    return path


def run_and_report(
    name: str, tier: str, seed: int, output_dir: Path
) -> Tuple[BenchReport, Path]:
    """Run one registered benchmark and persist its outputs."""
    report, values = run_spec(get_spec(name), tier=tier, seed=seed)
    path = write_outputs(report, values, output_dir)
    return report, path


def bench_script(name: str) -> Tuple[Callable[[Optional[Sequence[str]]], int], Callable[[], None]]:
    """Build the ``main()`` and tiny-tier pytest test of one benchmark shim."""

    def main(argv: Optional[Sequence[str]] = None) -> int:
        spec = get_spec(name)
        parser = argparse.ArgumentParser(description=spec.description)
        parser.add_argument("--tier", choices=TIERS, default=None,
                            help="benchmark size tier (default: full)")
        parser.add_argument("--tiny", action="store_true",
                            help="alias for --tier tiny (CI smoke runs)")
        parser.add_argument("--seed", type=int, default=2019,
                            help="seed forwarded to dataset generation")
        parser.add_argument("--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR,
                            help="where BENCH_<name>.json and artefacts go")
        args = parser.parse_args(list(argv) if argv is not None else None)
        tier = args.tier or ("tiny" if args.tiny else "full")

        report, path = run_and_report(name, tier, args.seed, args.output_dir)
        print(report.summary())
        print(f"[saved to {path}]")
        if not report.checks_passed:
            print(f"CHECK FAILED: {report.check_error}")
            return 1
        return 0

    def test_tiny_tier() -> None:
        report, _values = run_spec(get_spec(name), tier="tiny")
        assert report.checks_passed, report.check_error

    return main, test_tiny_tier
