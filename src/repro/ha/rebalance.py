"""Live shard re-partitioning: N-shard cluster state onto M shards.

:func:`repartition_state` transforms one coordinator ``state_dict`` (any
shard count, any fan-out backend, either window representation) into an
equivalent coordinator state for a different shard count.  The supervisor
applies it by building a fresh engine around the transformed state and
swapping it in under the ingest lock — ingest pauses for the duration of
one state gather/restore, never for a drain of in-flight stream history.

**How the merge stays exact.**  In the sharded execution model a shard
holds (a) the *home* records of the elements it owns — complete follower
views, authoritative activity times, the element's ranked-list tuples —
and (b) *foreign replicas* of elements routed to it because their
followers live here; replicas may be stale, and that is part of the
normal execution contract (only home records are ever exported).  The
rebalancer therefore:

* merges every shard's window into one full-replica window, preferring
  the element's **old home shard** copy for per-element records (activity
  time, follower set) and taking unions elsewhere — the merged window is
  a superset of what any shard organically accumulates, and supersets
  are safe for exactly the reason stale replicas are;
* re-homes every owned element with the pure hash ownership function
  (:meth:`~repro.cluster.partition.HashPartitioner.shard_of`) over the
  new shard count — ownership is memoised in the planner table, so this
  is valid under *any* partitioning strategy, including stateful ones;
* slices the merged ranked-list entries by the new ownership, so each
  element's tuples land exactly on its new home shard — which its future
  followers are routed to by construction.

Per-shard ingest/export accounting restarts at zero (the history cannot
be attributed to shards that did not exist); cluster-level counters are
carried verbatim.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, cast

from repro.cluster.partition import HashPartitioner
from repro.store.codec import decode_followers, decode_id_list, decode_pairs


def _decode_ranked_entries(
    ranked_state: Mapping[str, Any]
) -> Dict[int, Tuple[int, List[List[float]]]]:
    """Both ranked-list entry shapes → ``{eid: (activity, [[topic, score]…])}``."""
    import numpy as np

    entries = ranked_state["entries"]
    decoded: Dict[int, Tuple[int, List[List[float]]]] = {}
    if isinstance(entries, Mapping):
        ids = np.asarray(entries["ids"], dtype=np.int64).tolist()
        activity = np.asarray(entries["activity"], dtype=np.int64).tolist()
        indptr = np.asarray(entries["indptr"], dtype=np.int64)
        topics = np.asarray(entries["topics"], dtype=np.int64).tolist()
        scores = np.asarray(entries["scores"], dtype=np.float64).tolist()
        for position, element_id in enumerate(ids):
            start, stop = int(indptr[position]), int(indptr[position + 1])
            pairs = [
                [int(topics[offset]), float(scores[offset])]
                for offset in range(start, stop)
            ]
            decoded[int(element_id)] = (int(activity[position]), pairs)
    else:
        for element_id, activity_time, score_pairs in entries:
            decoded[int(element_id)] = (
                int(activity_time),
                [[int(topic), float(score)] for topic, score in score_pairs],
            )
    return decoded


def repartition_state(
    state: Mapping[str, Any], new_num_shards: int
) -> Dict[str, Any]:
    """Transform a coordinator ``state_dict`` onto a new shard count.

    The result restores onto a coordinator configured for
    ``new_num_shards`` (same processor configuration) and answers every
    query identically to the source cluster — the merged candidate union
    is preserved because home records, follower views and ranked-list
    tuples all move to the new home shards intact.
    """
    if new_num_shards < 1:
        raise ValueError("new_num_shards must be >= 1")
    planner_state = cast(Mapping[str, Any], state["planner"])
    worker_states = cast(List[Mapping[str, Any]], state["workers"])
    old_num_shards = int(planner_state["num_shards"])
    if len(worker_states) != old_num_shards:
        raise ValueError(
            f"state holds {len(worker_states)} workers for "
            f"{old_num_shards} planner shards"
        )

    # -- re-home ownership (memoised table: valid for any strategy) -------------------
    old_owners = {int(eid): int(shard) for eid, shard in planner_state["owners"]}
    new_owners = {
        eid: HashPartitioner.shard_of(eid, new_num_shards) for eid in old_owners
    }
    strategy = str(planner_state["strategy"])
    strategy_state: Dict[str, Any] = dict(planner_state["strategy_state"])
    if "loads" in strategy_state:
        # Load-balanced accounting is per-shard history; restart it for the
        # new shard shape (it only steers *future* first-time assignments).
        strategy_state["loads"] = [0.0] * new_num_shards

    # -- merge the shard windows into one full replica --------------------------------
    archive: Dict[int, Any] = {}
    home_archive: Set[int] = set()
    active_ids: Set[int] = set()
    window_member_ids: Set[int] = set()
    last_activity: Dict[int, int] = {}
    home_activity: Set[int] = set()
    followers: Dict[int, Set[int]] = {}
    home_followers: Set[int] = set()
    touched_by_expiry: Set[int] = set()
    current_time: Optional[int] = None
    window_length: Optional[int] = None
    archive_horizon: Optional[int] = None
    buckets_processed = 0
    num_topics: Optional[int] = None
    ranked: Dict[int, Tuple[int, List[List[float]]]] = {}
    dirty_union: Set[int] = set()

    for shard_id, worker_state in enumerate(worker_states):
        processor_state = cast(Mapping[str, Any], worker_state["processor"])
        window_state = cast(Mapping[str, Any], processor_state["window"])
        if window_length is None:
            window_length = int(cast(int, window_state["window_length"]))
            archive_horizon = int(cast(int, window_state["archive_horizon"]))
        shard_time = window_state["current_time"]
        if shard_time is not None:
            current_time = (
                int(shard_time)
                if current_time is None
                else max(current_time, int(shard_time))
            )
        buckets_processed = max(
            buckets_processed, int(cast(int, processor_state["buckets_processed"]))
        )

        for payload in cast(List[Mapping[str, Any]], window_state["archive"]):
            element_id = int(cast(int, payload["element_id"]))
            is_home = old_owners.get(element_id) == shard_id
            if element_id not in archive or (
                is_home and element_id not in home_archive
            ):
                archive[element_id] = payload
            if is_home:
                home_archive.add(element_id)
        active_ids.update(decode_id_list(window_state["active_ids"]))
        window_member_ids.update(decode_id_list(window_state["window_member_ids"]))
        for element_id, time in decode_pairs(window_state["last_activity"]):
            is_home = old_owners.get(element_id) == shard_id
            if is_home:
                last_activity[element_id] = time
                home_activity.add(element_id)
            elif element_id not in home_activity:
                last_activity[element_id] = max(
                    last_activity.get(element_id, time), time
                )
        for parent_id, follower_ids in decode_followers(
            window_state["followers"]
        ).items():
            is_home = old_owners.get(parent_id) == shard_id
            if is_home:
                followers[parent_id] = set(follower_ids)
                home_followers.add(parent_id)
            elif parent_id not in home_followers:
                followers.setdefault(parent_id, set()).update(follower_ids)
        touched_by_expiry.update(decode_id_list(window_state["touched_by_expiry"]))

        ranked_state = cast(Mapping[str, Any], processor_state["ranked_lists"])
        if num_topics is None:
            num_topics = int(cast(int, ranked_state["num_topics"]))
        dirty_union.update(decode_id_list(ranked_state["dirty_topics"]))
        for element_id, entry in _decode_ranked_entries(ranked_state).items():
            # Ranked tuples live only on home shards, so collisions would
            # mean duplicated ownership; prefer the home copy regardless.
            if old_owners.get(element_id) == shard_id or element_id not in ranked:
                ranked[element_id] = entry

    # Windows only reference elements they archived; after the union that
    # still holds, but guard the invariant explicitly.
    active_ids &= set(archive)
    window_member_ids &= active_ids
    merged_window = {
        "window_length": window_length,
        "archive_horizon": archive_horizon,
        "current_time": current_time,
        "archive": [archive[eid] for eid in sorted(archive)],
        "active_ids": sorted(active_ids),
        "window_member_ids": sorted(window_member_ids),
        "last_activity": sorted(
            (eid, time) for eid, time in last_activity.items() if eid in active_ids
        ),
        "followers": [
            [eid, sorted(follower_set & window_member_ids)]
            for eid, follower_set in sorted(followers.items())
            if eid in active_ids
        ],
        "touched_by_expiry": sorted(touched_by_expiry & active_ids),
    }

    # -- slice ranked lists by the new ownership ---------------------------------------
    shard_entries: List[List[List[Any]]] = [[] for _ in range(new_num_shards)]
    for element_id in sorted(ranked):
        activity_time, pairs = ranked[element_id]
        home = new_owners.get(element_id)
        if home is None:
            # Owned once, since trimmed by the planner but still indexed
            # (activity horizons differ slightly); re-home it the same way.
            home = HashPartitioner.shard_of(element_id, new_num_shards)
        shard_entries[home].append([element_id, activity_time, pairs])

    new_workers: List[Dict[str, Any]] = []
    for shard_id in range(new_num_shards):
        shard_topics: Set[int] = set(dirty_union)
        for _, _, pairs in shard_entries[shard_id]:
            shard_topics.update(int(topic) for topic, _ in pairs)
        new_workers.append(
            {
                "shard_id": shard_id,
                # Per-shard ingest/export accounting restarts: history is
                # not attributable to shards that did not exist.
                "home_ingested": 0,
                "foreign_ingested": 0,
                "exports": 0,
                "exported_candidates": 0,
                "processor": {
                    "elements_processed": 0,
                    "buckets_processed": buckets_processed,
                    "window": merged_window,
                    "ranked_lists": {
                        "num_topics": num_topics,
                        "entries": shard_entries[shard_id],
                        # Conservative: a superset of dirty topics only ever
                        # causes extra standing-query re-evaluation.
                        "dirty_topics": sorted(shard_topics),
                    },
                },
            }
        )

    return {
        "buckets_processed": int(cast(int, state["buckets_processed"])),
        "elements_processed": int(cast(int, state["elements_processed"])),
        "current_time": state["current_time"],
        "planner": {
            "num_shards": new_num_shards,
            "strategy": strategy,
            "strategy_state": strategy_state,
            "owners": sorted(new_owners.items()),
            "last_activity": [
                [int(eid), int(time)] for eid, time in planner_state["last_activity"]
            ],
        },
        "workers": new_workers,
    }
