"""The bucket write-ahead log of the supervised cluster runtime.

The supervisor appends every *prepared* bucket (topic distributions already
inferred) to the WAL before handing it to the coordinator, and truncates
the log whenever a checkpoint lands.  A worker restarted after a failure is
therefore restorable as ``latest checkpoint + replay of exactly its WAL
gap`` — routing is recomputed through the planner, which is idempotent for
already-seen elements, so the replayed per-shard buckets are byte-identical
to the originals.

The log lives in memory (the failure domain is a *worker process*; the
coordinator process holding the WAL survives).  Passing ``path`` addition-
ally appends each entry to a pickle stream on disk and reloads it on
construction, which extends recovery to coordinator restarts.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.element import SocialElement


@dataclass(frozen=True)
class WALEntry:
    """One logged bucket: its sequence number, elements and end time."""

    seq: int
    end_time: int
    elements: Tuple[SocialElement, ...]


class BucketWAL:
    """Append-only log of the buckets ingested since the last checkpoint."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._entries: List[WALEntry] = []
        self._next_seq = 0
        self._path = Path(path) if path is not None else None
        self._handle: Optional[io.BufferedWriter] = None
        if self._path is not None:
            self._reload()
            self._handle = open(self._path, "ab")

    def _reload(self) -> None:
        assert self._path is not None
        if not self._path.exists():
            return
        with open(self._path, "rb") as handle:
            while True:
                try:
                    entry = pickle.load(handle)
                except EOFError:
                    break
                except (pickle.UnpicklingError, ValueError):
                    break  # torn tail write: everything before it is intact
                self._entries.append(entry)
        if self._entries:
            self._next_seq = self._entries[-1].seq + 1

    # -- the log ----------------------------------------------------------------------

    def append(self, elements: Sequence[SocialElement], end_time: int) -> int:
        """Log one bucket; returns its sequence number."""
        entry = WALEntry(
            seq=self._next_seq, end_time=int(end_time), elements=tuple(elements)
        )
        self._entries.append(entry)
        self._next_seq += 1
        if self._handle is not None:
            pickle.dump(entry, self._handle)
            self._handle.flush()
        return entry.seq

    def entries_since(self, seq: int) -> List[WALEntry]:
        """Every logged entry with a sequence number greater than ``seq``."""
        return [entry for entry in self._entries if entry.seq > seq]

    def entries_through(self, seq: int) -> List[WALEntry]:
        """Every retained entry with a sequence number up to ``seq``."""
        return [entry for entry in self._entries if entry.seq <= seq]

    def truncate(self) -> int:
        """Drop every retained entry (a checkpoint covers them); returns count.

        Sequence numbers keep counting across truncations, so gap
        arithmetic (``entries_since(checkpoint_seq)``) stays valid.
        """
        dropped = len(self._entries)
        self._entries.clear()
        if self._handle is not None:
            self._handle.truncate(0)
            self._handle.seek(0)
        return dropped

    # -- accounting -------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The sequence number of the newest entry (-1 when empty-forever)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Retained entry/element counts for telemetry."""
        return {
            "entries": len(self._entries),
            "elements": sum(len(entry.elements) for entry in self._entries),
            "last_seq": self.last_seq,
        }

    def close(self) -> None:
        """Close the on-disk stream (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
