"""Incremental (delta) checkpoints chained on the v2 checkpoint format.

A :class:`CheckpointChain` is a directory of segments described by a
``CHAIN.json`` manifest:

* ``NNNNNN-full/`` — an ordinary engine checkpoint
  (:func:`repro.api.checkpoint.write_checkpoint` directory, loadable on
  its own);
* ``NNNNNN-delta/`` — a **structural diff** against the previous
  segment's state: ``DELTA.json`` holding the diff tree with its array
  leaves extracted into ``arrays.npz`` exactly like the v2 state file.

Restoring folds the newest full segment forward through its deltas, which
is bit-exact: :func:`apply_delta` reconstructs precisely the state tree
:func:`diff_state` was given.

The diff exploits how the columnar store's state evolves between buckets —
the change-epoch design means most state is untouched per bucket:

* dict nodes diff per key;
* NumPy arrays diff **by row**: only rows that changed since the base
  segment (plus any appended tail) are written, mirroring the store's
  dirtied-row tracking — unchanged column slices cost nothing;
* lists (the window archive) diff by longest reusable run, so a sliding
  archive writes only its new tail instead of the whole history;
* every other leaf is compared by value.

``compact()`` folds a whole chain into a single fresh full checkpoint and
deletes the superseded segments.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.checkpoint import (
    CheckpointError,
    CheckpointPayload,
    _extract_arrays,
    _inflate_arrays,
    _json_default,
    read_checkpoint,
    write_checkpoint,
)
from repro.api.config import EngineConfig
from repro.topics.inference import TopicInferencer

CHAIN_FILE = "CHAIN.json"
CHAIN_FORMAT = "ksir-ha-chain"
CHAIN_VERSION = 1
DELTA_FILE = "DELTA.json"
DELTA_ARRAYS_FILE = "arrays.npz"
DELTA_FORMAT = "ksir-ha-delta"

#: Diff-tree sentinels.  Chosen to be disjoint from any state-dict keys.
_SAME = {"__same__": True}
_SET = "__set__"
_DICT = "__dict__"
_DROP = "__drop__"
_LIST = "__list__"
_ELEMS = "__elems__"
_ROWS = "__rows__"
_ARRAY = "__array__"

#: Arrays at or below this size are inlined into ``DELTA.json`` (dtype and
#: shape preserved exactly) instead of becoming ``arrays.npz`` members: a
#: zip member costs ~250 bytes of ``.npy``+zip framing, which dwarfs the
#: row patches a per-bucket diff typically produces.
_INLINE_ARRAY_BYTES = 512


def _inline_small_arrays(node: Any) -> Any:
    """Replace small array leaves with exact JSON-encodable markers."""
    if isinstance(node, np.ndarray):
        if node.nbytes <= _INLINE_ARRAY_BYTES:
            return {
                _ARRAY: {
                    "dtype": node.dtype.str,
                    "shape": list(node.shape),
                    "data": node.ravel().tolist(),
                }
            }
        return node
    if isinstance(node, dict):
        return {key: _inline_small_arrays(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_inline_small_arrays(value) for value in node]
    return node


def _restore_inline_arrays(node: Any) -> Any:
    """Inverse of :func:`_inline_small_arrays` (dtype/shape bit-exact)."""
    if isinstance(node, dict):
        if set(node.keys()) == {_ARRAY}:
            spec = node[_ARRAY]
            return np.asarray(
                spec["data"], dtype=np.dtype(str(spec["dtype"]))
            ).reshape(spec["shape"])
        return {key: _restore_inline_arrays(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_restore_inline_arrays(value) for value in node]
    return node


# -- state normalisation ---------------------------------------------------------------


def normalise_state(node: Any) -> Any:
    """Canonicalise a state tree the way a JSON round-trip would.

    Tuples become lists, dict keys become strings and NumPy scalars become
    Python scalars, while array leaves stay arrays.  Diffing normalised
    trees guarantees that folding a chain reproduces *exactly* what a
    direct full-checkpoint restore would read back from disk.
    """
    if isinstance(node, np.ndarray):
        return node
    if isinstance(node, dict):
        return {str(key): normalise_state(value) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [normalise_state(value) for value in node]
    if isinstance(node, (np.integer, np.floating, np.bool_)):
        return node.item()
    return node


def _equal(a: Any, b: Any) -> bool:
    """Deep equality over normalised state trees (arrays included)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not isinstance(a, np.ndarray) or not isinstance(b, np.ndarray):
            return False
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        if a.dtype.kind == "f":
            return bool(np.array_equal(a, b, equal_nan=True))
        return bool(np.array_equal(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        if a.keys() != b.keys():
            return False
        return all(_equal(a[key], b[key]) for key in a)
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return False
        return all(_equal(x, y) for x, y in zip(a, b))
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        return False
    result = a == b
    return bool(result)


# -- diff ------------------------------------------------------------------------------


def _changed_rows(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Indices (along axis 0) where rows differ; NaN == NaN for floats."""
    neq = old != new
    if old.dtype.kind == "f":
        neq &= ~(np.isnan(old) & np.isnan(new))
    if neq.ndim > 1:
        # axis-tuple reduction (not reshape(n, -1)): reshape cannot infer
        # the trailing dimension of a zero-row array.
        neq = neq.any(axis=tuple(range(1, neq.ndim)))
    return np.nonzero(neq)[0].astype(np.int64)


def _diff_array(old: np.ndarray, new: np.ndarray) -> Dict[str, Any]:
    if (
        old.dtype != new.dtype
        or old.ndim != new.ndim
        or old.ndim == 0
        or old.shape[1:] != new.shape[1:]
    ):
        return {_SET: new}
    if old.shape == new.shape:
        if old.dtype.kind == "f":
            same = np.array_equal(old, new, equal_nan=True)
        else:
            same = np.array_equal(old, new)
        if same:
            return dict(_SAME)
    common = min(len(old), len(new))
    rows = _changed_rows(old[:common], new[:common])
    values = new[rows]
    tail = new[common:]
    patch_bytes = values.nbytes + tail.nbytes + rows.nbytes
    if patch_bytes >= new.nbytes:
        return {_SET: new}
    patch: Dict[str, Any] = {
        "length": int(len(new)),
        "indices": rows,
        "values": np.ascontiguousarray(values),
    }
    if len(tail):
        patch["tail"] = np.ascontiguousarray(tail)
    return {_ROWS: patch}


def _diff_list(old: List[Any], new: List[Any]) -> Dict[str, Any]:
    """List diff: reusable runs of the old list, or per-index recursion.

    Three candidate shapes cover the state lists that matter:

    * common prefix+suffix ``keep``/``ins`` opcodes (in-place edits);
    * drop-front+append-back opcodes (the sliding archive: old entries
      pruned from the front, new buckets appended);
    * for equal lengths, an **element-wise** diff recursing into each
      changed position (the per-shard ``workers`` list: every element
      changes a little every bucket, none is replaced wholesale).

    The cheapest candidate by estimated serialised size wins; a wholesale
    replace is the fallback.
    """
    if not old or not new:
        return dict(_SAME) if not old and not new else {_SET: new}

    op_candidates: List[List[List[Any]]] = []

    # Alignment 1: shared prefix and suffix around an edited middle.
    prefix = 0
    limit = min(len(old), len(new))
    while prefix < limit and _equal(old[prefix], new[prefix]):
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and _equal(old[len(old) - 1 - suffix], new[len(new) - 1 - suffix])
    ):
        suffix += 1
    if prefix == len(old) == len(new):
        return dict(_SAME)
    ops: List[List[Any]] = []
    if prefix:
        ops.append(["keep", 0, prefix])
    middle = new[prefix : len(new) - suffix]
    if middle:
        ops.append(["ins", middle])
    if suffix:
        ops.append(["keep", len(old) - suffix, suffix])
    op_candidates.append(ops)

    # Alignment 2: old[k:] survives as the new prefix, tail appended.
    for k in range(1, len(old)):
        keep = len(old) - k
        if keep <= len(new) and _equal(old[k], new[0]):
            if all(_equal(old[k + i], new[i]) for i in range(1, keep)):
                ops2: List[List[Any]] = [["keep", k, keep]]
                tail = new[keep:]
                if tail:
                    ops2.append(["ins", tail])
                op_candidates.append(ops2)
            break

    candidates: List[Dict[str, Any]] = [{_SET: new}]
    for ops_list in op_candidates:
        inserted = sum(len(op[1]) for op in ops_list if op[0] == "ins")
        if inserted < len(new):
            candidates.append({_LIST: ops_list})

    # Alignment 3: same length — recurse into each changed position.
    if len(old) == len(new):
        changed: Dict[str, Any] = {}
        for index, (a, b) in enumerate(zip(old, new)):
            sub = diff_state(a, b)
            if sub != _SAME:
                changed[str(index)] = sub
        candidates.append({_ELEMS: changed})

    return min(candidates, key=_tree_bytes)


def diff_state(old: Any, new: Any) -> Dict[str, Any]:
    """A structural delta such that ``apply_delta(old, delta) == new``.

    Both trees must be :func:`normalise_state` output (the chain always
    normalises before diffing).
    """
    if isinstance(old, np.ndarray) and isinstance(new, np.ndarray):
        return _diff_array(old, new)
    if isinstance(old, dict) and isinstance(new, dict):
        changed: Dict[str, Any] = {}
        dropped = [key for key in old if key not in new]
        for key, value in new.items():
            if key not in old:
                changed[key] = {_SET: value}
                continue
            sub = diff_state(old[key], value)
            if sub != _SAME:
                changed[key] = sub
        if not changed and not dropped:
            return dict(_SAME)
        node: Dict[str, Any] = {_DICT: changed}
        if dropped:
            node[_DROP] = dropped
        return node
    if isinstance(old, list) and isinstance(new, list):
        return _diff_list(old, new)
    if _equal(old, new):
        return dict(_SAME)
    return {_SET: new}


def apply_delta(base: Any, delta: Dict[str, Any]) -> Any:
    """Fold one :func:`diff_state` delta over its base tree."""
    if "__same__" in delta:
        return base
    if _SET in delta:
        return delta[_SET]
    if _ROWS in delta:
        patch = delta[_ROWS]
        assert isinstance(base, np.ndarray)
        length = int(patch["length"])
        out = np.array(base[: min(length, len(base))], copy=True)
        indices = np.asarray(patch["indices"], dtype=np.int64)
        if len(indices):
            out[indices] = patch["values"]
        tail = patch.get("tail")
        if tail is not None and len(tail):
            out = np.concatenate([out, tail], axis=0)
        return np.ascontiguousarray(out)
    if _LIST in delta:
        assert isinstance(base, list)
        result: List[Any] = []
        for op in delta[_LIST]:
            if op[0] == "keep":
                _, start, count = op
                result.extend(base[int(start) : int(start) + int(count)])
            else:
                result.extend(op[1])
        return result
    if _ELEMS in delta:
        assert isinstance(base, list)
        patched = list(base)
        for key, sub in delta[_ELEMS].items():
            index = int(key)
            patched[index] = apply_delta(base[index], sub)
        return patched
    if _DICT in delta:
        assert isinstance(base, dict)
        dropped = set(delta.get(_DROP, ()))
        result_dict: Dict[str, Any] = {
            key: value for key, value in base.items() if key not in dropped
        }
        for key, sub in delta[_DICT].items():
            result_dict[key] = apply_delta(base.get(key), sub)
        return result_dict
    raise CheckpointError(f"unrecognised delta node: {sorted(delta)[:4]}")


# -- the chain -------------------------------------------------------------------------


def _tree_bytes(node: Any) -> int:
    """Approximate serialised size of a state tree (arrays by nbytes)."""
    if isinstance(node, np.ndarray):
        return int(node.nbytes)
    if isinstance(node, dict):
        return sum(len(str(k)) + _tree_bytes(v) for k, v in node.items())
    if isinstance(node, (list, tuple)):
        return sum(_tree_bytes(v) for v in node)
    return len(str(node))


def _directory_bytes(directory: Path) -> int:
    total = 0
    for child in directory.rglob("*"):
        if child.is_file():
            total += child.stat().st_size
    return total


class CheckpointChain:
    """A directory of chained full + delta checkpoints of one engine."""

    def __init__(self, directory: Union[str, Path], full_every: int = 8) -> None:
        if full_every < 1:
            raise ValueError("full_every must be >= 1")
        self._directory = Path(directory)
        self._full_every = int(full_every)
        self._segments: List[Dict[str, Any]] = []
        self._state: Optional[Dict[str, Any]] = None  # state as of the newest segment
        manifest = self._directory / CHAIN_FILE
        if manifest.exists():
            self._load_manifest()

    @staticmethod
    def is_chain(path: Union[str, Path]) -> bool:
        """Whether ``path`` looks like a checkpoint chain directory."""
        return (Path(path) / CHAIN_FILE).exists()

    @property
    def directory(self) -> Path:
        """The chain directory."""
        return self._directory

    @property
    def segments(self) -> Tuple[Dict[str, Any], ...]:
        """The manifest entries, oldest first."""
        return tuple(dict(segment) for segment in self._segments)

    def _load_manifest(self) -> None:
        try:
            with open(self._directory / CHAIN_FILE, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"{self._directory / CHAIN_FILE} is corrupt: {error}"
            ) from error
        if manifest.get("format") != CHAIN_FORMAT:
            raise CheckpointError(
                f"{self._directory} has chain format {manifest.get('format')!r}, "
                f"expected {CHAIN_FORMAT!r}"
            )
        version = int(manifest.get("version", 0))
        if not 1 <= version <= CHAIN_VERSION:
            raise CheckpointError(f"chain version {version} is not supported")
        self._segments = list(manifest.get("segments", []))

    def _write_manifest(self) -> None:
        manifest = {
            "format": CHAIN_FORMAT,
            "version": CHAIN_VERSION,
            "full_every": self._full_every,
            "segments": self._segments,
        }
        scratch = self._directory / (CHAIN_FILE + ".tmp")
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(scratch, self._directory / CHAIN_FILE)

    # -- saving ------------------------------------------------------------------------

    def save(self, engine: Any, force_full: bool = False) -> str:
        """Append one segment capturing the engine's current state.

        The segment is a full snapshot on the configured cadence (every
        ``full_every``-th segment, always the first) or when forced, and a
        structural delta against the previous segment otherwise.  Returns
        the segment name.
        """
        state = normalise_state(engine.backend.state_dict())
        index = len(self._segments)
        deltas_since_full = 0
        for segment in reversed(self._segments):
            if segment["kind"] == "full":
                break
            deltas_since_full += 1
        make_full = (
            force_full
            or not self._segments
            or deltas_since_full + 1 >= self._full_every
        )
        self._directory.mkdir(parents=True, exist_ok=True)
        if make_full:
            name = f"{index:06d}-full"
            write_checkpoint(
                self._directory / name,
                backend_name=engine.backend_name,
                config=engine.config,
                topic_model=engine.topic_model,
                state=state,
            )
            kind = "full"
        else:
            assert self._state is not None or self._segments
            base = self._materialised_state()
            delta = diff_state(base, state)
            name = f"{index:06d}-delta"
            segment_dir = self._directory / name
            segment_dir.mkdir(parents=True, exist_ok=True)
            arrays: Dict[str, np.ndarray] = {}
            stored = _extract_arrays(_inline_small_arrays(delta), arrays, "")
            if arrays:
                np.savez(segment_dir / DELTA_ARRAYS_FILE, **arrays)
            with open(segment_dir / DELTA_FILE, "w", encoding="utf-8") as handle:
                json.dump(
                    {"format": DELTA_FORMAT, "delta": stored},
                    handle,
                    default=_json_default,
                )
            kind = "delta"
        self._state = state
        self._segments.append(
            {
                "kind": kind,
                "name": name,
                "buckets_processed": int(engine.buckets_processed),
                "current_time": engine.current_time,
                "bytes": _directory_bytes(self._directory / name),
                "state_bytes": _tree_bytes(state),
            }
        )
        self._write_manifest()
        return name

    # -- loading -----------------------------------------------------------------------

    def _read_delta(self, name: str) -> Dict[str, Any]:
        segment_dir = self._directory / name
        try:
            with open(segment_dir / DELTA_FILE, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"{segment_dir / DELTA_FILE} is missing or corrupt: {error}"
            ) from error
        if payload.get("format") != DELTA_FORMAT:
            raise CheckpointError(f"{segment_dir} is not a delta segment")
        delta = payload["delta"]
        arrays_path = segment_dir / DELTA_ARRAYS_FILE
        if arrays_path.exists():
            try:
                with np.load(arrays_path, allow_pickle=False) as arrays:
                    delta = _inflate_arrays(delta, arrays)
            except Exception as error:
                raise CheckpointError(
                    f"{arrays_path} is corrupt: {error}"
                ) from error
        return _restore_inline_arrays(delta)

    def _base_index(self) -> int:
        """Index of the newest full segment."""
        for position in range(len(self._segments) - 1, -1, -1):
            if self._segments[position]["kind"] == "full":
                return position
        raise CheckpointError(f"chain {self._directory} holds no full segment")

    def read_payload(self) -> CheckpointPayload:
        """The chain's newest state folded into a checkpoint payload."""
        if not self._segments:
            raise CheckpointError(f"chain {self._directory} is empty")
        base_position = self._base_index()
        payload = read_checkpoint(self._directory / self._segments[base_position]["name"])
        state = normalise_state(payload.state)
        for segment in self._segments[base_position + 1 :]:
            state = apply_delta(state, self._read_delta(segment["name"]))
        return CheckpointPayload(
            version=payload.version,
            backend=payload.backend,
            config=payload.config,
            topic_model=payload.topic_model,
            state=state,
            library_version=payload.library_version,
        )

    def _materialised_state(self) -> Dict[str, Any]:
        if self._state is None:
            self._state = self.read_payload().state
        return self._state

    def load_state(self) -> Dict[str, Any]:
        """The newest backend state tree (cached after the first fold)."""
        return self._materialised_state()

    def restore_engine(
        self,
        inferencer: Optional[TopicInferencer] = None,
        config: Optional[EngineConfig] = None,
    ) -> Any:
        """Build a fresh engine from the chain's newest state."""
        from repro.api.engine import KSIREngine

        payload = self.read_payload()
        engine_config = config if config is not None else payload.config
        engine = KSIREngine(payload.topic_model, engine_config, inferencer=inferencer)
        if engine.backend_name != payload.backend:
            raise CheckpointError(
                f"chain was written by the {payload.backend!r} backend but the "
                f"configuration selects {engine.backend_name!r}"
            )
        engine.backend.restore_state(payload.state)
        return engine

    # -- maintenance -------------------------------------------------------------------

    def compact(self) -> str:
        """Fold the whole chain into one fresh full segment, drop the rest.

        Restores from the chain stay bit-exact (compaction writes exactly
        the folded state) while recovery no longer pays the fold.
        """
        payload = self.read_payload()
        superseded = [segment["name"] for segment in self._segments]
        index = len(self._segments)
        name = f"{index:06d}-full"
        write_checkpoint(
            self._directory / name,
            backend_name=payload.backend,
            config=payload.config,
            topic_model=payload.topic_model,
            state=payload.state,
        )
        buckets = self._segments[-1]["buckets_processed"] if self._segments else 0
        current_time = self._segments[-1].get("current_time") if self._segments else None
        self._segments = [
            {
                "kind": "full",
                "name": name,
                "buckets_processed": buckets,
                "current_time": current_time,
                "bytes": _directory_bytes(self._directory / name),
                "state_bytes": _tree_bytes(payload.state),
            }
        ]
        self._write_manifest()
        self._state = normalise_state(payload.state)
        for stale in superseded:
            shutil.rmtree(self._directory / stale, ignore_errors=True)
        return name

    def stats(self) -> Dict[str, Any]:
        """Per-segment sizes and the full-vs-delta savings ratio."""
        full_bytes = [s["bytes"] for s in self._segments if s["kind"] == "full"]
        delta_bytes = [s["bytes"] for s in self._segments if s["kind"] == "delta"]
        mean_full = sum(full_bytes) / len(full_bytes) if full_bytes else 0.0
        mean_delta = sum(delta_bytes) / len(delta_bytes) if delta_bytes else 0.0
        return {
            "segments": len(self._segments),
            "full_segments": len(full_bytes),
            "delta_segments": len(delta_bytes),
            "mean_full_bytes": mean_full,
            "mean_delta_bytes": mean_delta,
            "delta_savings": 1.0 - (mean_delta / mean_full) if mean_full else 0.0,
            "total_bytes": sum(s["bytes"] for s in self._segments),
        }
