"""Fault injection for the supervised cluster runtime.

Three failure modes, matching the recovery paths `repro.ha` implements —
used by the test suite and the ``BENCH_ha_failover`` benchmark, and
runnable against a live deployment through ``repro-ksir ha drill``:

* :func:`kill_worker` — hard-kill one shard worker process (SIGKILL), the
  crash/OOM case the heartbeat or the next in-band command detects;
* :func:`delay_heartbeat` — make a worker sleep before answering liveness
  probes, the hung-but-alive case that must trip the heartbeat timeout;
* :func:`corrupt_checkpoint` — damage the newest full segment's array
  member on disk, the torn-copy case that must surface as a clear
  :class:`~repro.api.checkpoint.CheckpointError` instead of garbage state.

Every function takes the object it attacks explicitly; nothing here is
wired into production code paths.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Union

from repro.api.checkpoint import ARRAYS_FILE, MANIFEST_FILE
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.process_backend import ProcessFanout
from repro.ha.delta import CheckpointChain


def _fanout_of(target: Union[ClusterCoordinator, ProcessFanout]) -> ProcessFanout:
    fanout = target.fanout if isinstance(target, ClusterCoordinator) else target
    if not isinstance(fanout, ProcessFanout):
        raise TypeError(
            "fault injection needs the process fan-out backend "
            '(ClusterConfig(backend="process")); in-process workers cannot '
            "be killed independently"
        )
    return fanout


def kill_worker(
    target: Union[ClusterCoordinator, ProcessFanout],
    shard_id: int,
    wait: float = 5.0,
) -> None:
    """SIGKILL one shard worker process and wait until it is gone.

    The shard is *not* marked dead — exactly like a real crash, the
    failure becomes visible only when the heartbeat or the next command
    hits the broken pipe.
    """
    fanout = _fanout_of(target)
    fanout.kill_shard(shard_id)
    deadline = time.monotonic() + wait
    while time.monotonic() < deadline:
        if not fanout._processes[shard_id].is_alive():  # noqa: SLF001
            return
        time.sleep(0.01)
    raise TimeoutError(f"shard {shard_id} still alive {wait}s after kill")


def delay_heartbeat(
    target: Union[ClusterCoordinator, ProcessFanout],
    shard_id: int,
    delay: float,
) -> None:
    """Make one worker sleep ``delay`` seconds before answering each ping.

    A delay beyond the supervisor's ``heartbeat_timeout`` makes a healthy
    worker indistinguishable from a hung one — the timeout must declare it
    dead (its late reply can no longer be matched).  ``delay=0`` restores
    normal behaviour.
    """
    _fanout_of(target).set_chaos(shard_id, ping_delay=float(delay))


def corrupt_checkpoint(path: Union[str, Path], mode: str = "truncate") -> Path:
    """Damage a checkpoint on disk; returns the file that was corrupted.

    ``path`` may be a plain checkpoint directory or a checkpoint chain
    (the newest *full* segment is attacked — deltas are useless without
    it).  Modes: ``"truncate"`` cuts the ``state_arrays.npz`` member in
    half (torn copy), ``"garbage"`` overwrites its head (bit rot),
    ``"remove"`` deletes it (partial rsync).  Loading the damaged
    checkpoint must raise :class:`~repro.api.checkpoint.CheckpointError`.
    """
    directory = Path(path)
    if CheckpointChain.is_chain(directory):
        chain = CheckpointChain(directory)
        fulls = [
            str(segment["name"])
            for segment in chain.segments
            if segment["kind"] == "full"
        ]
        if not fulls:
            raise FileNotFoundError(f"chain {directory} holds no full segment")
        directory = directory / fulls[-1]
    if not (directory / MANIFEST_FILE).exists():
        raise FileNotFoundError(f"{directory} is not a checkpoint directory")
    victim = directory / ARRAYS_FILE
    if not victim.exists():
        raise FileNotFoundError(
            f"{victim} does not exist (object-store checkpoints have no "
            "arrays member to corrupt)"
        )
    if mode == "truncate":
        size = victim.stat().st_size
        with open(victim, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    elif mode == "garbage":
        with open(victim, "r+b") as handle:
            handle.write(os.urandom(min(64, victim.stat().st_size or 64)))
    elif mode == "remove":
        victim.unlink()
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return victim
