"""Configuration of the supervised cluster runtime (:mod:`repro.ha`).

Kept stdlib-only so :class:`~repro.api.config.EngineConfig` can embed an
``ha`` section without creating an import cycle through the heavier
supervisor/checkpoint modules.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional


def _check_known_keys(payload: Mapping[str, Any], known: frozenset, label: str) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown {label} keys: {', '.join(unknown)}")


@dataclass(frozen=True)
class HAConfig:
    """Tuning of failure detection, checkpoint cadence and the bucket WAL.

    Parameters
    ----------
    heartbeat_interval:
        Seconds between liveness probes of the shard worker processes.
    heartbeat_timeout:
        Seconds a worker may take to answer a probe before it is declared
        dead (a timed-out worker is always restarted: its late reply can no
        longer be matched to a request).
    checkpoint_every:
        Buckets between automatic checkpoints taken by the supervisor
        (``0`` = checkpoints are taken only on explicit
        :meth:`~repro.ha.supervisor.ClusterSupervisor.checkpoint` calls).
    full_every:
        Chain cadence: every ``full_every``-th checkpoint segment is a full
        snapshot, the segments in between are structural deltas
        (``1`` = every checkpoint is full, deltas disabled).
    wal_capacity:
        Bucket count at which the supervisor forces a checkpoint so the
        replay gap — and with it worst-case recovery time — stays bounded.
    auto_restart:
        Whether the heartbeat loop restarts and restores dead workers
        automatically (``False`` = detect and report only).
    """

    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    checkpoint_every: int = 0
    full_every: int = 8
    wal_capacity: int = 4096
    auto_restart: bool = True

    _KNOWN = frozenset(
        {
            "heartbeat_interval",
            "heartbeat_timeout",
            "checkpoint_every",
            "full_every",
            "wal_capacity",
            "auto_restart",
        }
    )

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.full_every < 1:
            raise ValueError("full_every must be >= 1")
        if self.wal_capacity < 1:
            raise ValueError("wal_capacity must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (inverse of :meth:`from_dict`)."""
        payload = asdict(self)
        return {key: payload[key] for key in sorted(self._KNOWN)}

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "HAConfig":
        """Rebuild from :meth:`to_dict` output (None = defaults)."""
        if payload is None:
            return cls()
        _check_known_keys(payload, cls._KNOWN, "HAConfig")
        return cls(
            heartbeat_interval=float(payload.get("heartbeat_interval", 0.5)),
            heartbeat_timeout=float(payload.get("heartbeat_timeout", 2.0)),
            checkpoint_every=int(payload.get("checkpoint_every", 0)),
            full_every=int(payload.get("full_every", 8)),
            wal_capacity=int(payload.get("wal_capacity", 4096)),
            auto_restart=bool(payload.get("auto_restart", True)),
        )
