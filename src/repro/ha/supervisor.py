"""The cluster supervisor: heartbeats, failover and checkpoint cadence.

:class:`ClusterSupervisor` wraps a sharded :class:`~repro.api.KSIREngine`
and owns its operational lifecycle:

* **ingest** flows through :meth:`ingest_bucket`, which logs every
  prepared bucket to the :class:`~repro.ha.wal.BucketWAL` *before* the
  coordinator sees it, then takes automatic delta checkpoints on the
  configured cadence;
* a **heartbeat thread** probes the process shard workers; a worker that
  dies (or stops answering) is restarted, restored from the latest
  checkpoint-chain state and caught up by replaying exactly its WAL gap —
  the surviving shards are never touched;
* a mid-bucket failure (a worker dying while a bucket is in flight) is
  recovered in-line: the live shards already hold the bucket, so the
  restored worker replays through it and the coordinator counters are
  committed once — no bucket is ever lost or double-applied;
* **rebalancing** re-partitions the live coordinator state onto a new
  shard count (:mod:`repro.ha.rebalance`) and swaps the engine without
  stopping ingest.

The supervisor requires the ``sharded`` backend.  Failure *injection*
lives in :mod:`repro.ha.chaos`; this module only ever heals.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.backends import ShardedBackend
from repro.api.engine import KSIREngine
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.process_backend import ProcessFanout, ShardFailure
from repro.core.element import SocialElement
from repro.core.query import QueryResult
from repro.ha.config import HAConfig
from repro.ha.delta import CheckpointChain
from repro.ha.rebalance import repartition_state
from repro.ha.wal import BucketWAL


class ClusterSupervisor:
    """Supervised runtime over a sharded engine: detect, restore, replay."""

    def __init__(
        self,
        engine: KSIREngine,
        ha: Optional[HAConfig] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        wal_path: Optional[Union[str, Path]] = None,
    ) -> None:
        backend = engine.backend
        if not isinstance(backend, ShardedBackend):
            raise TypeError(
                "ClusterSupervisor requires a sharded engine "
                '(EngineConfig(backend="cluster" / "sharded")); got '
                f"backend {engine.backend_name!r}"
            )
        self._engine = engine
        self._ha = ha if ha is not None else (engine.config.ha or HAConfig())
        self._wal = BucketWAL(wal_path)
        self._chain: Optional[CheckpointChain] = None
        if checkpoint_dir is not None:
            self._chain = CheckpointChain(
                checkpoint_dir, full_every=self._ha.full_every
            )
        # Sequence number of the newest WAL entry covered by a checkpoint;
        # the replay gap of a restored shard is everything after it.
        self._checkpoint_seq = -1
        self._buckets_at_checkpoint = engine.buckets_processed
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._recoveries = 0
        self._rebalances = 0
        self._last_recovery_seconds: Optional[float] = None
        self._last_replayed_buckets = 0
        self._last_heartbeat: Optional[float] = None

    # -- wiring ------------------------------------------------------------------------

    @property
    def engine(self) -> KSIREngine:
        """The supervised engine (replaced in place by :meth:`rebalance`)."""
        return self._engine

    @property
    def coordinator(self) -> ClusterCoordinator:
        """The supervised cluster coordinator."""
        backend = self._engine.backend
        assert isinstance(backend, ShardedBackend)
        return backend.coordinator

    @property
    def wal(self) -> BucketWAL:
        """The bucket write-ahead log."""
        return self._wal

    @property
    def chain(self) -> Optional[CheckpointChain]:
        """The checkpoint chain (None = checkpointing disabled)."""
        return self._chain

    @property
    def ha_config(self) -> HAConfig:
        """The supervision tuning in effect."""
        return self._ha

    def _process_fanout(self) -> Optional[ProcessFanout]:
        fanout = self.coordinator.fanout
        return fanout if isinstance(fanout, ProcessFanout) else None

    # -- heartbeats --------------------------------------------------------------------

    def start(self) -> None:
        """Start the heartbeat thread (no-op on in-process fan-outs)."""
        if self._process_fanout() is None or self._heartbeat_thread is not None:
            return
        self._stop.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="ksir-ha-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def stop(self) -> None:
        """Stop the heartbeat thread (idempotent; does not close the engine)."""
        self._stop.set()
        thread = self._heartbeat_thread
        if thread is not None:
            thread.join(timeout=max(5.0, 2 * self._ha.heartbeat_timeout))
            self._heartbeat_thread = None

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._ha.heartbeat_interval):
            fanout = self._process_fanout()
            if fanout is None:
                continue
            try:
                fanout.ping(self._ha.heartbeat_timeout)
            except Exception:  # pragma: no cover - probe races with close()
                continue
            self._last_heartbeat = time.monotonic()
            if fanout.dead_shards and self._ha.auto_restart:
                with self._lock:
                    dead = self._process_fanout()
                    if dead is not None and dead.dead_shards:
                        self._recover(dead.dead_shards)

    # -- ingest with write-ahead logging ----------------------------------------------

    def ingest_bucket(self, elements: Sequence[SocialElement], end_time: int) -> None:
        """Log one bucket, ingest it, and heal any shard that dies doing so."""
        with self._lock:
            coordinator = self.coordinator
            prepared = coordinator.prepare_elements(elements)
            seq = self._wal.append(prepared, end_time)
            try:
                self._engine.ingest_bucket(prepared, end_time)
            except ShardFailure as failure:
                if failure.pre_send:
                    # Nothing was applied anywhere (the fan-out refused the
                    # command because a shard was already marked dead, e.g.
                    # by a concurrent heartbeat probe): heal up to the
                    # previous bucket, then run this one normally.
                    self._recover(failure.shard_ids, upto_seq=seq - 1)
                    self._engine.ingest_bucket(prepared, end_time)
                else:
                    # The live shards completed the bucket before the
                    # failure surfaced (the fan-out drains every pipe
                    # first); replay it into the restored shard only and
                    # commit the counters exactly once.
                    self._recover(failure.shard_ids, upto_seq=seq)
                    coordinator.commit_bucket(len(prepared), end_time)
            self._maybe_checkpoint()

    def process_stream(self, stream: Any, until: Optional[int] = None) -> None:
        """Replay a stream through :meth:`ingest_bucket` (shared bucketing)."""
        from repro.core.stream import replay_stream

        replay_stream(
            stream,
            self.coordinator.config.bucket_length,
            self.ingest_bucket,
            until,
        )

    def query(self, *args: Any, **kwargs: Any) -> QueryResult:
        """Answer a query, healing and retrying once on a shard failure."""
        with self._lock:
            try:
                return self._engine.query(*args, **kwargs)
            except ShardFailure as failure:
                self._recover(failure.shard_ids)
                return self._engine.query(*args, **kwargs)

    # -- checkpoints -------------------------------------------------------------------

    def checkpoint(self, force_full: bool = False) -> Optional[str]:
        """Take a chain checkpoint now and truncate the WAL; returns its name."""
        if self._chain is None:
            return None
        with self._lock:
            name = self._chain.save(self._engine, force_full=force_full)
            self._checkpoint_seq = self._wal.last_seq
            self._buckets_at_checkpoint = self._engine.buckets_processed
            self._wal.truncate()
            return name

    def _maybe_checkpoint(self) -> None:
        if self._chain is None:
            return
        since = self._engine.buckets_processed - self._buckets_at_checkpoint
        if self._ha.checkpoint_every and since >= self._ha.checkpoint_every:
            self.checkpoint()
        elif len(self._wal) >= self._ha.wal_capacity:
            self.checkpoint()

    # -- recovery ----------------------------------------------------------------------

    def _checkpoint_worker_states(self) -> Optional[List[Dict[str, Any]]]:
        if self._chain is None or not self._chain.segments:
            return None
        state = self._chain.load_state()
        coordinator_state = state.get("coordinator")
        if coordinator_state is None:
            return None
        workers = coordinator_state["workers"]
        assert isinstance(workers, list)
        return workers

    def _recover(
        self, shard_ids: Sequence[int], upto_seq: Optional[int] = None
    ) -> None:
        """Restart dead shards, restore them and replay their WAL gap.

        ``upto_seq`` bounds the replay (used when the failing bucket must
        be retried in full rather than replayed); by default the whole
        retained log is replayed.
        """
        started = time.perf_counter()
        coordinator = self.coordinator
        fanout = self._process_fanout()
        if fanout is None:
            raise ShardFailure(
                shard_ids, "in-process shard workers cannot be restarted"
            )
        checkpoint_workers = self._checkpoint_worker_states()
        entries = self._wal.entries_since(self._checkpoint_seq)
        if upto_seq is not None:
            entries = [entry for entry in entries if entry.seq <= upto_seq]
        for shard_id in shard_ids:
            fanout.restart_shard(shard_id)
            if checkpoint_workers is not None:
                coordinator.restore_shard(shard_id, checkpoint_workers[shard_id])
            # Without a checkpoint the fresh worker starts empty and the
            # WAL — never truncated in that configuration — replays the
            # shard's entire history.
            for entry in entries:
                coordinator.replay_bucket_to_shard(
                    shard_id, list(entry.elements), entry.end_time
                )
        self._recoveries += 1
        self._last_replayed_buckets = len(entries)
        self._last_recovery_seconds = time.perf_counter() - started

    # -- rebalancing -------------------------------------------------------------------

    def rebalance(self, num_shards: int) -> KSIREngine:
        """Re-partition the live cluster onto ``num_shards`` workers.

        Gathers the coordinator's full state, re-homes every element onto
        the new shard count, builds a fresh engine around it and swaps it
        in under the ingest lock — stream ingestion continues with the
        next bucket.  The old engine is closed.  Returns the new engine.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        with self._lock:
            old_engine = self._engine
            coordinator = self.coordinator
            state = coordinator.state_dict()
            new_state = repartition_state(state, num_shards)
            old_config = old_engine.config
            assert old_config.cluster is not None
            new_config = replace(
                old_config, cluster=replace(old_config.cluster, num_shards=num_shards)
            )
            new_engine = KSIREngine(old_engine.topic_model, new_config)
            backend = new_engine.backend
            assert isinstance(backend, ShardedBackend)
            backend.coordinator.restore_state(new_state)
            self._engine = new_engine
            old_engine.close()
            self._rebalances += 1
            # Previous checkpoints describe the old shard shape; anchor the
            # chain with a full snapshot of the new one.
            if self._chain is not None:
                self.checkpoint(force_full=True)
            else:
                self._checkpoint_seq = self._wal.last_seq
                self._wal.truncate()
            return new_engine

    # -- telemetry ---------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Supervision status for ``/telemetry`` and the CLI."""
        fanout = self._process_fanout()
        shards: List[Dict[str, Any]] = []
        num_shards = self.coordinator.num_shards
        dead: Tuple[int, ...] = fanout.dead_shards if fanout is not None else ()
        for shard_id in range(num_shards):
            shards.append({"shard_id": shard_id, "alive": shard_id not in dead})
        chain_stats = self._chain.stats() if self._chain is not None else None
        return {
            "supervised": True,
            "backend": self.coordinator.cluster_config.backend,
            "num_shards": num_shards,
            "shards": shards,
            "healthy": not dead,
            "heartbeat": {
                "interval": self._ha.heartbeat_interval,
                "timeout": self._ha.heartbeat_timeout,
                "running": self._heartbeat_thread is not None,
                "age_seconds": (
                    None
                    if self._last_heartbeat is None
                    else time.monotonic() - self._last_heartbeat
                ),
            },
            "recoveries": self._recoveries,
            "rebalances": self._rebalances,
            "last_recovery_seconds": self._last_recovery_seconds,
            "last_replayed_buckets": self._last_replayed_buckets,
            "wal": self._wal.stats(),
            "chain": chain_stats,
        }

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Stop supervision and close the engine (idempotent)."""
        self.stop()
        self._wal.close()
        self._engine.close()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
