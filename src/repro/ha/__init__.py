"""``repro.ha`` — the supervised cluster runtime.

High availability for the sharded k-SIR engine: heartbeat failure
detection over process shard workers, a bucket write-ahead log, chained
full + delta checkpoints, single-shard restore-and-replay recovery, live
shard re-partitioning, and the fault-injection harness the tests and the
``BENCH_ha_failover`` benchmark drive it all with.

Entry points
------------
* :class:`HAConfig` — supervision tuning (also embeddable as
  ``EngineConfig.ha``);
* :class:`ClusterSupervisor` — wrap a sharded engine, call
  :meth:`~repro.ha.supervisor.ClusterSupervisor.start`, ingest through
  :meth:`~repro.ha.supervisor.ClusterSupervisor.ingest_bucket`;
* :class:`CheckpointChain` — delta-checkpoint chains, usable standalone;
* :class:`BucketWAL` — the bucket log;
* :func:`repartition_state` — N→M shard state transformation;
* :mod:`repro.ha.chaos` — kill/delay/corrupt fault injection.

Only the stdlib-light configuration and WAL are imported eagerly; the
supervisor, chain and rebalancer pull in the engine stack and are loaded
on first attribute access (this also keeps ``repro.api.config`` free to
import :class:`HAConfig` without a cycle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ha.config import HAConfig
from repro.ha.wal import BucketWAL, WALEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ha.delta import CheckpointChain, apply_delta, diff_state
    from repro.ha.rebalance import repartition_state
    from repro.ha.supervisor import ClusterSupervisor

__all__ = [
    "HAConfig",
    "BucketWAL",
    "WALEntry",
    "CheckpointChain",
    "ClusterSupervisor",
    "apply_delta",
    "diff_state",
    "repartition_state",
]

_LAZY = {
    "CheckpointChain": ("repro.ha.delta", "CheckpointChain"),
    "apply_delta": ("repro.ha.delta", "apply_delta"),
    "diff_state": ("repro.ha.delta", "diff_state"),
    "repartition_state": ("repro.ha.rebalance", "repartition_state"),
    "ClusterSupervisor": ("repro.ha.supervisor", "ClusterSupervisor"),
}


def __getattr__(name: str) -> object:
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(module_name), attribute)
