"""Stream (de)serialisation: JSONL round-trips for social streams.

Generated (or externally collected) streams can be persisted so experiments
reuse exactly the same data across runs.  The format is one JSON object per
line, matching :meth:`repro.core.element.SocialElement.to_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.core.element import SocialElement
from repro.core.stream import SocialStream

PathLike = Union[str, Path]


def save_stream_jsonl(stream: Union[SocialStream, Iterable[SocialElement]], path: PathLike) -> int:
    """Write a stream to ``path`` as JSONL; returns the number of elements written."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with destination.open("w", encoding="utf-8") as handle:
        for element in stream:
            handle.write(json.dumps(element.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_stream_jsonl(path: PathLike) -> SocialStream:
    """Read a JSONL stream written by :func:`save_stream_jsonl`."""
    source = Path(path)
    elements = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{source}:{line_number}: invalid JSON") from error
            elements.append(SocialElement.from_dict(payload))
    return SocialStream(elements)
