"""Stream (de)serialisation: JSONL round-trips for social streams.

Generated (or externally collected) streams can be persisted so experiments
reuse exactly the same data across runs.  The format is one JSON object per
line, matching :meth:`repro.core.element.SocialElement.to_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.core.element import SocialElement
from repro.core.stream import SocialStream

PathLike = Union[str, Path]


def save_stream_jsonl(stream: Union[SocialStream, Iterable[SocialElement]], path: PathLike) -> int:
    """Write a stream to ``path`` as JSONL; returns the number of elements written."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with destination.open("w", encoding="utf-8") as handle:
        for element in stream:
            handle.write(json.dumps(element.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_stream_jsonl(path: PathLike, *, expect_sorted: bool = False) -> SocialStream:
    """Read a JSONL stream written by :func:`save_stream_jsonl`.

    Every error names the offending ``file:line``.  By default a file
    whose lines are out of ``(timestamp, element_id)`` order is tolerated
    — the elements are re-inserted at their sorted positions, so the
    result is identical to loading the sorted file.  ``expect_sorted``
    turns such a violation into a :class:`ValueError` instead: use it
    when the file is supposed to be a canonical :func:`save_stream_jsonl`
    artefact and silent re-sorting would hide corruption.  Raw
    arrival-order feeds belong to :class:`repro.streams.JsonlReplaySource`,
    which preserves file order rather than sorting it.
    """
    source = Path(path)
    stream = SocialStream()
    previous_key = None
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{source}:{line_number}: invalid JSON") from error
            try:
                element = SocialElement.from_dict(payload)
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{source}:{line_number}: invalid element: {error}"
                ) from None
            if expect_sorted:
                key = (element.timestamp, element.element_id)
                if previous_key is not None and key < previous_key:
                    raise ValueError(
                        f"{source}:{line_number}: out-of-order element "
                        f"(timestamp {element.timestamp}, id {element.element_id}) "
                        f"after (timestamp {previous_key[0]}, id {previous_key[1]}); "
                        "the stream format is sorted by (timestamp, element_id) — "
                        "load with expect_sorted=False to re-sort tolerated input"
                    )
                previous_key = key
            try:
                stream.append(element)
            except ValueError as error:
                raise ValueError(f"{source}:{line_number}: {error}") from None
    return stream
