"""Dataset profiles: the shape parameters of the synthetic stream generator.

Each profile mirrors one of the paper's corpora (Table 3), scaled to run on a
laptop.  The statistics that matter to the k-SIR algorithms are:

* **document length** — AMiner abstracts are long (≈ 49 words after
  preprocessing), Reddit comments medium (≈ 8.6), tweets short (≈ 5.1);
* **reference density** — AMiner papers cite ≈ 3.7 references on average,
  Reddit ≈ 0.85, Twitter ≈ 0.62;
* **topic sparsity** — the paper observes fewer than 2 topics per element;
* **score skew** — a small fraction of elements concentrates most of the
  representativeness mass, which is what ranked-list pruning exploits.

Every profile is available in a ``-small`` variant (used by the tests and by
the default benchmark settings) and a full-size variant for longer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class DatasetProfile:
    """Shape parameters of one synthetic social stream.

    Parameters
    ----------
    name:
        Profile identifier (e.g. ``"twitter-small"``).
    description:
        Human-readable description shown in reports.
    num_elements:
        Number of stream elements to generate.
    vocabulary_size:
        Number of distinct words in the generated vocabulary.
    num_topics:
        Number of latent topics ``z`` of the ground-truth model.
    duration:
        Stream time span in seconds.
    mean_document_length:
        Mean number of tokens per element (Poisson-distributed, ≥ 2).
    mean_references:
        Mean number of references per element (Poisson-distributed).
    topic_concentration:
        Dirichlet concentration of the per-element topic mixture; small
        values give the 1–2-topics-per-element sparsity of real streams.
    word_concentration:
        Dirichlet concentration of the ground-truth topic-word rows; small
        values give skewed, well-separated topics.
    max_topics_per_element:
        Hard cap on the number of topics an element sits on (the mixture is
        truncated and renormalised), matching the paper's observation.
    reference_recency:
        Exponential decay rate (per window of ``reference_horizon`` seconds)
        of the probability of referencing older elements.
    reference_popularity:
        Preferential-attachment exponent: parents are chosen proportional to
        ``(1 + in-degree)^reference_popularity``.
    reference_horizon:
        Only elements at most this many seconds old can be referenced.
    topical_reference_bias:
        Weight of topical similarity when choosing a parent (0 = ignore
        topics, 1 = choose only same-topic parents).
    """

    name: str
    description: str
    num_elements: int
    vocabulary_size: int
    num_topics: int
    duration: int
    mean_document_length: float
    mean_references: float
    topic_concentration: float = 0.08
    word_concentration: float = 0.05
    max_topics_per_element: int = 2
    reference_recency: float = 1.5
    reference_popularity: float = 0.8
    reference_horizon: int = 24 * 3600
    topical_reference_bias: float = 0.7

    def __post_init__(self) -> None:
        require_positive(self.num_elements, "num_elements")
        require_positive(self.vocabulary_size, "vocabulary_size")
        require_positive(self.num_topics, "num_topics")
        require_positive(self.duration, "duration")
        require_positive(self.mean_document_length, "mean_document_length")
        require_in_range(self.mean_references, "mean_references", 0.0, None)
        require_positive(self.topic_concentration, "topic_concentration")
        require_positive(self.word_concentration, "word_concentration")
        require_positive(self.max_topics_per_element, "max_topics_per_element")
        require_positive(self.reference_horizon, "reference_horizon")
        require_in_range(self.topical_reference_bias, "topical_reference_bias", 0.0, 1.0)

    def scaled(self, factor: float, name: str = "") -> "DatasetProfile":
        """A copy with ``num_elements`` (and duration) scaled by ``factor``."""
        require_positive(factor, "factor")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            num_elements=max(1, int(self.num_elements * factor)),
            duration=max(1, int(self.duration * factor)),
        )

    def with_topics(self, num_topics: int, name: str = "") -> "DatasetProfile":
        """A copy with a different number of ground-truth topics."""
        require_positive(num_topics, "num_topics")
        return replace(self, name=name or f"{self.name}-z{num_topics}", num_topics=num_topics)


def _build_profiles() -> Dict[str, DatasetProfile]:
    profiles: Dict[str, DatasetProfile] = {}

    aminer = DatasetProfile(
        name="aminer",
        description="Academic papers: long documents, dense citation references",
        num_elements=60_000,
        vocabulary_size=8_000,
        num_topics=50,
        duration=14 * 24 * 3600,
        mean_document_length=49.0,
        mean_references=3.68,
        reference_horizon=4 * 24 * 3600,
        reference_recency=0.8,
        reference_popularity=1.0,
    )
    reddit = DatasetProfile(
        name="reddit",
        description="Forum submissions and comments: medium documents, sparse references",
        num_elements=80_000,
        vocabulary_size=6_000,
        num_topics=50,
        duration=14 * 24 * 3600,
        mean_document_length=8.6,
        mean_references=0.85,
        reference_horizon=2 * 24 * 3600,
        reference_recency=1.5,
        reference_popularity=0.8,
    )
    twitter = DatasetProfile(
        name="twitter",
        description="Microblog posts: short documents, bursty retweet references",
        num_elements=80_000,
        vocabulary_size=5_000,
        num_topics=50,
        duration=12 * 24 * 3600,
        mean_document_length=5.1,
        mean_references=0.62,
        reference_horizon=24 * 3600,
        reference_recency=2.5,
        reference_popularity=1.2,
    )

    for profile in (aminer, reddit, twitter):
        profiles[profile.name] = profile

    small_overrides = {
        "aminer": dict(num_elements=6_000, vocabulary_size=2_000, num_topics=25,
                       duration=2 * 24 * 3600),
        "reddit": dict(num_elements=9_000, vocabulary_size=1_600, num_topics=25,
                       duration=2 * 24 * 3600),
        "twitter": dict(num_elements=9_000, vocabulary_size=1_400, num_topics=25,
                        duration=42 * 3600),
    }
    for base_name, overrides in small_overrides.items():
        base = profiles[base_name]
        profiles[f"{base_name}-small"] = replace(
            base,
            name=f"{base_name}-small",
            description=f"{base.description} (laptop-scale)",
            **overrides,
        )

    # A tiny profile for unit tests and quick smoke runs.
    profiles["tiny"] = DatasetProfile(
        name="tiny",
        description="Tiny stream for unit tests",
        num_elements=300,
        vocabulary_size=200,
        num_topics=5,
        duration=6 * 3600,
        mean_document_length=6.0,
        mean_references=0.8,
        reference_horizon=3 * 3600,
    )
    return profiles


DATASET_PROFILES: Dict[str, DatasetProfile] = _build_profiles()
"""All named dataset profiles, keyed by profile name."""


def get_profile(name: str) -> DatasetProfile:
    """Look up a profile by name (``ValueError`` with choices when unknown)."""
    try:
        return DATASET_PROFILES[name]
    except KeyError as error:
        available = ", ".join(sorted(DATASET_PROFILES))
        raise ValueError(f"unknown dataset profile {name!r}; available: {available}") from error


def profile_names() -> Tuple[str, ...]:
    """All registered profile names."""
    return tuple(sorted(DATASET_PROFILES))
