"""Synthetic social-stream generation.

The generator stands in for the paper's proprietary AMiner / Reddit / Twitter
crawls (see DESIGN.md §4).  It draws a ground-truth topic model, then
generates a timestamped stream of elements whose documents are sampled from
sparse per-element topic mixtures and whose references follow a
recency/popularity/topical-affinity preferential-attachment process.  The
result reproduces the two properties the paper's pruning relies on:

* **score skew** — a few elements accumulate most references and most
  high-weight words, so per-topic scores are heavily skewed;
* **topic sparsity** — each element sits on at most
  ``profile.max_topics_per_element`` topics.

The ground-truth topic model is returned as the query-time oracle (the paper
likewise assumes a pre-trained model given as a black box), and each element
carries its ground-truth topic distribution.  Training LDA/BTM on the
generated corpus instead is supported through
:meth:`SyntheticDataset.train_topic_model` for end-to-end runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.element import SocialElement
from repro.core.query import KSIRQuery
from repro.core.stream import SocialStream
from repro.datasets.profiles import DatasetProfile, get_profile
from repro.topics.inference import TopicInferencer
from repro.topics.model import MatrixTopicModel, TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, make_rng

#: Thematic seed words used to make generated topics human-readable.  Topic
#: ``i`` is anchored on theme ``i mod len(TOPIC_THEMES)``; examples and the
#: simulated user study draw their query keywords from these pools.
TOPIC_THEMES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("soccer", ("soccer", "goal", "league", "champions", "striker", "midfield",
                "penalty", "transfer", "derby", "keeper", "offside", "fixture")),
    ("basketball", ("basketball", "playoffs", "dunk", "rebound", "pointguard", "court",
                    "finals", "assist", "buzzer", "rookie", "franchise", "roster")),
    ("music", ("music", "album", "concert", "singer", "guitar", "lyrics",
               "playlist", "band", "tour", "vinyl", "chorus", "remix")),
    ("movies", ("movie", "film", "director", "trailer", "premiere", "actor",
                "screenplay", "boxoffice", "sequel", "cinema", "casting", "oscar")),
    ("politics", ("election", "senate", "policy", "campaign", "ballot", "congress",
                  "debate", "candidate", "referendum", "coalition", "minister", "parliament")),
    ("economy", ("market", "inflation", "stocks", "economy", "trade", "interest",
                 "earnings", "currency", "deficit", "investor", "recession", "tariff")),
    ("technology", ("software", "startup", "cloud", "hardware", "developer", "silicon",
                    "gadget", "prototype", "platform", "opensource", "algorithm", "device")),
    ("ai", ("neural", "learning", "model", "training", "dataset", "inference",
            "transformer", "robotics", "automation", "benchmark", "embedding", "agent")),
    ("science", ("research", "experiment", "physics", "particle", "telescope", "laboratory",
                 "theory", "quantum", "discovery", "journal", "hypothesis", "measurement")),
    ("health", ("health", "vaccine", "clinic", "nutrition", "therapy", "diagnosis",
                "hospital", "wellness", "epidemic", "surgery", "immunity", "fitness")),
    ("climate", ("climate", "carbon", "emissions", "renewable", "wildfire", "drought",
                 "glacier", "solar", "windfarm", "sustainability", "warming", "ecosystem")),
    ("travel", ("travel", "flight", "hotel", "beach", "passport", "itinerary",
                "tourism", "backpacking", "resort", "cruise", "landmark", "airfare")),
    ("food", ("recipe", "restaurant", "chef", "baking", "cuisine", "flavor",
              "brunch", "dessert", "ingredient", "barbecue", "vegan", "noodle")),
    ("gaming", ("gaming", "console", "esports", "multiplayer", "speedrun", "quest",
                "loot", "arcade", "streamer", "patch", "leaderboard", "expansion")),
    ("fashion", ("fashion", "runway", "designer", "couture", "streetwear", "fabric",
                 "collection", "sneakers", "stylist", "vintage", "tailor", "accessory")),
    ("space", ("rocket", "orbit", "satellite", "astronaut", "launch", "lunar",
               "mars", "spacecraft", "telemetry", "payload", "booster", "capsule")),
    ("finance", ("banking", "fintech", "credit", "mortgage", "portfolio", "dividend",
                 "hedge", "liquidity", "valuation", "audit", "bond", "equity")),
    ("education", ("education", "university", "tuition", "curriculum", "scholarship", "lecture",
                   "classroom", "graduate", "semester", "literacy", "tutoring", "campus")),
    ("cars", ("electric", "sedan", "roadster", "horsepower", "battery", "chassis",
              "autopilot", "charging", "motorshow", "hybrid", "torque", "dealership")),
    ("weather", ("storm", "hurricane", "forecast", "blizzard", "rainfall", "heatwave",
                 "tornado", "humidity", "frost", "monsoon", "barometer", "flooding")),
    ("crypto", ("bitcoin", "blockchain", "wallet", "mining", "ledger", "token",
                "exchange", "defi", "halving", "altcoin", "custody", "staking")),
    ("books", ("novel", "author", "bestseller", "publisher", "paperback", "memoir",
               "chapter", "bookstore", "anthology", "manuscript", "poetry", "translation")),
    ("art", ("gallery", "painting", "sculpture", "exhibit", "canvas", "curator",
             "mural", "portrait", "installation", "sketch", "auction", "ceramics")),
    ("startups", ("founder", "funding", "venture", "seedround", "pitch", "accelerator",
                  "unicorn", "burnrate", "scaleup", "cofounder", "runway", "acquisition")),
)


@dataclass
class SyntheticDataset:
    """A generated stream bundled with its ground truth.

    Attributes
    ----------
    profile:
        The generating profile.
    stream:
        The generated :class:`repro.core.stream.SocialStream`.
    topic_model:
        The ground-truth topic model (usable directly as the query oracle).
    vocabulary:
        The working vocabulary.
    topic_names:
        Human-readable theme name per topic.
    seed:
        The master seed the dataset was generated from.
    """

    profile: DatasetProfile
    stream: SocialStream
    topic_model: TopicModel
    vocabulary: Vocabulary
    topic_names: Tuple[str, ...]
    seed: Optional[int] = None
    _inferencer: Optional[TopicInferencer] = field(default=None, repr=False)

    # -- queries --------------------------------------------------------------------

    @property
    def inferencer(self) -> TopicInferencer:
        """A shared topic inferencer bound to the ground-truth model.

        Queries are inferred with a weak prior and a small sparsity
        threshold, so a handful of topical keywords yields a concentrated
        query vector (few non-zero entries ``d``), matching the workloads of
        the paper's efficiency study.
        """
        if self._inferencer is None:
            self._inferencer = TopicInferencer(
                self.topic_model, alpha=0.05, sparsity_threshold=0.05
            )
        return self._inferencer

    def topical_keywords(self, topic: int, count: int = 5) -> List[str]:
        """The ``count`` most probable words of a topic (query keywords)."""
        return self.topic_model.top_words(topic, count)

    def make_query(
        self,
        k: int,
        keywords: Optional[Sequence[str]] = None,
        topic: Optional[int] = None,
        time: Optional[int] = None,
    ) -> KSIRQuery:
        """Build a :class:`KSIRQuery` from keywords or from a topic index.

        Exactly one of ``keywords`` / ``topic`` should be provided; with a
        topic index the query keywords are the topic's top words (the
        query-by-keyword transformation of Section 3.2 is applied either
        way).
        """
        if (keywords is None) == (topic is None):
            raise ValueError("provide exactly one of 'keywords' or 'topic'")
        if topic is not None:
            keywords = self.topical_keywords(topic)
        assert keywords is not None
        vector = self.inferencer.infer(list(keywords))
        return KSIRQuery(k=k, vector=vector, time=time, keywords=tuple(keywords))

    # -- statistics (Table 3) ---------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Dataset statistics in the shape of the paper's Table 3."""
        elements = self.stream.elements
        num_elements = len(elements)
        total_length = sum(len(e.tokens) for e in elements)
        total_references = sum(len(e.references) for e in elements)
        distinct_words = set()
        for element in elements:
            distinct_words.update(element.tokens)
        return {
            "num_elements": float(num_elements),
            "vocabulary_size": float(len(distinct_words)),
            "average_length": total_length / num_elements if num_elements else 0.0,
            "average_references": total_references / num_elements if num_elements else 0.0,
            "duration": float(self.profile.duration),
            "num_topics": float(self.profile.num_topics),
        }

    def reference_counts(self) -> Dict[int, int]:
        """In-degree (times referenced) of every element over the full stream."""
        counts: Dict[int, int] = {}
        for element in self.stream:
            for parent_id in element.references:
                counts[parent_id] = counts.get(parent_id, 0) + 1
        return counts

    # -- optional end-to-end topic training ----------------------------------------------

    def train_topic_model(
        self,
        kind: str = "lda",
        num_topics: Optional[int] = None,
        iterations: int = 60,
        seed: Optional[int] = None,
    ) -> TopicModel:
        """Train an LDA or BTM model on the generated corpus.

        This exercises the full substrate (the paper trains PLDA / BTM before
        running queries); the ground-truth model remains available as
        :attr:`topic_model`.
        """
        from repro.topics.btm import BitermTopicModel
        from repro.topics.lda import LatentDirichletAllocation

        corpus = [list(element.tokens) for element in self.stream]
        vocabulary = Vocabulary.from_documents(corpus)
        topics = num_topics or self.profile.num_topics
        if kind.lower() == "lda":
            model = LatentDirichletAllocation(
                vocabulary, topics, iterations=iterations, burn_in=iterations // 3,
                seed=seed,
            )
        elif kind.lower() == "btm":
            model = BitermTopicModel(
                vocabulary, topics, iterations=iterations, burn_in=iterations // 3,
                seed=seed,
            )
        else:
            raise ValueError("kind must be 'lda' or 'btm'")
        model.fit(corpus)
        return model


class SyntheticStreamGenerator:
    """Generates :class:`SyntheticDataset` objects from a profile."""

    def __init__(self, profile: DatasetProfile, seed: SeedLike = None) -> None:
        self.profile = profile
        self._seed = seed if isinstance(seed, int) else None
        self._rng = make_rng(seed)

    @classmethod
    def from_profile(cls, name: str, seed: SeedLike = None) -> "SyntheticStreamGenerator":
        """Create a generator from a registered profile name."""
        return cls(get_profile(name), seed=seed)

    # -- vocabulary and ground-truth topics ----------------------------------------------

    def _build_vocabulary(self) -> Tuple[Vocabulary, List[List[int]]]:
        """The vocabulary plus, per topic, the ids of its thematic seed words."""
        profile = self.profile
        words: List[str] = []
        per_topic_seeds: List[List[int]] = []
        used = set()
        for topic in range(profile.num_topics):
            theme_name, seeds = TOPIC_THEMES[topic % len(TOPIC_THEMES)]
            round_index = topic // len(TOPIC_THEMES)
            suffix = "" if round_index == 0 else str(round_index + 1)
            seed_ids = []
            for seed_word in seeds:
                word = seed_word + suffix
                if word not in used:
                    used.add(word)
                    words.append(word)
                seed_ids.append(words.index(word))
            per_topic_seeds.append(seed_ids)
            del theme_name
        filler_index = 0
        while len(words) < profile.vocabulary_size:
            word = f"term{filler_index:05d}"
            if word not in used:
                used.add(word)
                words.append(word)
            filler_index += 1
        vocabulary = Vocabulary(words)
        return vocabulary, per_topic_seeds

    def _build_topic_word_matrix(
        self, vocabulary: Vocabulary, per_topic_seeds: List[List[int]]
    ) -> np.ndarray:
        """Ground-truth ``p_i(w)``: skewed Dirichlet rows anchored on seed words."""
        profile = self.profile
        vocab_size = len(vocabulary)
        matrix = np.zeros((profile.num_topics, vocab_size))
        for topic in range(profile.num_topics):
            base = self._rng.dirichlet(np.full(vocab_size, profile.word_concentration))
            seed_ids = per_topic_seeds[topic]
            seed_mass = self._rng.dirichlet(np.full(len(seed_ids), 1.0)) if seed_ids else None
            row = 0.4 * base
            if seed_mass is not None:
                for word_id, mass in zip(seed_ids, seed_mass):
                    row[word_id] += 0.6 * mass
            matrix[topic] = row / row.sum()
        return matrix

    # -- element generation -------------------------------------------------------------------

    def _sample_topic_mixture(self) -> np.ndarray:
        """A sparse per-element topic mixture (≤ max_topics_per_element topics)."""
        profile = self.profile
        z = profile.num_topics
        max_topics = min(profile.max_topics_per_element, z)
        num_active = 1 if max_topics == 1 else int(self._rng.integers(1, max_topics + 1))
        topics = self._rng.choice(z, size=num_active, replace=False)
        weights = self._rng.dirichlet(np.full(num_active, max(profile.topic_concentration, 1e-3) * 10))
        mixture = np.zeros(z)
        mixture[topics] = weights
        return mixture

    def _sample_document(
        self, mixture: np.ndarray, topic_word: np.ndarray, vocabulary: Vocabulary
    ) -> List[str]:
        profile = self.profile
        length = max(2, int(self._rng.poisson(profile.mean_document_length)))
        topics = self._rng.choice(len(mixture), size=length, p=mixture)
        # Draw all words of the same topic in one vectorised call; word order
        # does not matter for a bag-of-words document.
        tokens: List[str] = []
        unique_topics, counts = np.unique(topics, return_counts=True)
        for topic, count in zip(unique_topics, counts):
            word_ids = self._rng.choice(
                topic_word.shape[1], size=int(count), p=topic_word[int(topic)]
            )
            tokens.extend(vocabulary.word_of(int(word_id)) for word_id in word_ids)
        return tokens

    def _sample_references(
        self,
        timestamp: int,
        mixture: np.ndarray,
        recent: "deque[int]",
        timestamps: List[int],
        mixtures: List[np.ndarray],
        indegrees: Dict[int, int],
    ) -> List[int]:
        profile = self.profile
        count = int(self._rng.poisson(profile.mean_references))
        if count == 0 or not recent:
            return []
        candidates = list(recent)
        ages = np.array([timestamp - timestamps[i] for i in candidates], dtype=float)
        recency = np.exp(-profile.reference_recency * ages / profile.reference_horizon)
        popularity = np.array(
            [(1.0 + indegrees.get(i, 0)) ** profile.reference_popularity for i in candidates]
        )
        similarity = np.array([float(np.dot(mixture, mixtures[i])) for i in candidates])
        bias = profile.topical_reference_bias
        weights = recency * popularity * (bias * similarity + (1.0 - bias))
        total = weights.sum()
        if total <= 0:
            return []
        probabilities = weights / total
        count = min(count, len(candidates))
        chosen = self._rng.choice(candidates, size=count, replace=False, p=probabilities)
        return [int(c) for c in chosen]

    # -- main entry point --------------------------------------------------------------------------

    def generate(self) -> SyntheticDataset:
        """Generate the full dataset."""
        profile = self.profile
        vocabulary, per_topic_seeds = self._build_vocabulary()
        topic_word = self._build_topic_word_matrix(vocabulary, per_topic_seeds)
        topic_model = MatrixTopicModel(vocabulary, topic_word, normalize=True)
        topic_names = tuple(
            TOPIC_THEMES[topic % len(TOPIC_THEMES)][0]
            + ("" if topic < len(TOPIC_THEMES) else str(topic // len(TOPIC_THEMES) + 1))
            for topic in range(profile.num_topics)
        )

        # Arrival times: sorted uniform over the stream duration.
        arrival_times = np.sort(
            self._rng.integers(0, profile.duration, size=profile.num_elements)
        )

        # Candidate pool for references: the most recent elements within the
        # horizon, capped so generation stays linear in the stream size.
        max_pool = 400
        recent: deque[int] = deque()
        timestamps: List[int] = []
        mixtures: List[np.ndarray] = []
        indegrees: Dict[int, int] = {}
        elements: List[SocialElement] = []

        for element_id in range(profile.num_elements):
            timestamp = int(arrival_times[element_id])
            while recent and (
                timestamp - timestamps[recent[0]] > profile.reference_horizon
                or len(recent) > max_pool
            ):
                recent.popleft()

            mixture = self._sample_topic_mixture()
            tokens = self._sample_document(mixture, topic_word, vocabulary)
            references = self._sample_references(
                timestamp, mixture, recent, timestamps, mixtures, indegrees
            )
            for parent_id in references:
                indegrees[parent_id] = indegrees.get(parent_id, 0) + 1

            elements.append(
                SocialElement(
                    element_id=element_id,
                    timestamp=timestamp,
                    tokens=tuple(tokens),
                    references=tuple(references),
                    topic_distribution=mixture,
                    author=int(self._rng.integers(0, max(2, profile.num_elements // 20))),
                )
            )
            timestamps.append(timestamp)
            mixtures.append(mixture)
            recent.append(element_id)

        stream = SocialStream(elements)
        return SyntheticDataset(
            profile=profile,
            stream=stream,
            topic_model=topic_model,
            vocabulary=vocabulary,
            topic_names=topic_names,
            seed=self._seed,
        )
