"""Datasets: synthetic social-stream generation and (de)serialisation.

The paper evaluates on three proprietary crawls (AMiner, Reddit, Twitter).
Those corpora are not redistributable, so this package provides a
generative simulator (:mod:`repro.datasets.synthetic`) whose per-dataset
profiles (:mod:`repro.datasets.profiles`) match the *shape* statistics the
paper reports in Table 3 — document length, reference density, topic
sparsity — which are the properties the k-SIR algorithms actually exploit.
Streams can be saved and reloaded as JSONL via :mod:`repro.datasets.loaders`.
"""

from repro.datasets.loaders import load_stream_jsonl, save_stream_jsonl
from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile, get_profile
from repro.datasets.synthetic import SyntheticDataset, SyntheticStreamGenerator

__all__ = [
    "DATASET_PROFILES",
    "DatasetProfile",
    "SyntheticDataset",
    "SyntheticStreamGenerator",
    "get_profile",
    "load_stream_jsonl",
    "save_stream_jsonl",
]
