"""Watermarks and the bounded reordering buffer in front of the engine.

Every execution path of the repository consumes the stream as committed
buckets ``B_t`` (``(t − L, t]``) in strictly increasing end-time order —
that is what Algorithm 1's expiry assumes.  Real feeds deliver events out
of event-time order, so this module owns the boundary between the two
worlds:

* :class:`WatermarkTracker` maintains the event-time high-water mark and
  derives the **watermark** — the claim that no element older than it
  will still arrive — by trailing the high-water mark by the configured
  *allowed lateness* horizon.
* :class:`StreamIngestor` buffers raw (possibly unordered) elements,
  re-sorts them into their true bucket on the bucket grid the in-order
  replay would have used, and releases a bucket to the engine sink only
  once the watermark passes its end time.  Elements arriving after their
  bucket was sealed are *dropped and counted* — never silently misfiled.

With ``allowed_lateness = 0`` and in-order input, the committed buckets
are identical (grid, membership, in-bucket order) to
:meth:`repro.core.stream.SocialStream.buckets`, which is what the
equivalence tests pin down to 1e-9 on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.element import SocialElement

#: The sink a sealed bucket is committed to: ``sink(elements, end_time)``.
BucketSink = Callable[[Sequence[SocialElement], int], None]


def _quantile(samples: Sequence[int], q: float) -> float:
    """Linear-interpolated quantile of a sample list (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = (len(ordered) - 1) * q
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class WatermarkTracker:
    """Tracks event-time extremes and derives the lateness watermark.

    The watermark is ``max_event_time − lateness_horizon``: under the
    bounded-disorder contract (no element arrives more than the horizon
    of stream time after a later-stamped element), no element with a
    timestamp at or below the watermark can still arrive.
    """

    def __init__(self, lateness_horizon: int = 0) -> None:
        if lateness_horizon < 0:
            raise ValueError("lateness_horizon must be >= 0")
        self._horizon = int(lateness_horizon)
        self._max_event_time: Optional[int] = None
        self._min_event_time: Optional[int] = None
        self._late_events = 0

    @property
    def lateness_horizon(self) -> int:
        """The allowed-lateness horizon in stream time units."""
        return self._horizon

    @property
    def max_event_time(self) -> Optional[int]:
        """The event-time high-water mark (None before any element)."""
        return self._max_event_time

    @property
    def min_event_time(self) -> Optional[int]:
        """The earliest timestamp observed (None before any element)."""
        return self._min_event_time

    @property
    def watermark(self) -> Optional[int]:
        """``max_event_time − horizon`` (None before any element)."""
        if self._max_event_time is None:
            return None
        return self._max_event_time - self._horizon

    @property
    def late_events(self) -> int:
        """Elements that arrived behind the high-water mark so far."""
        return self._late_events

    def observe(self, timestamp: int) -> bool:
        """Advance the extremes; returns whether the element was late."""
        late = self._max_event_time is not None and timestamp < self._max_event_time
        if late:
            self._late_events += 1
        if self._max_event_time is None or timestamp > self._max_event_time:
            self._max_event_time = timestamp
        if self._min_event_time is None or timestamp < self._min_event_time:
            self._min_event_time = timestamp
        return late


@dataclass(frozen=True)
class StreamMetrics:
    """One consistent snapshot of the ingestor's lateness accounting."""

    events_total: int
    late_events: int
    dropped_late: int
    buckets_sealed: int
    pending_events: int
    allowed_lateness: int
    watermark: Optional[int]
    max_event_time: Optional[int]
    watermark_lag_p50: float
    watermark_lag_p95: float

    def to_dict(self) -> Dict[str, object]:
        """A flat JSON/gauge-friendly view (None values are omitted)."""
        payload: Dict[str, object] = {
            "events_total": self.events_total,
            "late_events": self.late_events,
            "dropped_late": self.dropped_late,
            "buckets_sealed": self.buckets_sealed,
            "pending_events": self.pending_events,
            "allowed_lateness": self.allowed_lateness,
            "watermark_lag_p50": self.watermark_lag_p50,
            "watermark_lag_p95": self.watermark_lag_p95,
        }
        if self.watermark is not None:
            payload["watermark"] = self.watermark
        if self.max_event_time is not None:
            payload["max_event_time"] = self.max_event_time
        return payload


class StreamIngestor:
    """The bounded reordering buffer: raw events in, committed buckets out.

    Parameters
    ----------
    sink:
        Receives each sealed bucket as ``sink(elements, end_time)`` in
        strictly increasing end-time order (empty buckets included, so
        window expiry advances through silent periods exactly as the
        in-order replay does).
    bucket_length:
        The bucket grid pitch ``L``.
    allowed_lateness:
        Disorder tolerance in bucket units; the lateness horizon is
        ``allowed_lateness × bucket_length``.
    start_time:
        Optional explicit grid anchor (first bucket covers
        ``[start_time, start_time + L − 1]``).  By default the grid
        anchors on the earliest timestamp observed before the first
        seal — the same grid the in-order replay of the completed stream
        would use.
    """

    def __init__(
        self,
        sink: BucketSink,
        bucket_length: int,
        allowed_lateness: int = 0,
        start_time: Optional[int] = None,
    ) -> None:
        if bucket_length <= 0:
            raise ValueError("bucket_length must be positive")
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be >= 0")
        self._sink = sink
        self._bucket_length = int(bucket_length)
        self._allowed_lateness = int(allowed_lateness)
        self._tracker = WatermarkTracker(allowed_lateness * bucket_length)
        self._origin_end: Optional[int] = (
            None if start_time is None else int(start_time) + self._bucket_length - 1
        )
        # Arrivals staged before the grid anchor is fixed (anchoring waits
        # for the first seal so a delayed true-first element still defines
        # the grid, keeping it identical to the in-order replay's).
        self._staging: List[SocialElement] = []
        self._pending: Dict[int, List[SocialElement]] = {}
        self._sealed_through: Optional[int] = None
        self._events = 0
        self._dropped = 0
        self._sealed = 0
        self._lag_samples: List[int] = []

    # -- accessors ---------------------------------------------------------------------

    @property
    def bucket_length(self) -> int:
        """The bucket grid pitch ``L``."""
        return self._bucket_length

    @property
    def allowed_lateness(self) -> int:
        """The disorder tolerance in bucket units."""
        return self._allowed_lateness

    @property
    def watermark(self) -> Optional[int]:
        """The current watermark (None before any element)."""
        return self._tracker.watermark

    @property
    def sealed_through(self) -> Optional[int]:
        """End time of the last bucket committed to the sink."""
        return self._sealed_through

    @property
    def pending_events(self) -> int:
        """Buffered elements not yet committed to the engine."""
        return len(self._staging) + sum(
            len(members) for members in self._pending.values()
        )

    # -- ingest ------------------------------------------------------------------------

    def push(self, element: SocialElement) -> int:
        """Accept one raw element; returns how many buckets were sealed.

        A too-late element (its bucket already sealed) is dropped and
        counted in :attr:`StreamMetrics.dropped_late` — under the bounded
        disorder contract (disorder ≤ ``allowed_lateness`` buckets) this
        never happens.
        """
        timestamp = element.timestamp
        self._events += 1
        self._tracker.observe(timestamp)
        if self._sealed_through is not None and timestamp <= self._sealed_through:
            self._dropped += 1
            return 0
        if self._origin_end is None:
            self._staging.append(element)
        else:
            self._pending.setdefault(self._bucket_end(timestamp), []).append(element)
        return self._release()

    def push_many(self, elements: Iterable[SocialElement]) -> int:
        """Accept many raw elements; returns how many buckets were sealed."""
        sealed = 0
        for element in elements:
            sealed += self.push(element)
        return sealed

    def flush(self) -> int:
        """Seal every remaining bucket up to the high-water mark.

        Called at end of stream: the in-order replay commits its final
        bucket (the one containing the last element) without needing a
        later arrival, and :meth:`flush` is how this path does the same.
        Returns the number of buckets sealed.
        """
        max_event_time = self._tracker.max_event_time
        if max_event_time is None:
            return 0
        if self._origin_end is None:
            min_event_time = self._tracker.min_event_time
            assert min_event_time is not None
            self._anchor(min_event_time + self._bucket_length - 1)
        last_end = self._bucket_end(max_event_time)
        sealed = 0
        while self._sealed_through is None or self._sealed_through < last_end:
            self._seal(self._next_end())
            sealed += 1
        return sealed

    # -- metrics -----------------------------------------------------------------------

    def metrics(self) -> StreamMetrics:
        """The current lateness/watermark accounting snapshot."""
        return StreamMetrics(
            events_total=self._events,
            late_events=self._tracker.late_events,
            dropped_late=self._dropped,
            buckets_sealed=self._sealed,
            pending_events=self.pending_events,
            allowed_lateness=self._allowed_lateness,
            watermark=self._tracker.watermark,
            max_event_time=self._tracker.max_event_time,
            watermark_lag_p50=_quantile(self._lag_samples, 0.50),
            watermark_lag_p95=_quantile(self._lag_samples, 0.95),
        )

    # -- internals ---------------------------------------------------------------------

    def _bucket_end(self, timestamp: int) -> int:
        origin = self._origin_end
        assert origin is not None
        if timestamp <= origin:
            return origin
        length = self._bucket_length
        return origin + ((timestamp - origin + length - 1) // length) * length

    def _next_end(self) -> int:
        if self._sealed_through is None:
            origin = self._origin_end
            assert origin is not None
            return origin
        return self._sealed_through + self._bucket_length

    def _anchor(self, origin_end: int) -> None:
        self._origin_end = origin_end
        for element in self._staging:
            self._pending.setdefault(
                self._bucket_end(element.timestamp), []
            ).append(element)
        self._staging.clear()

    def _release(self) -> int:
        watermark = self._tracker.watermark
        if watermark is None:
            return 0
        if self._origin_end is None:
            min_event_time = self._tracker.min_event_time
            assert min_event_time is not None
            candidate = min_event_time + self._bucket_length - 1
            if watermark <= candidate:
                return 0
            self._anchor(candidate)
        sealed = 0
        while watermark > self._next_end():
            self._seal(self._next_end())
            sealed += 1
        return sealed

    def _seal(self, end_time: int) -> None:
        members = self._pending.pop(end_time, [])
        members.sort(key=lambda element: (element.timestamp, element.element_id))
        self._sink(tuple(members), end_time)
        self._sealed_through = end_time
        self._sealed += 1
        max_event_time = self._tracker.max_event_time
        assert max_event_time is not None
        self._lag_samples.append(max(0, max_event_time - end_time))
