"""repro.streams — the event-time ingestion subsystem.

Owns the path from raw, possibly out-of-order events to the committed
buckets every execution backend consumes: pluggable stream sources
(:mod:`repro.streams.source`), the watermark tracker and bounded
reordering buffer (:mod:`repro.streams.watermark`), the window-policy
seam (re-exported from :mod:`repro.core.window_policy` — sliding,
tumbling and session windows behind the StateView protocol) and the
``streams`` section of the engine configuration
(:mod:`repro.streams.config`).
"""

from repro.core.window_policy import (
    WINDOW_POLICY_CHOICES,
    CutoffTracker,
    SessionCutoff,
    TumblingCutoff,
    WindowPolicy,
)
from repro.streams.config import StreamConfig
from repro.streams.source import (
    CitationFeedSource,
    EntityDumpSource,
    JsonlReplaySource,
    MemorySource,
    StreamSource,
    create_source,
    inject_disorder,
    register_source,
    source_names,
)
from repro.streams.watermark import (
    BucketSink,
    StreamIngestor,
    StreamMetrics,
    WatermarkTracker,
)

__all__ = [
    "WINDOW_POLICY_CHOICES",
    "BucketSink",
    "CitationFeedSource",
    "CutoffTracker",
    "EntityDumpSource",
    "JsonlReplaySource",
    "MemorySource",
    "SessionCutoff",
    "StreamConfig",
    "StreamIngestor",
    "StreamMetrics",
    "StreamSource",
    "TumblingCutoff",
    "WatermarkTracker",
    "WindowPolicy",
    "create_source",
    "inject_disorder",
    "register_source",
    "source_names",
]
