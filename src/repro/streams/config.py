"""Configuration of the event-time ingestion subsystem (:mod:`repro.streams`).

Kept lightweight (no imports beyond :mod:`repro.core.window_policy`, which
is itself stdlib-only) so :class:`~repro.api.config.EngineConfig` can embed
a ``streams`` section without creating an import cycle through the source
adapters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional

from repro.core.window_policy import WINDOW_POLICY_CHOICES


def _check_known_keys(
    payload: Mapping[str, Any], known: FrozenSet[str], label: str
) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown {label} keys: {', '.join(unknown)}")


@dataclass(frozen=True)
class StreamConfig:
    """Tuning of the raw-event ingest path in front of the bucket boundary.

    Parameters
    ----------
    source:
        Default stream-source name resolved through the
        :func:`~repro.streams.source.create_source` registry when the
        engine is asked to ingest from a named source (``"memory"``,
        ``"jsonl"``, ``"citations"``, ``"entities"``, or any name a
        deployment registered).
    allowed_lateness:
        Bounded-disorder tolerance in **bucket units**: an element may
        arrive up to ``allowed_lateness × bucket_length`` stream-time
        units after a later-stamped element and still be re-sorted into
        its true bucket.  The watermark trails the event-time high-water
        mark by exactly this horizon, and a bucket is only released to
        the engine once the watermark passes its end time.  ``0`` (the
        default) means in-order input commits each bucket as soon as the
        first later-stamped element arrives — byte-identical to the
        historical pre-bucketed path.
    window_policy:
        The window shape (``"sliding"``, ``"tumbling"``, ``"session"``),
        mirrored into :attr:`~repro.core.processor.ProcessorConfig.window_policy`
        by :class:`~repro.api.config.EngineConfig` so it reaches shard
        workers unchanged.
    session_gap:
        Session-window gap in stream time units (required by, and
        exclusive to, the ``session`` policy).
    """

    source: str = "memory"
    allowed_lateness: int = 0
    window_policy: str = "sliding"
    session_gap: Optional[int] = None

    _KNOWN = frozenset({"source", "allowed_lateness", "window_policy", "session_gap"})

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("source must be a non-empty name")
        if self.allowed_lateness < 0:
            raise ValueError("allowed_lateness must be >= 0")
        if self.window_policy not in WINDOW_POLICY_CHOICES:
            raise ValueError(
                f"unknown window policy {self.window_policy!r}; available: "
                + ", ".join(WINDOW_POLICY_CHOICES)
            )
        if self.window_policy == "session":
            if self.session_gap is None or self.session_gap <= 0:
                raise ValueError("session windows require a positive session_gap")
        elif self.session_gap is not None:
            raise ValueError("session_gap is only valid with the 'session' policy")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (inverse of :meth:`from_dict`)."""
        return {
            "source": self.source,
            "allowed_lateness": self.allowed_lateness,
            "window_policy": self.window_policy,
            "session_gap": self.session_gap,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "StreamConfig":
        """Rebuild from :meth:`to_dict` output (``None`` = defaults)."""
        if payload is None:
            return cls()
        _check_known_keys(payload, cls._KNOWN, "StreamConfig")
        session_gap = payload.get("session_gap")
        return cls(
            source=str(payload.get("source", "memory")),
            allowed_lateness=int(payload.get("allowed_lateness", 0)),
            window_policy=str(payload.get("window_policy", "sliding")),
            session_gap=None if session_gap is None else int(session_gap),
        )
