"""Stream sources: pluggable raw-event feeds for the ingestion subsystem.

A :class:`StreamSource` is anything iterable over
:class:`~repro.core.element.SocialElement` values **in arrival order** —
which, unlike every other stream surface in the repository, may differ
from event-time order.  Sources are registered under canonical names
(:func:`register_source` / :func:`create_source`), mirroring the
execution-backend and cluster-transport registries, so deployments can
plug in their own feeds without touching engine code.

Built-ins
---------

``memory``
    Replays an in-memory element sequence, optionally with seeded bounded
    disorder injection (:func:`inject_disorder`) and event-time pacing.
``jsonl``
    Replays a JSONL element file (the :mod:`repro.datasets.loaders`
    format) in file order, with the same disorder/pacing options.
``citations``
    A DBLP-style citation feed: paper records (id, year, title,
    references) become elements whose timestamps derive from publication
    years.  Dumps are id-ordered, so event time arrives naturally out of
    order.
``entities``
    A Wikidata-lite-style entity-tagged dump replay: entity records (id,
    modified time, labels, claims, links) become elements tokenised from
    labels and ``property:value`` claim tags, referencing linked
    entities.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.element import SocialElement

PathLike = Union[str, Path]
RecordFeed = Union[PathLike, Iterable[Mapping[str, Any]]]


@runtime_checkable
class StreamSource(Protocol):
    """A raw-event feed: iterable over elements in arrival order."""

    def __iter__(self) -> Iterator[SocialElement]:
        """Yield the feed's elements in arrival order."""
        ...


SourceFactory = Callable[..., StreamSource]

_REGISTRY: Dict[str, SourceFactory] = {}


def register_source(name: str, factory: SourceFactory) -> None:
    """Register a stream-source factory under a canonical name.

    Re-registering a name replaces the factory (useful for tests and for
    deployments that swap in instrumented feeds).
    """
    _REGISTRY[name.strip().lower()] = factory


def source_names() -> Tuple[str, ...]:
    """The registered canonical source names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_source(name: str, **options: Any) -> StreamSource:
    """Instantiate the source registered under ``name``."""
    key = name.strip().lower()
    try:
        factory = _REGISTRY[key]
    except KeyError as error:
        available = ", ".join(source_names()) or "<none registered>"
        raise ValueError(
            f"unknown stream source {name!r}; available: {available}"
        ) from error
    return factory(**options)


# -- disorder injection ----------------------------------------------------------------


def inject_disorder(
    elements: Iterable[SocialElement],
    *,
    bucket_length: int,
    max_delay_buckets: int,
    fraction: float = 1.0,
    seed: int = 0,
) -> List[SocialElement]:
    """A seeded arrival order with bounded event-time disorder.

    Each selected element (a ``fraction`` of the stream, chosen by the
    seeded RNG) is displaced to arrive as if delayed by up to
    ``max_delay_buckets × bucket_length`` stream-time units; the rest
    keep their event time as arrival key.  The result is sorted by the
    delayed arrival key (ties broken by event time, then id, so the
    order is deterministic per seed).

    The displacement bound is exactly the contract
    :class:`~repro.streams.watermark.StreamIngestor` needs: ingesting
    the returned sequence with ``allowed_lateness ≥ max_delay_buckets``
    drops nothing and reproduces the in-order buckets bit-for-bit.
    """
    if bucket_length <= 0:
        raise ValueError("bucket_length must be positive")
    if max_delay_buckets < 0:
        raise ValueError("max_delay_buckets must be >= 0")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must lie in [0, 1]")
    rng = random.Random(seed)
    horizon = max_delay_buckets * bucket_length
    keyed: List[Tuple[int, int, int, SocialElement]] = []
    ordered = sorted(
        elements, key=lambda element: (element.timestamp, element.element_id)
    )
    for element in ordered:
        delayed = horizon > 0 and (fraction >= 1.0 or rng.random() < fraction)
        delay = rng.randint(1, horizon) if delayed else 0
        keyed.append(
            (element.timestamp + delay, element.timestamp, element.element_id, element)
        )
    keyed.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in keyed]


def _pace_arrivals(
    elements: Iterable[SocialElement], pace: Optional[float]
) -> Iterator[SocialElement]:
    """Yield elements, sleeping ``pace`` wall-clock seconds per stream unit.

    Pacing follows the *arrival* sequence's timestamps (clamped at zero,
    since a late element does not travel back in time).  ``None`` or
    ``0`` disables pacing.
    """
    if not pace:
        yield from elements
        return
    previous: Optional[int] = None
    for element in elements:
        if previous is not None and element.timestamp > previous:
            time.sleep((element.timestamp - previous) * pace)
        previous = max(previous, element.timestamp) if previous is not None else (
            element.timestamp
        )
        yield element


# -- built-in sources ------------------------------------------------------------------


class MemorySource:
    """Replays an in-memory element sequence, optionally disordered/paced."""

    name = "memory"

    def __init__(
        self,
        elements: Iterable[SocialElement] = (),
        *,
        bucket_length: int = 1,
        disorder: float = 0.0,
        max_delay_buckets: int = 0,
        seed: int = 0,
        pace: Optional[float] = None,
    ) -> None:
        self._elements = list(elements)
        self._bucket_length = int(bucket_length)
        self._disorder = float(disorder)
        self._max_delay_buckets = int(max_delay_buckets)
        self._seed = int(seed)
        self._pace = pace

    def _arrivals(self) -> List[SocialElement]:
        if self._disorder > 0.0 and self._max_delay_buckets > 0:
            return inject_disorder(
                self._elements,
                bucket_length=self._bucket_length,
                max_delay_buckets=self._max_delay_buckets,
                fraction=self._disorder,
                seed=self._seed,
            )
        return sorted(
            self._elements,
            key=lambda element: (element.timestamp, element.element_id),
        )

    def __iter__(self) -> Iterator[SocialElement]:
        return _pace_arrivals(self._arrivals(), self._pace)


class JsonlReplaySource:
    """Replays a JSONL element file (the dataset-loader format).

    Without disorder injection the file is streamed lazily in file order
    (the arrival order the file records); with injection the file is
    materialised first.
    """

    name = "jsonl"

    def __init__(
        self,
        path: PathLike,
        *,
        bucket_length: int = 1,
        disorder: float = 0.0,
        max_delay_buckets: int = 0,
        seed: int = 0,
        pace: Optional[float] = None,
    ) -> None:
        self._path = Path(path)
        self._bucket_length = int(bucket_length)
        self._disorder = float(disorder)
        self._max_delay_buckets = int(max_delay_buckets)
        self._seed = int(seed)
        self._pace = pace

    def _read(self) -> Iterator[SocialElement]:
        with self._path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ValueError(
                        f"{self._path}:{line_number}: invalid JSON"
                    ) from error
                try:
                    yield SocialElement.from_dict(payload)
                except (KeyError, TypeError, ValueError) as error:
                    raise ValueError(
                        f"{self._path}:{line_number}: invalid element: {error}"
                    ) from None

    def __iter__(self) -> Iterator[SocialElement]:
        if self._disorder > 0.0 and self._max_delay_buckets > 0:
            arrivals: Iterable[SocialElement] = inject_disorder(
                self._read(),
                bucket_length=self._bucket_length,
                max_delay_buckets=self._max_delay_buckets,
                fraction=self._disorder,
                seed=self._seed,
            )
        else:
            arrivals = self._read()
        return _pace_arrivals(arrivals, self._pace)


def _iter_records(records: RecordFeed, label: str) -> Iterator[Mapping[str, Any]]:
    """Yield mapping records from a JSONL path or an in-memory iterable."""
    if isinstance(records, (str, Path)):
        path = Path(records)
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ValueError(f"{path}:{line_number}: invalid JSON") from error
                if not isinstance(payload, Mapping):
                    raise ValueError(
                        f"{path}:{line_number}: expected a JSON object"
                    )
                yield payload
        return
    for index, record in enumerate(records):
        if not isinstance(record, Mapping):
            raise ValueError(f"{label} record {index} is not a mapping")
        yield record


def _tokenise(text: str) -> List[str]:
    """Lower-cased alphanumeric tokens of a free-text field."""
    tokens: List[str] = []
    word: List[str] = []
    for char in text.lower():
        if char.isalnum():
            word.append(char)
        elif word:
            tokens.append("".join(word))
            word = []
    if word:
        tokens.append("".join(word))
    return tokens


class CitationFeedSource:
    """A DBLP-style citation feed adapter.

    Records carry ``id`` (int), ``year`` (int), ``title`` (str) and
    ``references`` (cited paper ids); optional ``venue`` contributes one
    token.  Timestamps place each paper at
    ``(year − base_year) × seconds_per_year`` (plus a deterministic
    intra-year offset derived from the id, so same-year papers do not all
    collapse onto one instant).  Citation dumps are ordered by paper id,
    not publication time, so the feed arrives out of event-time order —
    exactly the workload the reordering buffer absorbs.
    """

    name = "citations"

    def __init__(
        self,
        records: RecordFeed,
        *,
        seconds_per_year: int = 3600,
        base_year: Optional[int] = None,
        pace: Optional[float] = None,
    ) -> None:
        if seconds_per_year <= 0:
            raise ValueError("seconds_per_year must be positive")
        self._records = records
        self._seconds_per_year = int(seconds_per_year)
        self._base_year = base_year
        self._pace = pace

    def _elements(self) -> List[SocialElement]:
        parsed: List[Tuple[int, int, Mapping[str, Any]]] = []
        for record in _iter_records(self._records, "citation"):
            try:
                paper_id = int(record["id"])
                year = int(record["year"])
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(f"invalid citation record: {error}") from None
            parsed.append((paper_id, year, record))
        if not parsed:
            return []
        base_year = (
            min(year for _, year, _ in parsed)
            if self._base_year is None
            else self._base_year
        )
        elements: List[SocialElement] = []
        for paper_id, year, record in parsed:
            offset = paper_id % self._seconds_per_year
            timestamp = (year - base_year) * self._seconds_per_year + offset
            tokens = _tokenise(str(record.get("title", "")))
            venue = record.get("venue")
            if venue:
                tokens.extend(_tokenise(str(venue)))
            references = tuple(
                int(reference) for reference in record.get("references", ())
            )
            elements.append(
                SocialElement(
                    element_id=paper_id,
                    timestamp=timestamp,
                    tokens=tuple(tokens),
                    references=references,
                    text=str(record.get("title", "")) or None,
                )
            )
        return elements

    def __iter__(self) -> Iterator[SocialElement]:
        # Dump order (paper id), not event-time order: the natural
        # disorder of the feed itself.
        return _pace_arrivals(
            sorted(self._elements(), key=lambda element: element.element_id),
            self._pace,
        )


class EntityDumpSource:
    """A Wikidata-lite-style entity-tagged dump replay.

    Records carry ``id`` (int), ``modified`` (int stream-time units),
    ``labels`` (display strings), ``claims`` (``{property: [values]}``,
    emitted as ``property:value`` tags so queries can target structured
    facets) and ``links`` (referenced entity ids).  Dumps are id-ordered,
    so modification times arrive out of order.
    """

    name = "entities"

    def __init__(self, records: RecordFeed, *, pace: Optional[float] = None) -> None:
        self._records = records
        self._pace = pace

    def _elements(self) -> List[SocialElement]:
        elements: List[SocialElement] = []
        for record in _iter_records(self._records, "entity"):
            try:
                entity_id = int(record["id"])
                modified = int(record.get("modified", record.get("ts")))  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(f"invalid entity record: {error}") from None
            tokens: List[str] = []
            for label in record.get("labels", ()):
                tokens.extend(_tokenise(str(label)))
            claims = record.get("claims", {})
            if isinstance(claims, Mapping):
                for prop in sorted(claims):
                    values = claims[prop]
                    if isinstance(values, (list, tuple)):
                        tokens.extend(
                            f"{prop}:{value}".lower() for value in values
                        )
                    else:
                        tokens.append(f"{prop}:{values}".lower())
            references = tuple(int(link) for link in record.get("links", ()))
            labels = record.get("labels", ())
            elements.append(
                SocialElement(
                    element_id=entity_id,
                    timestamp=modified,
                    tokens=tuple(tokens),
                    references=references,
                    text=str(labels[0]) if labels else None,
                )
            )
        return elements

    def __iter__(self) -> Iterator[SocialElement]:
        return _pace_arrivals(
            sorted(self._elements(), key=lambda element: element.element_id),
            self._pace,
        )


register_source("memory", MemorySource)
register_source("jsonl", JsonlReplaySource)
register_source("citations", CitationFeedSource)
register_source("entities", EntityDumpSource)
