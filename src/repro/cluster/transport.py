"""The formal transport-backend protocol of the cluster layer.

Every way of fanning work out to shard workers — same-thread, thread pool,
one OS process per shard over pipes, one OS process per shard over shared
memory — is a :class:`TransportBackend`: a scatter-gather executor with a
uniform command surface (``ingest`` → ``export`` / ``stats`` → ``close``).
The :class:`~repro.cluster.coordinator.ClusterCoordinator` programs against
this protocol only and resolves the concrete adapter through a registry,
exactly like :func:`repro.api.register_backend` resolves execution
backends — so new transports (RDMA, sockets, a remote worker pool, ...)
plug in by registering a factory under a new name, with no coordinator
changes.

Built-in transports (registered by :mod:`repro.cluster.coordinator`):

``serial``
    Same-thread fan-out over in-process workers (deterministic; used for
    per-shard measurement).
``thread``
    Thread-pool fan-out over in-process workers (shares the GIL).
``pipe``
    One OS process per shard; buckets and candidate pools are pickled over
    pipes (accepted aliases: ``process``, ``process-pipe``).
``shm``
    One OS process per shard; workers attach shared-memory store columns
    and exchange buckets/candidate pools through fixed-layout array slices
    in shared segments — pipes carry only small control tuples (accepted
    alias: ``process-shm``).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

import numpy as np
import numpy.typing as npt

from repro.cluster.partition import RoutedBucket
from repro.cluster.worker import CandidatePool, ShardStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.coordinator import ClusterCoordinator


@runtime_checkable
class TransportBackend(Protocol):
    """The contract every cluster fan-out adapter satisfies.

    Structural typing keeps adapters decoupled from the coordinator:
    anything with these members — including third-party classes that never
    import this module — can serve as a transport.  Adapters that ship
    routed buckets to *remote* workers (other processes or machines) should
    additionally expose ``ships_owners = True`` so the planner includes the
    ownership entries the remote home filters replay.
    """

    def ingest(self, routed: Sequence[RoutedBucket], end_time: int) -> None:
        """Deliver one routed bucket per shard and advance every window."""
        ...

    def export(
        self, vector: npt.NDArray[np.float64], budget: Optional[int]
    ) -> List[CandidatePool]:
        """Gather one bounded candidate pool per shard for a query vector."""
        ...

    def take_dirty_topics(self) -> Set[int]:
        """Union of the shards' dirty-topic sets since the last drain."""
        ...

    def home_active_counts(self) -> List[int]:
        """Per-shard count of active home elements."""
        ...

    def stats(self) -> List[ShardStats]:
        """Per-shard accounting snapshots."""
        ...

    def close(self) -> None:
        """Release executor/process/segment resources (idempotent)."""
        ...


#: Signature of a transport factory: the owning coordinator (which carries
#: the topic model, processor/cluster configs, planner and inferencer) → a
#: ready fan-out adapter.
TransportFactory = Callable[["ClusterCoordinator"], TransportBackend]

#: Accepted spellings → canonical transport names.  ``process`` stays an
#: alias of ``pipe`` so pre-transport ``ClusterConfig(backend="process")``
#: configurations (and their checkpoints) keep working unchanged.
TRANSPORT_ALIASES: Dict[str, str] = {
    "process": "pipe",
    "process-pipe": "pipe",
    "process-shm": "shm",
}

_REGISTRY: Dict[str, TransportFactory] = {}


def canonical_transport_name(name: str) -> str:
    """Resolve a transport spelling to its canonical registry name."""
    key = name.strip().lower()
    return TRANSPORT_ALIASES.get(key, key)


def register_transport(name: str, factory: TransportFactory) -> None:
    """Register a cluster fan-out transport under a canonical name.

    The public extension hook of the cluster layer, mirroring
    :func:`repro.api.register_backend`: ``factory`` receives the owning
    :class:`~repro.cluster.coordinator.ClusterCoordinator` and returns an
    object satisfying :class:`TransportBackend`.  Select the transport via
    ``ClusterConfig(transport=name)``.  Re-registering a name replaces the
    factory (useful for tests and instrumented adapters).
    """
    _REGISTRY[canonical_transport_name(name)] = factory


def transport_names() -> Tuple[str, ...]:
    """The registered canonical transport names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_transport(name: str, coordinator: "ClusterCoordinator") -> TransportBackend:
    """Instantiate the transport registered under ``name``."""
    key = canonical_transport_name(name)
    try:
        factory = _REGISTRY[key]
    except KeyError as error:
        available = ", ".join(transport_names()) or "<none registered>"
        raise ValueError(
            f"unknown cluster transport {name!r}; registered: {available}"
        ) from error
    return factory(coordinator)
