"""The cluster coordinator: parallel fan-out ingestion + scatter-gather queries.

:class:`ClusterCoordinator` is the sharded drop-in for
:class:`~repro.core.processor.KSIRProcessor`: it exposes the same
``process_bucket`` / ``process_stream`` / ``query`` surface, but executes them
over ``N`` :class:`~repro.cluster.worker.ShardWorker` partitions planned by a
:class:`~repro.cluster.partition.ShardPlanner`.

**Ingestion** routes each element to its home shard plus the home shards of
its referenced parents (exact influence accounting; see the partition module)
and fans the routed buckets out — through a thread pool by default, serially
for deterministic debugging/measurement, or through one OS process per shard
(``backend="process"``) for GIL-free parallelism.

**Queries** run scatter-gather: every shard walks its ranked lists to export
a bounded :class:`~repro.cluster.worker.CandidatePool` (the per-shard budget
is derived from the algorithm's ``ε`` — an MTTD/MTTS descend admits at most
``k`` elements per round and retrieves no deeper than the ``ε``-termination
threshold, so ``⌈k/ε⌉`` candidates per shard cover every element a descend
could touch in practice), and the coordinator runs the final submodular
selection — any registered algorithm — over the merged union, with batch
algorithms evaluating the merged context and index algorithms traversing the
merged candidate index.

**Exactness.**  Candidate scores and marginal gains are always exact (each
pool carries its candidates' complete follower views).  Whenever no shard
truncates its export — the ``ε``-derived budget exceeds the shard's
positive-weight support, which ``⌈k/ε⌉`` comfortably does on topical
queries — the merged union contains everything the single-node run could
select and the answer is *identical* to the single node's for every
deterministic algorithm.  A truncated pool keeps index algorithms on their
usual retrieval frontier but restricts batch algorithms (greedy, CELF) to
the per-shard top candidates; use :func:`repro.cluster.verify_equivalence`
to prove the contract on a given stream and configuration, and raise
``candidate_budget`` / ``budget_scale`` when it reports truncation-induced
mismatches.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.algorithms import KSIRAlgorithm
from repro.core.element import SocialElement
from repro.core.processor import ProcessorConfig
from repro.core.query import KSIRQuery, QueryResult
from repro.core.scoring import ElementProfile, KSIRObjective, ScoringContext
from repro.core.stream import SocialStream, replay_stream
from repro.cluster.merge import merge_candidate_pools
from repro.cluster.partition import RoutedBucket, ShardPlanner
from repro.cluster.transport import (
    TransportBackend,
    canonical_transport_name,
    create_transport,
    register_transport,
)
from repro.cluster.worker import CandidatePool, ShardStats, ShardWorker
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel
from repro.utils.timing import StopWatch, TimingStats
from repro.utils.validation import require_positive

#: Fan-out backends accepted by :class:`ClusterConfig.backend` (the
#: pre-transport spelling, kept for compatibility; prefer ``transport``).
BACKEND_CHOICES = ("thread", "serial", "process")

#: Canonical transports accepted by :class:`ClusterConfig.transport`.
TRANSPORT_CHOICES = ("serial", "thread", "pipe", "shm")


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of the sharded execution layer.

    Parameters
    ----------
    num_shards:
        Number of partitions (1 degenerates to single-node behaviour with
        routing overhead).
    partitioner:
        Partitioning strategy name (``hash``, ``round-robin``,
        ``load-balanced``).
    backend:
        Fan-out executor: ``thread`` (default), ``serial`` (deterministic,
        used for per-shard measurement), or ``process`` (one OS process per
        shard; GIL-free, pays per-bucket IPC).  The pre-transport spelling;
        ignored when ``transport`` is set.
    transport:
        Fan-out transport name resolved through the
        :func:`repro.cluster.register_transport` registry: ``serial``,
        ``thread``, ``pipe`` (one process per shard, pickled payloads over
        pipes) or ``shm`` (one process per shard, shared-memory store
        columns and array-slice payloads; pipes carry only control tuples).
        ``None`` (the default) derives the transport from ``backend``
        (``process`` → ``pipe``), keeping existing configurations and
        checkpoints working unchanged.
    candidate_budget:
        Fixed per-shard candidate budget for queries; ``None`` derives the
        budget from the query algorithm's ``ε`` as
        ``max(k, ⌈budget_scale · k / ε⌉)``.
    budget_scale:
        Multiplier applied to the ε-derived budget (>1 trades latency for an
        even larger safety margin).
    max_workers:
        Thread-pool size for the ``thread`` backend (default: one per shard).
    """

    num_shards: int = 4
    partitioner: str = "hash"
    backend: str = "thread"
    transport: Optional[str] = None
    candidate_budget: Optional[int] = None
    budget_scale: float = 1.0
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        require_positive(self.num_shards, "num_shards")
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: "
                + ", ".join(BACKEND_CHOICES)
            )
        # ``transport`` is validated against the registry at coordinator
        # construction (third-party transports register after import time),
        # but reject obviously malformed values eagerly.
        if self.transport is not None and not self.transport.strip():
            raise ValueError("transport must be a non-empty name or None")
        if self.candidate_budget is not None:
            require_positive(self.candidate_budget, "candidate_budget")
        require_positive(self.budget_scale, "budget_scale")
        if self.max_workers is not None:
            require_positive(self.max_workers, "max_workers")

    @property
    def effective_transport(self) -> str:
        """The canonical transport name this configuration selects.

        ``transport`` when set, otherwise derived from the legacy
        ``backend`` field (``process`` is an alias of ``pipe``).
        """
        return canonical_transport_name(self.transport or self.backend)

    def derive_budget(self, k: int, epsilon: float) -> int:
        """The per-shard candidate budget for a ``(k, ε)`` query."""
        if self.candidate_budget is not None:
            return self.candidate_budget
        return max(int(k), int(math.ceil(self.budget_scale * k / max(epsilon, 1e-9))))


class _LocalFanout:
    """Thread-pool or serial fan-out over in-process shard workers."""

    #: In-process workers share the planner; routed buckets need no
    #: ownership entries (see ``TransportBackend.ships_owners``).
    ships_owners = False

    def __init__(self, workers: Sequence[ShardWorker], pool: Optional[ThreadPoolExecutor]):
        self._workers = list(workers)
        self._pool = pool

    @property
    def workers(self) -> Tuple[ShardWorker, ...]:
        return tuple(self._workers)

    def _map(self, fn, items):
        if self._pool is None:
            return [fn(item) for item in items]
        return list(self._pool.map(fn, items))

    def ingest(self, routed: Sequence[RoutedBucket], end_time: int) -> None:
        def run(bucket: RoutedBucket) -> None:
            self._workers[bucket.shard_id].ingest(
                bucket.elements, end_time, home_count=bucket.home_count
            )

        self._map(run, routed)

    def export(self, vector: np.ndarray, budget: Optional[int]) -> List[CandidatePool]:
        return self._map(
            lambda worker: worker.export_candidates(vector, budget), self._workers
        )

    def take_dirty_topics(self) -> Set[int]:
        dirty: Set[int] = set()
        for worker in self._workers:
            dirty.update(worker.take_dirty_topics())
        return dirty

    def home_active_counts(self) -> List[int]:
        return [worker.home_active_count for worker in self._workers]

    def stats(self) -> List[ShardStats]:
        return [worker.stats() for worker in self._workers]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)


class ClusterCoordinator:
    """Routes ingestion to shards and answers queries by scatter-gather."""

    def __init__(
        self,
        topic_model: TopicModel,
        config: Optional[ProcessorConfig] = None,
        cluster: Optional[ClusterConfig] = None,
        inferencer: Optional[TopicInferencer] = None,
    ) -> None:
        self._model = topic_model
        self._config = config or ProcessorConfig()
        self._cluster = cluster or ClusterConfig()
        self._inferencer = inferencer or TopicInferencer(topic_model)
        self._planner = ShardPlanner(
            self._cluster.num_shards, strategy=self._cluster.partitioner
        )
        self._buckets_processed = 0
        self._elements_processed = 0
        self._current_time: Optional[int] = None
        self._active_cache: Optional[Tuple[int, int]] = None
        self._ingest_timer = TimingStats(name="cluster-ingest")
        self._scatter_timer = TimingStats(name="cluster-scatter")
        self._closed = False

        # The concrete fan-out is resolved through the transport registry
        # (see repro.cluster.transport); built-ins are registered at the
        # bottom of this module, third parties via register_transport().
        self._fanout: TransportBackend = create_transport(
            self._cluster.effective_transport, self
        )

    def _make_home_filter(self, shard_id: int):
        planner = self._planner
        return lambda element_id: planner.owner(element_id) == shard_id

    # -- metadata -----------------------------------------------------------------

    @property
    def topic_model(self) -> TopicModel:
        """The shared topic-model oracle."""
        return self._model

    @property
    def config(self) -> ProcessorConfig:
        """The per-shard processor configuration."""
        return self._config

    @property
    def cluster_config(self) -> ClusterConfig:
        """The sharding configuration."""
        return self._cluster

    @property
    def planner(self) -> ShardPlanner:
        """The shard planner (ownership and routing)."""
        return self._planner

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return self._cluster.num_shards

    @property
    def workers(self) -> Tuple[ShardWorker, ...]:
        """The in-process shard workers (empty for the process backend)."""
        if isinstance(self._fanout, _LocalFanout):
            return self._fanout.workers
        return ()

    @property
    def fanout(self) -> TransportBackend:
        """The fan-out transport (``repro.ha`` uses it for liveness probes)."""
        return self._fanout

    @property
    def buckets_processed(self) -> int:
        """Buckets ingested so far."""
        return self._buckets_processed

    @property
    def elements_processed(self) -> int:
        """Stream elements ingested so far (before replication)."""
        return self._elements_processed

    @property
    def current_time(self) -> Optional[int]:
        """The time of the last processed bucket."""
        return self._current_time

    @property
    def active_count(self) -> int:
        """Active elements across the cluster (each counted on its home shard).

        Memoised per ingested bucket: the count only changes at ingestion,
        and on the process backend reading it costs a full shard broadcast.
        """
        cached = self._active_cache
        if cached is not None and cached[0] == self._buckets_processed:
            return cached[1]
        value = sum(self._fanout.home_active_counts())
        self._active_cache = (self._buckets_processed, value)
        return value

    @property
    def ingest_timer(self) -> TimingStats:
        """Coordinator-side per-bucket fan-out wall times."""
        return self._ingest_timer

    @property
    def scatter_timer(self) -> TimingStats:
        """Per-query scatter (candidate export) wall times."""
        return self._scatter_timer

    def shard_stats(self) -> List[ShardStats]:
        """Per-shard accounting snapshots."""
        return self._fanout.stats()

    def take_dirty_topics(self) -> Tuple[int, ...]:
        """Union of the shards' dirty-topic sets since the last drain."""
        return tuple(sorted(self._fanout.take_dirty_topics()))

    # -- ingestion -----------------------------------------------------------------

    def _prepare(self, elements: Sequence[SocialElement]) -> List[SocialElement]:
        """Infer missing topic distributions once, before routing.

        Central inference keeps replicas byte-identical across shards and
        means shard workers (including remote processes) never have to run
        the inferencer themselves.
        """
        prepared: List[SocialElement] = []
        for element in elements:
            if element.topic_distribution is None:
                element = element.with_topic_distribution(
                    self._inferencer.infer(element.tokens)
                )
            prepared.append(element)
        return prepared

    def process_bucket(self, elements: Sequence[SocialElement], end_time: int) -> None:
        """Route one bucket to the shards and advance every shard window."""
        self._require_open()
        with self._ingest_timer.measure():
            prepared = self._prepare(elements)
            routed = self._planner.route_bucket(
                prepared,
                with_owners=getattr(self._fanout, "ships_owners", False),
            )
            self._fanout.ingest(routed, end_time)
            self.commit_bucket(len(prepared), end_time)

    def commit_bucket(self, num_elements: int, end_time: int) -> None:
        """Advance the coordinator counters after a bucket reached the shards.

        Split out of :meth:`process_bucket` for the `repro.ha` supervisor: a
        mid-bucket shard failure leaves the live shards *with* the bucket
        applied but the counters not yet advanced; after the supervisor
        restores the dead shard and replays the gap (including that bucket)
        it commits the bucket here instead of re-ingesting it — re-ingestion
        into the live shards would double-count reposts.
        """
        self._elements_processed += int(num_elements)
        self._buckets_processed += 1
        self._current_time = int(end_time)
        # Ownership entries of elements inactive everywhere (even out of
        # every shard's archive) are routing dead weight; trim with the
        # archive's own horizon so memory stays bounded on endless
        # streams.  8 windows matches ActiveWindow's default
        # ``archive_windows``.
        cutoff = end_time - 8 * self._config.window_length
        if cutoff > 0:
            self._planner.trim_inactive(cutoff)

    def process_stream(
        self,
        stream: Union[SocialStream, Iterable[SocialElement]],
        until: Optional[int] = None,
    ) -> None:
        """Replay a whole stream (or until ``until``) through the cluster."""
        replay_stream(stream, self._config.bucket_length, self.process_bucket, until)

    # -- query processing -------------------------------------------------------------

    def query(
        self,
        query: Union[KSIRQuery, np.ndarray, Sequence[float]],
        k: Optional[int] = None,
        algorithm: Union[str, KSIRAlgorithm, None] = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer a k-SIR query by scatter-gather over the shards.

        Accepts the same inputs as :meth:`KSIRProcessor.query`.  The final
        selection runs the resolved algorithm over the merged per-shard
        candidate pools; scores are exact because each pool carries its
        candidates' complete follower views.
        """
        self._require_open()
        ksir_query = KSIRQuery.coerce(query, k)
        solver = self._config.resolve_algorithm(algorithm, epsilon)
        solver_epsilon = getattr(solver, "epsilon", None)
        if solver_epsilon is None:
            solver_epsilon = (
                self._config.default_epsilon if epsilon is None else epsilon
            )
        budget = self._cluster.derive_budget(ksir_query.k, float(solver_epsilon))

        watch = StopWatch()
        watch.start()
        with self._scatter_timer.measure():
            pools = self._fanout.export(ksir_query.vector, budget)
        context, index = merge_candidate_pools(
            pools,
            num_topics=self._model.num_topics,
            config=self._config.scoring,
            time=self._current_time,
            build_index=solver.requires_index,
        )
        objective = KSIRObjective(context, ksir_query.vector)
        outcome = solver.select(
            objective,
            ksir_query.k,
            index=index if solver.requires_index else None,
        )
        elapsed = watch.stop()

        extras = dict(outcome.extras)
        extras["shards"] = float(self.num_shards)
        extras["candidate_budget"] = float(budget)
        extras["merged_candidates"] = float(context.active_count)
        return QueryResult(
            element_ids=outcome.element_ids,
            score=outcome.value,
            algorithm=solver.name,
            elapsed_ms=elapsed * 1000.0,
            evaluated_elements=outcome.evaluated_elements,
            active_elements=self.active_count,
            extras=extras,
        )

    def snapshot(self) -> ScoringContext:
        """A frozen scoring snapshot of the whole cluster's active window.

        Each element's profile and follower view are taken from its *home*
        shard (which sees the complete follower set, because every follower
        is routed there), so the merged context equals the one a single
        node would build over the same stream.  Requires in-process shard
        workers; the process fan-out keeps its windows in worker processes
        and does not support global snapshots.
        """
        workers = self.workers
        if not workers:
            raise RuntimeError(
                "global snapshots are not available on the process fan-out "
                "backend (shard windows live in worker processes)"
            )
        profiles: Dict[int, ElementProfile] = {}
        followers: Dict[int, Tuple[int, ...]] = {}
        for worker in workers:
            processor = worker.processor
            window = processor.window
            # One bulk follower slice per shard (CSR export on the
            # columnar store) instead of one adjacency call per element.
            shard_followers = window.followers_snapshot()
            for element_id in window.active_ids():
                if not processor.is_home(element_id):
                    continue
                profiles[element_id] = processor.profile(element_id)
                followers[element_id] = shard_followers.get(element_id, ())
        return ScoringContext(
            profiles=profiles,
            followers=followers,
            config=self._config.scoring,
            time=self._current_time,
        )

    # -- checkpoint state --------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of the whole cluster.

        Serialises the coordinator counters, the planner (ownership table
        plus strategy state) and every shard worker.  On the process
        backend the worker states are gathered over the pipes (``state``
        command), so every fan-out backend is checkpointable.
        """
        if isinstance(self._fanout, _LocalFanout):
            worker_states: List[Dict[str, object]] = [
                worker.state_dict() for worker in self._fanout.workers
            ]
        else:
            worker_states = self._fanout.states()
        return {
            "buckets_processed": self._buckets_processed,
            "elements_processed": self._elements_processed,
            "current_time": self._current_time,
            "planner": self._planner.state_dict(),
            "workers": worker_states,
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this coordinator."""
        shard_states = state["workers"]
        if len(shard_states) != self._cluster.num_shards:
            raise ValueError(
                f"checkpoint holds {len(shard_states)} shards, the coordinator "
                f"is configured for {self._cluster.num_shards}"
            )
        self._buckets_processed = int(state["buckets_processed"])
        self._elements_processed = int(state["elements_processed"])
        current_time = state["current_time"]
        self._current_time = None if current_time is None else int(current_time)
        self._active_cache = None
        self._planner.restore_state(state["planner"])
        if isinstance(self._fanout, _LocalFanout):
            for worker, shard_state in zip(self._fanout.workers, shard_states):
                worker.restore_state(shard_state)
        else:
            # Remote workers also need the ownership table their home
            # filters consult; ship the planner's full map (entries for
            # other shards' elements keep foreign-replica filtering exact).
            self._fanout.restore_all(
                shard_states,
                self._planner.owners_snapshot(),
                self._current_time or 0,
            )

    # -- failover hooks (repro.ha) ------------------------------------------------------

    def restore_shard(self, shard_id: int, shard_state: Mapping[str, object]) -> None:
        """Restore a single shard worker from a checkpointed shard state.

        Used by the supervisor after :meth:`ProcessFanout.restart_shard`:
        the fresh worker process receives the shard's slice of the latest
        checkpoint plus the planner's *current* ownership table (a superset
        of the checkpoint-time table, which is safe — the filter only tests
        equality with the worker's own shard id).
        """
        if isinstance(self._fanout, _LocalFanout):
            self._fanout.workers[shard_id].restore_state(shard_state)
        else:
            self._fanout.restore_shard(
                shard_id,
                shard_state,
                self._planner.owners_snapshot(),
                self._current_time or 0,
            )
        self._active_cache = None

    def replay_bucket_to_shard(
        self, shard_id: int, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """Re-ingest one logged bucket into a single shard (WAL gap replay).

        Routing is recomputed through the planner, which is idempotent for
        already-seen elements (ownership is memoised and activity times are
        max-raised), so replay produces byte-identical routed buckets.
        Only the slice destined for ``shard_id`` is shipped; the other
        shards already hold the bucket.
        """
        prepared = self._prepare(elements)
        routed = self._planner.route_bucket(
            prepared,
            with_owners=getattr(self._fanout, "ships_owners", False),
        )
        bucket = routed[shard_id]
        if isinstance(self._fanout, _LocalFanout):
            self._fanout.workers[shard_id].ingest(
                bucket.elements, end_time, home_count=bucket.home_count
            )
        else:
            self._fanout.ingest_shard(bucket, end_time)

    def prepare_elements(self, elements: Sequence[SocialElement]) -> List[SocialElement]:
        """Public wrapper over central topic inference (WAL normalisation).

        The supervisor logs *prepared* elements so a replay after failover
        never re-runs inference; preparation is idempotent (elements that
        already carry a topic distribution pass through untouched).
        """
        return self._prepare(elements)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the fan-out backend (idempotent)."""
        if not self._closed:
            self._fanout.close()
            self._closed = True

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("the cluster coordinator has been closed")


# -- built-in transport factories ------------------------------------------------------


def _build_local_fanout(
    coordinator: ClusterCoordinator, pool: Optional[ThreadPoolExecutor]
) -> _LocalFanout:
    cluster = coordinator.cluster_config
    workers = [
        ShardWorker(
            shard_id,
            coordinator.topic_model,
            coordinator.config,
            inferencer=coordinator._inferencer,
            home_filter=coordinator._make_home_filter(shard_id),
        )
        for shard_id in range(cluster.num_shards)
    ]
    return _LocalFanout(workers, pool)


def _serial_transport(coordinator: ClusterCoordinator) -> TransportBackend:
    """Same-thread fan-out (deterministic; per-shard measurement)."""
    return _build_local_fanout(coordinator, None)


def _thread_transport(coordinator: ClusterCoordinator) -> TransportBackend:
    """Thread-pool fan-out over in-process workers."""
    cluster = coordinator.cluster_config
    pool = ThreadPoolExecutor(
        max_workers=cluster.max_workers or cluster.num_shards,
        thread_name_prefix="ksir-shard",
    )
    return _build_local_fanout(coordinator, pool)


def _pipe_transport(coordinator: ClusterCoordinator) -> TransportBackend:
    """One OS process per shard; pickled payloads over pipes."""
    # Imported lazily: the process backends pull in multiprocessing
    # machinery that thread/serial users never need.
    from repro.cluster.process_backend import ProcessFanout

    cluster = coordinator.cluster_config
    return ProcessFanout(
        cluster.num_shards, coordinator.topic_model, coordinator.config
    )


def _shm_transport(coordinator: ClusterCoordinator) -> TransportBackend:
    """One OS process per shard; shared-memory columns + array payloads."""
    from repro.cluster.shm_backend import ShmProcessFanout

    cluster = coordinator.cluster_config
    return ShmProcessFanout(
        cluster.num_shards, coordinator.topic_model, coordinator.config
    )


register_transport("serial", _serial_transport)
register_transport("thread", _thread_transport)
register_transport("pipe", _pipe_transport)
register_transport("shm", _shm_transport)
