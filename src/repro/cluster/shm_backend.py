"""Zero-copy one-process-per-shard fan-out (``ClusterConfig(transport="shm")``).

:class:`ShmProcessFanout` keeps the pipe transport's process model, liveness
detection and checkpoint protocol (it *is* a :class:`ProcessFanout`), but
moves the heavy payloads off the pipes:

* **Store columns live in shared memory.**  Each shard worker's
  :class:`~repro.store.ElementStore` adopts columns backed by
  coordinator-owned segments (one :class:`~repro.cluster.shm.SharedColumnArena`
  per shard), so the coordinator reads element ids, timestamps and the
  topic-profile matrix ``P`` of any shard zero-copy.
* **Candidate pools are array slices.**  ``export`` replies carry only a
  tiny section header over the pipe; the candidate ids, stored scores,
  activity times, full candidate profiles and follower *rows* are packed as
  fixed-layout arrays into a per-shard shared result buffer.  Follower
  profiles — the bulk of a pickled pool — are never shipped at all: the
  coordinator materialises them directly from the shared ``P`` / timestamp
  columns.
* **Buckets are packed, not pickled per shard.**  ``ingest`` writes the
  routed elements and ownership updates into a per-shard shared ingest
  buffer; the pipe carries only ``(end_time, home_count, header)``.

Growth handshake
----------------
Workers never create segments (attach-only processes cannot leak them).
When a column capacity or buffer size is insufficient the worker replies
``("grow", requirements)`` *without mutating state*; the coordinator grows
the arena — copying live column contents through its own views while the
worker is quiescent between commands — and re-sends the command with the
new manifest.  Ingest pre-checks row capacity (a bucket can acquire at most
``len(elements) + Σ references`` rows), restore retries from scratch (it
clears first, so it is idempotent), and export is read-only, so every
re-sent command is sound.

Cleanup
-------
All segments are created and unlinked by the coordinator process:
``close()`` unlinks everything, worker restarts re-attach the existing
segments, and a SIGKILLed worker leaves nothing behind in ``/dev/shm`` and
triggers no ``resource_tracker`` warnings.
"""

from __future__ import annotations

import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np
import numpy.typing as npt

from repro.cluster.partition import RoutedBucket
from repro.cluster.process_backend import ProcessFanout, ShardFailure
from repro.cluster.shm import (
    COLUMN_KEYS,
    EXPORT_BUFFER_KEY,
    INGEST_BUFFER_KEY,
    INITIAL_BUFFER_BYTES,
    ArenaView,
    Manifest,
    SharedColumnArena,
    column_spec,
    new_session_token,
    pack_arrays,
    packed_size,
    unpack_arrays,
)
from repro.cluster.worker import CandidatePool, ShardWorker
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ElementProfile
from repro.store import ElementStore, StoreCapacityError
from repro.topics.model import TopicModel

#: Initial row capacity of the shared store columns (grown on demand;
#: matches the heap store's default initial capacity).
INITIAL_ROWS = 1024

_Sections = List[Tuple[str, npt.NDArray]]
_Header = List[Tuple[str, str, Tuple[int, ...]]]


# ---------------------------------------------------------------------------
# Worker-side encoding
# ---------------------------------------------------------------------------


def _encode_export(
    worker: ShardWorker, vector: npt.NDArray[np.float64], budget: Optional[int]
) -> _Sections:
    """One shard's candidate export as fixed-layout array sections.

    Mirrors :meth:`ShardWorker.export_candidates` exactly — same retrieval
    order, same stored scores, same profiles — but emits arrays instead of
    a :class:`CandidatePool`.  Dict entries are flattened *in iteration
    order* so the coordinator rebuilds dicts with identical insertion
    order, keeping float accumulation order (and therefore answers at the
    1e-9 level) bit-identical to the pipe transport.
    """
    processor = worker.processor
    index = processor.ranked_lists
    store = processor.store
    if store is None:
        raise RuntimeError("the shm transport requires the columnar store")
    candidate_ids = tuple(index.top_candidates(vector, budget))
    count = len(candidate_ids)

    cand_act = np.empty(count, dtype=np.int64)
    p_ts = np.empty(count, dtype=np.int64)
    sc_indptr = np.zeros(count + 1, dtype=np.int64)
    tp_indptr = np.zeros(count + 1, dtype=np.int64)
    sem_indptr = np.zeros(count + 1, dtype=np.int64)
    wwt_indptr = np.zeros(count + 1, dtype=np.int64)
    ref_indptr = np.zeros(count + 1, dtype=np.int64)
    sc_topics: List[int] = []
    sc_vals: List[float] = []
    tp_topics: List[int] = []
    tp_probs: List[float] = []
    sem_topics: List[int] = []
    sem_vals: List[float] = []
    wwt_topics: List[int] = []
    www_counts: List[int] = [0]
    www_words: List[int] = []
    www_sigmas: List[float] = []
    refs: List[int] = []

    for position, element_id in enumerate(candidate_ids):
        scores = index.scores_of(element_id)
        sc_topics.extend(scores.keys())
        sc_vals.extend(scores.values())
        sc_indptr[position + 1] = len(sc_topics)
        cand_act[position] = index.last_activity(element_id)

        profile = processor.profile(element_id)
        p_ts[position] = profile.timestamp
        tp_topics.extend(profile.topic_probabilities.keys())
        tp_probs.extend(profile.topic_probabilities.values())
        tp_indptr[position + 1] = len(tp_topics)
        sem_topics.extend(profile.semantic_scores.keys())
        sem_vals.extend(profile.semantic_scores.values())
        sem_indptr[position + 1] = len(sem_topics)
        for topic, words in profile.word_weights.items():
            wwt_topics.append(topic)
            www_words.extend(words.keys())
            www_sigmas.extend(words.values())
            www_counts.append(len(www_words))
        wwt_indptr[position + 1] = len(wwt_topics)
        refs.extend(profile.references)
        ref_indptr[position + 1] = len(refs)

    if count:
        rows = store.rows_of(candidate_ids)
        fol_rows, fol_counts = store.followers_concat(rows)
    else:
        fol_rows = np.empty(0, dtype=np.intp)
        fol_counts = np.empty(0, dtype=np.intp)
    fol_indptr = np.zeros(count + 1, dtype=np.int64)
    if count:
        fol_indptr[1:] = np.cumsum(fol_counts)

    worker.record_export(count)
    return [
        ("cand_ids", np.asarray(candidate_ids, dtype=np.int64)),
        ("cand_act", cand_act),
        ("p_ts", p_ts),
        ("sc_indptr", sc_indptr),
        ("sc_topics", np.asarray(sc_topics, dtype=np.int64)),
        ("sc_vals", np.asarray(sc_vals, dtype=np.float64)),
        ("tp_indptr", tp_indptr),
        ("tp_topics", np.asarray(tp_topics, dtype=np.int64)),
        ("tp_probs", np.asarray(tp_probs, dtype=np.float64)),
        ("sem_indptr", sem_indptr),
        ("sem_topics", np.asarray(sem_topics, dtype=np.int64)),
        ("sem_vals", np.asarray(sem_vals, dtype=np.float64)),
        ("wwt_indptr", wwt_indptr),
        ("wwt_topics", np.asarray(wwt_topics, dtype=np.int64)),
        ("www_indptr", np.asarray(www_counts, dtype=np.int64)),
        ("www_words", np.asarray(www_words, dtype=np.int64)),
        ("www_sigmas", np.asarray(www_sigmas, dtype=np.float64)),
        ("ref_indptr", ref_indptr),
        ("refs", np.asarray(refs, dtype=np.int64)),
        ("fol_indptr", fol_indptr),
        ("fol_rows", np.asarray(fol_rows, dtype=np.int64)),
    ]


# ---------------------------------------------------------------------------
# The worker process loop
# ---------------------------------------------------------------------------


def _shm_shard_main(
    conn,
    shard_id: int,
    topic_model: TopicModel,
    config: ProcessorConfig,
    manifest: Manifest,
) -> None:
    """The shm shard process loop: attach segments, execute commands.

    Mirrors the pipe transport's ``_shard_main`` command set; ingest /
    export / restore move their payloads through the shared arena, and a
    capacity miss is answered with a ``("grow", requirements)`` reply
    instead of mutating state (see the module docstring).
    """
    view = ArenaView(manifest)
    owners: Dict[int, int] = {}
    owner_seen: Dict[int, int] = {}
    chaos: Dict[str, float] = {"ping_delay": 0.0}

    def columns() -> Dict[str, npt.NDArray]:
        return {key: view.array(key) for key in COLUMN_KEYS}

    worker = ShardWorker(
        shard_id,
        topic_model,
        config,
        home_filter=lambda element_id: owners.get(element_id) == shard_id,
        store_factory=lambda: ElementStore(topic_model.num_topics, columns=columns()),
    )
    store = worker.processor.store
    assert store is not None  # the factory above always builds one

    def refresh(new_manifest: Manifest) -> None:
        changed = view.refresh(new_manifest)
        if any(key in COLUMN_KEYS for key in changed):
            # The coordinator already copied the live contents into the new
            # generation; only the references need swapping.
            store.adopt_columns(columns())

    while True:
        try:
            command, payload = conn.recv()
        except EOFError:
            break
        try:
            if command == "ingest":
                end_time, home_count, header, new_manifest = payload
                refresh(new_manifest)
                sections = unpack_arrays(view.array(INGEST_BUFFER_KEY), header)
                elements = pickle.loads(sections["elems"].tobytes())
                # Row-capacity pre-check *before* touching any state: a
                # bucket acquires at most one row per element plus one per
                # reference (archived parents re-activated by a repost).
                extra = len(elements) + sum(len(e.references) for e in elements)
                required = store.required_capacity(extra)
                if required > store.capacity:
                    conn.send(("grow", {"rows": required}))
                    continue
                owner_ids = sections["owner_ids"].tolist()
                owner_homes = sections["owner_homes"].tolist()
                owners.update(zip(owner_ids, owner_homes))
                for element_id in owner_ids:
                    owner_seen[element_id] = end_time
                worker.ingest(elements, end_time, home_count=home_count)
                cutoff = end_time - 8 * config.window_length
                if cutoff > 0:
                    for element_id in [
                        eid for eid, seen in owner_seen.items() if seen < cutoff
                    ]:
                        del owner_seen[element_id]
                        owners.pop(element_id, None)
                conn.send(("ok", None))
            elif command == "export":
                vector, budget, new_manifest = payload
                refresh(new_manifest)
                sections = _encode_export(worker, vector, budget)
                buffer = view.array(EXPORT_BUFFER_KEY)
                required = packed_size(sections)
                if required > buffer.nbytes:
                    conn.send(("grow", {"out": required}))
                    continue
                conn.send(("ok", pack_arrays(buffer, sections)))
            elif command == "restore":
                worker_state, owner_table, owner_time, new_manifest = payload
                refresh(new_manifest)
                try:
                    worker.restore_state(worker_state)
                except StoreCapacityError as error:
                    # Restore clears the store before re-acquiring rows, so
                    # retrying after a grow restores from scratch cleanly.
                    conn.send(("grow", {"rows": error.required_capacity}))
                    continue
                owners.clear()
                owners.update(
                    {int(eid): int(home) for eid, home in owner_table.items()}
                )
                owner_seen = {eid: int(owner_time) for eid in owners}
                conn.send(("ok", None))
            elif command == "dirty":
                conn.send(("ok", worker.take_dirty_topics()))
            elif command == "active":
                conn.send(("ok", worker.home_active_count))
            elif command == "stats":
                conn.send(("ok", worker.stats()))
            elif command == "ping":
                if chaos["ping_delay"] > 0.0:
                    time.sleep(chaos["ping_delay"])
                conn.send(("ok", shard_id))
            elif command == "state":
                conn.send(("ok", worker.state_dict()))
            elif command == "chaos":
                chaos.update({str(key): float(value) for key, value in payload.items()})
                conn.send(("ok", None))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as error:  # surface shard failures to the coordinator
            conn.send(("error", f"{type(error).__name__}: {error}"))
    view.close()
    conn.close()


# ---------------------------------------------------------------------------
# The coordinator-side fan-out
# ---------------------------------------------------------------------------


class ShmProcessFanout(ProcessFanout):
    """Scatter-gather over shared-memory-attached shard worker processes.

    Subclasses :class:`ProcessFanout`, inheriting the liveness protocol
    (ping / sticky dead shards / restart), the checkpoint ``state`` command
    and chaos injection; ingest, export and restore are overridden to move
    their payloads through per-shard :class:`SharedColumnArena` segments
    with the grow handshake described in the module docstring.
    """

    def __init__(
        self,
        num_shards: int,
        topic_model: TopicModel,
        config: ProcessorConfig,
        initial_rows: int = INITIAL_ROWS,
        initial_buffer_bytes: int = INITIAL_BUFFER_BYTES,
    ) -> None:
        if config.store != "columnar":
            raise ValueError(
                "the shm transport shares store columns between processes and "
                'therefore requires ProcessorConfig(store="columnar"); got '
                f"store={config.store!r}"
            )
        self.session = new_session_token()
        self._arenas: List[SharedColumnArena] = []
        num_topics = topic_model.num_topics
        for shard_id in range(num_shards):
            arena = SharedColumnArena(self.session, shard_id)
            for key, (shape, dtype, fill) in column_spec(
                initial_rows, num_topics
            ).items():
                arena.create(key, shape, dtype, fill)
            arena.create(INGEST_BUFFER_KEY, (initial_buffer_bytes,), np.dtype(np.uint8))
            arena.create(EXPORT_BUFFER_KEY, (initial_buffer_bytes,), np.dtype(np.uint8))
            self._arenas.append(arena)
        self._num_topics = num_topics
        try:
            super().__init__(num_shards, topic_model, config)
        except BaseException:
            for arena in self._arenas:
                arena.close(unlink=True)
            raise

    def _spawn(self, shard_id: int):
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_shm_shard_main,
            args=(
                child_conn,
                shard_id,
                self._model,
                self._config,
                self._arenas[shard_id].manifest(),
            ),
            daemon=True,
            name=f"ksir-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    # -- the grow handshake -----------------------------------------------------------

    def _grow_for(self, shard_id: int, requirements: Dict[str, int]) -> None:
        """Grow one shard's arena to satisfy a worker's grow reply."""
        arena = self._arenas[shard_id]
        if "rows" in requirements:
            current = int(arena.array("ids").shape[0])
            new_rows = max(int(requirements["rows"]), current * 2)
            for key, (shape, _, fill) in column_spec(
                new_rows, self._num_topics
            ).items():
                # Fill the whole new segment with the column default, then
                # copy the live prefix; the worker is quiescent between
                # commands, so reading its columns here is race-free.
                arena.grow(key, shape, copy=True, fill=fill)
        if "out" in requirements:
            current = int(arena.array(EXPORT_BUFFER_KEY).nbytes)
            new_bytes = max(int(requirements["out"]), current * 2)
            arena.grow(EXPORT_BUFFER_KEY, (new_bytes,), copy=False)
        # Retired segments are NOT unlinked here: a worker that has not yet
        # attached them (it attaches its startup manifest lazily, by name)
        # would hit FileNotFoundError.  They are unlinked once the shard
        # replies — every shm command refreshes the manifest before
        # answering, so a reply proves the old names are no longer needed.

    def _exchange(
        self,
        commands: Union[
            Sequence[Optional[Tuple[str, Tuple]]],
            Callable[[], Sequence[Optional[Tuple[str, Tuple]]]],
        ],
        finalize: Optional[Callable[[List[object]], List[object]]] = None,
        require_all_alive: bool = True,
    ) -> List[object]:
        """Scatter one command per shard with grow-retry, then gather.

        ``commands[shard]`` is ``(command, payload_prefix)``; the shard's
        current manifest is appended to the payload at every (re)send so a
        grow between attempts is visible to the worker.  ``None`` skips the
        shard.  ``finalize`` runs on the replies *while the protocol lock
        is held* — the export path decodes candidate pools from the shared
        buffers there, before any concurrent ingest can mutate the columns.

        ``require_all_alive=False`` only checks the *targeted* shards for
        deadness (single-shard restore must proceed while other shards are
        still down during multi-failure recovery).

        ``commands`` may be a callable built *under the protocol lock*
        (ingest packs the shared ingest buffers there, so buffer writes and
        grows can never interleave with a concurrent export exchange).
        """
        with self._protocol_lock:
            if callable(commands):
                commands = commands()
            pending: Set[int] = {
                shard_id
                for shard_id, command in enumerate(commands)
                if command is not None
            }
            if require_all_alive:
                self._check_dead_locked()
            else:
                targeted_dead = pending & self._dead
                if targeted_dead:
                    raise ShardFailure(
                        targeted_dead, "shard is marked dead", pre_send=True
                    )
            results: List[object] = [None] * len(self._connections)
            newly_dead: Set[int] = set()
            failures: List[str] = []
            needs_send = set(pending)
            while pending:
                for shard_id in sorted(needs_send):
                    command, prefix = commands[shard_id]  # type: ignore[misc]
                    payload = (*prefix, self._arenas[shard_id].manifest())
                    try:
                        self._connections[shard_id].send((command, payload))
                    except (BrokenPipeError, OSError):
                        newly_dead.add(shard_id)
                needs_send.clear()
                done: Set[int] = set()
                for shard_id in sorted(pending):
                    if shard_id in newly_dead:
                        done.add(shard_id)
                        continue
                    try:
                        status, value = self._connections[shard_id].recv()
                    except (EOFError, OSError):
                        newly_dead.add(shard_id)
                        done.add(shard_id)
                        continue
                    # Any reply proves the worker refreshed to the manifest
                    # of the last send — segments retired before that send
                    # are now safe to unlink.
                    self._arenas[shard_id].unlink_retired()
                    if status == "ok":
                        results[shard_id] = value
                        done.add(shard_id)
                    elif status == "grow":
                        self._grow_for(shard_id, value)
                        needs_send.add(shard_id)
                    else:
                        failures.append(f"shard {shard_id} failed: {value}")
                        done.add(shard_id)
                pending -= done
            self._dead.update(newly_dead)
            if not newly_dead and not failures and finalize is not None:
                results = finalize(results)
        if newly_dead:
            raise ShardFailure(newly_dead)
        if failures:
            raise RuntimeError("; ".join(failures))
        return results

    def _shm_request(self, shard_id: int, command: str, prefix: Tuple) -> object:
        """Single-shard request/reply with the grow-retry handshake."""
        commands: List[Optional[Tuple[str, Tuple]]] = [None] * len(self._connections)
        commands[shard_id] = (command, prefix)
        return self._exchange(commands, require_all_alive=False)[shard_id]

    # -- payload packing --------------------------------------------------------------

    def _write_ingest(self, bucket: RoutedBucket) -> _Header:
        """Pack one routed bucket into its shard's shared ingest buffer."""
        arena = self._arenas[bucket.shard_id]
        owner_items = list(bucket.owners.items())
        sections: _Sections = [
            (
                "elems",
                np.frombuffer(
                    pickle.dumps(tuple(bucket.elements), protocol=pickle.HIGHEST_PROTOCOL),
                    dtype=np.uint8,
                ),
            ),
            ("owner_ids", np.asarray([eid for eid, _ in owner_items], dtype=np.int64)),
            ("owner_homes", np.asarray([home for _, home in owner_items], dtype=np.int64)),
        ]
        buffer = arena.array(INGEST_BUFFER_KEY)
        required = packed_size(sections)
        if required > buffer.nbytes:
            # Called under the protocol lock; the retired segment is
            # unlinked once the shard replies (see _exchange).
            buffer = arena.grow(
                INGEST_BUFFER_KEY, (max(required, buffer.nbytes * 2),), copy=False
            )
        return pack_arrays(buffer, sections)

    # -- pool materialisation ---------------------------------------------------------

    def _decode_pool(self, shard_id: int, header: _Header) -> CandidatePool:
        """Rebuild one shard's candidate pool from its shared buffers.

        Runs under the protocol lock while the worker is quiescent, so the
        shared columns are guaranteed stable.  Follower profiles are
        *materialised* from the shared ``P`` / timestamp columns (they were
        never shipped): topic probabilities only, which is exactly what
        influence evaluation reads of a follower.
        """
        arena = self._arenas[shard_id]
        sections = unpack_arrays(arena.array(EXPORT_BUFFER_KEY), header)
        ids_col = arena.array("ids")
        ts_col = arena.array("ts")
        prof_col = arena.array("prof")

        candidate_ids = tuple(int(eid) for eid in sections["cand_ids"])
        cand_act = sections["cand_act"]
        p_ts = sections["p_ts"]
        sc_indptr = sections["sc_indptr"]
        sc_topics = sections["sc_topics"].tolist()
        sc_vals = sections["sc_vals"].tolist()
        tp_indptr = sections["tp_indptr"]
        tp_topics = sections["tp_topics"].tolist()
        tp_probs = sections["tp_probs"].tolist()
        sem_indptr = sections["sem_indptr"]
        sem_topics = sections["sem_topics"].tolist()
        sem_vals = sections["sem_vals"].tolist()
        wwt_indptr = sections["wwt_indptr"]
        wwt_topics = sections["wwt_topics"].tolist()
        www_indptr = sections["www_indptr"]
        www_words = sections["www_words"].tolist()
        www_sigmas = sections["www_sigmas"].tolist()
        ref_indptr = sections["ref_indptr"]
        refs = sections["refs"].tolist()
        fol_indptr = sections["fol_indptr"]
        fol_rows = sections["fol_rows"].tolist()

        scores: Dict[int, Dict[int, float]] = {}
        activity: Dict[int, int] = {}
        followers: Dict[int, Tuple[int, ...]] = {}
        profiles: Dict[int, ElementProfile] = {}
        follower_rows_seen: Dict[int, int] = {}

        for position, element_id in enumerate(candidate_ids):
            lo, hi = int(sc_indptr[position]), int(sc_indptr[position + 1])
            scores[element_id] = dict(zip(sc_topics[lo:hi], sc_vals[lo:hi]))
            activity[element_id] = int(cand_act[position])

            lo, hi = int(tp_indptr[position]), int(tp_indptr[position + 1])
            topic_probabilities = dict(zip(tp_topics[lo:hi], tp_probs[lo:hi]))
            lo, hi = int(sem_indptr[position]), int(sem_indptr[position + 1])
            semantic_scores = dict(zip(sem_topics[lo:hi], sem_vals[lo:hi]))
            word_weights: Dict[int, Dict[int, float]] = {}
            for pair in range(int(wwt_indptr[position]), int(wwt_indptr[position + 1])):
                lo, hi = int(www_indptr[pair]), int(www_indptr[pair + 1])
                word_weights[wwt_topics[pair]] = dict(
                    zip(www_words[lo:hi], www_sigmas[lo:hi])
                )
            lo, hi = int(ref_indptr[position]), int(ref_indptr[position + 1])
            profiles[element_id] = ElementProfile(
                element_id=element_id,
                timestamp=int(p_ts[position]),
                topic_probabilities=topic_probabilities,
                word_weights=word_weights,
                semantic_scores=semantic_scores,
                references=tuple(refs[lo:hi]),
            )

            lo, hi = int(fol_indptr[position]), int(fol_indptr[position + 1])
            segment = [
                (int(ids_col[row]), row) for row in fol_rows[lo:hi]
            ]
            # The pipe transport exports follower ids sorted; match it so
            # follower iteration (and float accumulation) order is equal.
            segment.sort()
            followers[element_id] = tuple(fid for fid, _ in segment)
            follower_rows_seen.update(segment)

        for follower_id, row in follower_rows_seen.items():
            if follower_id in profiles:
                continue
            profile_row = prof_col[row]
            nonzero = np.nonzero(profile_row)[0]
            profiles[follower_id] = ElementProfile(
                element_id=follower_id,
                timestamp=int(ts_col[row]),
                topic_probabilities={
                    int(topic): float(profile_row[topic]) for topic in nonzero
                },
                word_weights={},
                semantic_scores={},
                references=(),
            )

        return CandidatePool(
            shard_id=shard_id,
            candidate_ids=candidate_ids,
            scores=scores,
            activity=activity,
            followers=followers,
            profiles=profiles,
        )

    # -- the fan-out interface ----------------------------------------------------------

    def ingest(self, routed: Sequence[RoutedBucket], end_time: int) -> None:
        def build() -> List[Optional[Tuple[str, Tuple]]]:
            commands: List[Optional[Tuple[str, Tuple]]] = [None] * len(
                self._connections
            )
            for bucket in routed:
                header = self._write_ingest(bucket)
                commands[bucket.shard_id] = (
                    "ingest",
                    (end_time, bucket.home_count, header),
                )
            return commands

        self._exchange(build)

    def export(
        self, vector: npt.NDArray[np.float64], budget: Optional[int]
    ) -> List[CandidatePool]:
        commands: List[Optional[Tuple[str, Tuple]]] = [
            ("export", (vector, budget)) for _ in self._connections
        ]

        def materialise(headers: List[object]) -> List[object]:
            return [
                self._decode_pool(shard_id, header)  # type: ignore[arg-type]
                for shard_id, header in enumerate(headers)
            ]

        pools = self._exchange(commands, finalize=materialise)
        return pools  # type: ignore[return-value]

    def ingest_shard(self, bucket: RoutedBucket, end_time: int) -> None:
        def build() -> List[Optional[Tuple[str, Tuple]]]:
            commands: List[Optional[Tuple[str, Tuple]]] = [None] * len(
                self._connections
            )
            header = self._write_ingest(bucket)
            commands[bucket.shard_id] = (
                "ingest",
                (end_time, bucket.home_count, header),
            )
            return commands

        self._exchange(build, require_all_alive=False)

    def restore_shard(
        self,
        shard_id: int,
        state,
        owners,
        owner_time: int,
    ) -> None:
        self._shm_request(
            shard_id, "restore", (dict(state), dict(owners), int(owner_time))
        )

    def restore_all(self, states, owners, owner_time: int) -> None:
        if len(states) != self.num_shards:
            raise ValueError(
                f"checkpoint holds {len(states)} shards, the fan-out "
                f"runs {self.num_shards}"
            )
        shared = (dict(owners), int(owner_time))
        commands: List[Optional[Tuple[str, Tuple]]] = [
            ("restore", (dict(state), *shared)) for state in states
        ]
        self._exchange(commands)

    def close(self) -> None:
        already_closed = self._closed
        super().close()
        if not already_closed:
            for arena in self._arenas:
                arena.close(unlink=True)
