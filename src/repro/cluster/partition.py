"""Partitioning strategies and the shard planner of the execution layer.

The cluster partitions the *element space*: every stream element has exactly
one **home shard** whose :class:`~repro.core.processor.KSIRProcessor` owns its
ranked-list tuples.  Because the influence score of an element counts its
in-window followers, a follower posted on a different shard must also reach
the parent's home shard — the planner therefore routes each element to its
home shard plus the home shards of every element it references.  On those
extra shards the element is a *foreign replica*: it participates in the
window and the follower sets (keeping ``δ_i(e)`` of home elements exact) but
never enters the shard's ranked lists.

Three :class:`PartitionStrategy` implementations are provided:

* ``hash`` — stateless multiplicative hash of the element id; the default,
  because ownership is a pure function any process can recompute;
* ``round-robin`` — cycles through the shards in arrival order, giving the
  most even element counts;
* ``load-balanced`` — assigns each new element to the shard with the least
  observed load, where an element's load contribution is its document length
  plus its reference count (the two drivers of ingest cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.element import SocialElement
from repro.utils.validation import require_positive


class PartitionStrategy:
    """Decides the home shard of each newly arrived element.

    Strategies may keep state (round-robin counters, load accumulators); the
    planner calls :meth:`assign` exactly once per element, in arrival order,
    and memoises the answer, so ownership is stable for the element's whole
    lifetime.
    """

    #: Registry name of the strategy.
    name: str = "base"

    def assign(self, element: SocialElement, num_shards: int) -> int:
        """The home shard (``0 .. num_shards-1``) of a new element."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable strategy state (empty for stateless strategies)."""
        return {}

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (no-op for stateless ones)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class HashPartitioner(PartitionStrategy):
    """Stateless multiplicative hash of the element id.

    Uses Knuth's multiplicative constant rather than Python's built-in
    ``hash`` so ownership is reproducible across processes (the process
    backend recomputes it in the shard workers).
    """

    name = "hash"

    _KNUTH = 2654435761

    def assign(self, element: SocialElement, num_shards: int) -> int:
        return self.shard_of(element.element_id, num_shards)

    @staticmethod
    def shard_of(element_id: int, num_shards: int) -> int:
        """Pure ownership function, usable without an element object."""
        return ((int(element_id) * HashPartitioner._KNUTH) & 0xFFFFFFFF) % num_shards


class RoundRobinPartitioner(PartitionStrategy):
    """Cycle through the shards in element arrival order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, element: SocialElement, num_shards: int) -> int:
        shard = self._next % num_shards
        self._next += 1
        return shard

    def state_dict(self) -> Dict[str, object]:
        return {"next": self._next}

    def restore_state(self, state: Mapping[str, object]) -> None:
        self._next = int(state.get("next", 0))


class LoadBalancedPartitioner(PartitionStrategy):
    """Assign each element to the least-loaded shard by observed mass.

    The load contribution of an element is ``len(tokens) + len(references)``
    — document length drives profile building and ranked-list insertion,
    references drive follower refreshes — so shards end up balanced by
    expected ingest work rather than by raw element counts.  Ties break
    towards the lowest shard index, keeping assignments deterministic.
    """

    name = "load-balanced"

    def __init__(self) -> None:
        self._loads: List[float] = []

    def assign(self, element: SocialElement, num_shards: int) -> int:
        while len(self._loads) < num_shards:
            self._loads.append(0.0)
        shard = min(range(num_shards), key=lambda s: (self._loads[s], s))
        self._loads[shard] += float(len(element.tokens) + len(element.references))
        return shard

    @property
    def loads(self) -> Tuple[float, ...]:
        """The accumulated per-shard load masses."""
        return tuple(self._loads)

    def state_dict(self) -> Dict[str, object]:
        return {"loads": list(self._loads)}

    def restore_state(self, state: Mapping[str, object]) -> None:
        self._loads = [float(load) for load in state.get("loads", ())]


PARTITIONER_REGISTRY = {
    "hash": HashPartitioner,
    "round-robin": RoundRobinPartitioner,
    "roundrobin": RoundRobinPartitioner,
    "load-balanced": LoadBalancedPartitioner,
    "loadbalanced": LoadBalancedPartitioner,
}
"""Maps user-facing partitioner names to their classes."""


def make_partitioner(name: str) -> PartitionStrategy:
    """Instantiate a partitioning strategy by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        cls = PARTITIONER_REGISTRY[key]
    except KeyError as error:
        available = ", ".join(sorted(set(PARTITIONER_REGISTRY)))
        raise ValueError(
            f"unknown partitioner {name!r}; available: {available}"
        ) from error
    return cls()


@dataclass(frozen=True)
class RoutedBucket:
    """The slice of one stream bucket routed to one shard.

    Attributes
    ----------
    shard_id:
        The receiving shard.
    elements:
        The routed elements in stream order — home elements interleaved with
        the foreign replicas whose references point at this shard.
    home_count / foreign_count:
        How many of ``elements`` are home vs foreign, for accounting.
    owners:
        Home-shard ownership of every routed element and of every element
        they reference (when known).  Populated only on request
        (``route_bucket(..., with_owners=True)``): the process backend
        replays this map into the remote worker so its home filter agrees
        with the planner; in-process backends share the planner directly and
        skip the bookkeeping.
    """

    shard_id: int
    elements: Tuple[SocialElement, ...]
    home_count: int
    foreign_count: int
    owners: Dict[int, int] = field(default_factory=dict)


class ShardPlanner:
    """Owns the partitioning strategy and the element → shard assignments."""

    def __init__(
        self,
        num_shards: int,
        strategy: Union[str, PartitionStrategy] = "hash",
    ) -> None:
        require_positive(num_shards, "num_shards")
        self._num_shards = int(num_shards)
        if isinstance(strategy, PartitionStrategy):
            self._strategy = strategy
        else:
            self._strategy = make_partitioner(strategy)
        self._owners: Dict[int, int] = {}
        # Last post/reference time per assigned element, mirroring the
        # windows' ``t_e``; lets :meth:`trim_inactive` bound the ownership
        # table on endless streams.
        self._last_activity: Dict[int, int] = {}

    # -- metadata ----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards the planner routes to."""
        return self._num_shards

    @property
    def strategy(self) -> PartitionStrategy:
        """The partitioning strategy in use."""
        return self._strategy

    @property
    def assigned_count(self) -> int:
        """Number of elements assigned so far."""
        return len(self._owners)

    def owner(self, element_id: int) -> Optional[int]:
        """Home shard of an already-assigned element (None when unseen)."""
        return self._owners.get(element_id)

    def is_home(self, shard_id: int, element_id: int) -> bool:
        """Whether the element's home shard is ``shard_id``."""
        return self._owners.get(element_id) == shard_id

    def owners_snapshot(self) -> Dict[int, int]:
        """A copy of the element → home-shard table.

        Used to reseed remote workers' home filters on restore and by the
        rebalancer to re-home per-element state.
        """
        return dict(self._owners)

    def shard_sizes(self) -> Tuple[int, ...]:
        """Elements assigned to each shard (cumulative, expiry ignored)."""
        sizes = [0] * self._num_shards
        for shard in self._owners.values():
            sizes[shard] += 1
        return tuple(sizes)

    # -- assignment and routing -----------------------------------------------------

    def assign(self, element: SocialElement) -> int:
        """Assign (or look up) the home shard of an element."""
        element_id = element.element_id
        self._last_activity[element_id] = max(
            element.timestamp, self._last_activity.get(element_id, element.timestamp)
        )
        existing = self._owners.get(element_id)
        if existing is not None:
            return existing
        shard = self._strategy.assign(element, self._num_shards)
        if not 0 <= shard < self._num_shards:
            raise ValueError(
                f"strategy {self._strategy.name!r} returned shard {shard} "
                f"outside 0..{self._num_shards - 1}"
            )
        self._owners[element_id] = shard
        return shard

    def trim_inactive(self, cutoff: int) -> int:
        """Drop ownership of elements whose last activity predates ``cutoff``.

        Safe when ``cutoff`` trails the shards' archive horizon: such
        elements are inactive on every shard *and* already trimmed from
        every archive, so a later reference to them is dangling everywhere —
        exactly the references routing ignores anyway.  Returns the number
        of entries dropped.
        """
        stale = [
            element_id
            for element_id, last_activity in self._last_activity.items()
            if last_activity < cutoff
        ]
        for element_id in stale:
            self._owners.pop(element_id, None)
            del self._last_activity[element_id]
        return len(stale)

    # -- checkpoint state -------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of ownership and strategy state."""
        return {
            "num_shards": self._num_shards,
            "strategy": self._strategy.name,
            "strategy_state": self._strategy.state_dict(),
            "owners": sorted(self._owners.items()),
            "last_activity": sorted(self._last_activity.items()),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this planner."""
        if int(state["num_shards"]) != self._num_shards:
            raise ValueError(
                f"checkpoint was taken with {state['num_shards']} shards, the "
                f"planner is configured for {self._num_shards}"
            )
        if str(state["strategy"]) != self._strategy.name:
            raise ValueError(
                f"checkpoint used partitioner {state['strategy']!r}, the planner "
                f"is configured with {self._strategy.name!r}"
            )
        self._strategy.restore_state(state["strategy_state"])
        self._owners = {int(eid): int(shard) for eid, shard in state["owners"]}
        self._last_activity = {
            int(eid): int(time) for eid, time in state["last_activity"]
        }

    def route_bucket(
        self, elements: Sequence[SocialElement], with_owners: bool = False
    ) -> Tuple[RoutedBucket, ...]:
        """Split one stream bucket into per-shard routed buckets.

        Every element goes to its home shard; it is additionally replicated
        to the home shard of each element it references (so follower edges —
        and with them the influence scores — are accounted exactly where the
        parent's ranked-list tuples live).  References to elements never
        observed by the planner are ignored, exactly as the single-node
        window ignores dangling references.  Stream order is preserved
        within each routed bucket.  ``with_owners`` additionally fills each
        bucket's ownership table (needed only by out-of-process workers).
        """
        routed: List[List[SocialElement]] = [[] for _ in range(self._num_shards)]
        home_counts = [0] * self._num_shards
        owners: List[Dict[int, int]] = [{} for _ in range(self._num_shards)]
        for element in elements:
            home = self.assign(element)
            targets = {home}
            for parent_id in element.references:
                parent_owner = self._owners.get(parent_id)
                if parent_owner is not None:
                    targets.add(parent_owner)
                    # A reference keeps the parent alive on its home shard;
                    # mirror that in the trim bookkeeping.
                    self._last_activity[parent_id] = max(
                        self._last_activity.get(parent_id, element.timestamp),
                        element.timestamp,
                    )
            for shard in targets:
                routed[shard].append(element)
                if with_owners:
                    table = owners[shard]
                    table[element.element_id] = home
                    for parent_id in element.references:
                        parent_owner = self._owners.get(parent_id)
                        if parent_owner is not None:
                            table[parent_id] = parent_owner
            home_counts[home] += 1
        return tuple(
            RoutedBucket(
                shard_id=shard,
                elements=tuple(routed[shard]),
                home_count=home_counts[shard],
                foreign_count=len(routed[shard]) - home_counts[shard],
                owners=owners[shard],
            )
            for shard in range(self._num_shards)
        )
