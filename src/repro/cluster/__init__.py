"""repro.cluster — sharded parallel execution for k-SIR processing.

The cluster layer partitions the stream across ``N`` shards, each owning a
partition-restricted :class:`~repro.core.processor.KSIRProcessor`, and keeps
sharding *transparent*: queries return exactly the single-node answers.

* :class:`ShardPlanner` + partitioning strategies (``hash``,
  ``round-robin``, ``load-balanced``) — element → home-shard assignment and
  the routing of followers to their parents' shards (exact influence);
* :class:`ShardWorker` / :class:`CandidatePool` — per-shard ingestion and
  bounded candidate export for scatter-gather queries;
* :class:`ClusterCoordinator` / :class:`ClusterConfig` — parallel fan-out
  ingestion and the merged final submodular selection;
* :class:`TransportBackend` / :func:`register_transport` — the formal
  fan-out protocol and its registry (built-ins: ``serial``, ``thread``,
  ``pipe``, ``shm``); third-party transports plug in under new names;
* :func:`merge_candidate_pools` / :class:`MergedCandidateContext` — exact
  evaluation substrate over the candidate union;
* :func:`verify_equivalence` — replay-and-compare harness proving sharded
  answers match single-node answers.
"""

from repro.cluster.coordinator import (
    BACKEND_CHOICES,
    TRANSPORT_CHOICES,
    ClusterConfig,
    ClusterCoordinator,
)
from repro.cluster.merge import MergedCandidateContext, merge_candidate_pools
from repro.cluster.partition import (
    PARTITIONER_REGISTRY,
    HashPartitioner,
    LoadBalancedPartitioner,
    PartitionStrategy,
    RoundRobinPartitioner,
    RoutedBucket,
    ShardPlanner,
    make_partitioner,
)
from repro.cluster.transport import (
    TransportBackend,
    canonical_transport_name,
    create_transport,
    register_transport,
    transport_names,
)
from repro.cluster.verify import EquivalenceReport, QueryComparison, verify_equivalence
from repro.cluster.worker import CandidatePool, ShardStats, ShardWorker

__all__ = [
    "BACKEND_CHOICES",
    "CandidatePool",
    "ClusterConfig",
    "ClusterCoordinator",
    "EquivalenceReport",
    "HashPartitioner",
    "LoadBalancedPartitioner",
    "MergedCandidateContext",
    "PARTITIONER_REGISTRY",
    "PartitionStrategy",
    "QueryComparison",
    "RoundRobinPartitioner",
    "RoutedBucket",
    "ShardPlanner",
    "ShardStats",
    "ShardWorker",
    "TRANSPORT_CHOICES",
    "TransportBackend",
    "canonical_transport_name",
    "create_transport",
    "make_partitioner",
    "merge_candidate_pools",
    "register_transport",
    "transport_names",
    "verify_equivalence",
]
