"""Merging per-shard candidate pools into one exact evaluation substrate.

The coordinator gathers one :class:`~repro.cluster.worker.CandidatePool` per
shard and needs to run an unmodified k-SIR algorithm over their union.  Two
structures make that possible:

* :class:`MergedCandidateContext` — a :class:`~repro.core.scoring.ScoringContext`
  whose *ground set* (``active_ids``) is exactly the candidate union, while
  its profile table additionally holds the candidates' followers.  Marginal
  gains computed against it equal the single-node values because influence
  gains only ever read follower profiles, and the home shard exports the
  complete follower set of each of its candidates.
* a merged :class:`~repro.core.ranked_list.RankedListIndex` — rebuilt from
  the shards' stored ``δ_i(e)`` tuples via the raw loader, so index-driven
  algorithms (MTTS, MTTD, top-k) traverse the union in the same descending
  order the single-node index would produce restricted to the candidates.

Candidate sets are disjoint across shards (each element's tuples live only on
its home shard), so the merge is a plain union.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import ElementProfile, ScoringConfig, ScoringContext
from repro.cluster.worker import CandidatePool


class MergedCandidateContext(ScoringContext):
    """A scoring snapshot whose ground set is the merged candidate union.

    Batch algorithms (greedy, CELF, SieveStreaming) enumerate
    ``context.active_ids`` as their ground set, so the merged context
    restricts it to the candidates; the profile table keeps the follower
    profiles too, which is what makes every marginal-gain evaluation exact.
    """

    def __init__(
        self,
        profiles: Dict[int, ElementProfile],
        followers: Dict[int, Tuple[int, ...]],
        config: ScoringConfig,
        candidate_ids: Sequence[int],
        time: Optional[int] = None,
    ) -> None:
        super().__init__(profiles, followers, config, time=time)
        self._candidate_ids = tuple(candidate_ids)

    @property
    def active_ids(self) -> Tuple[int, ...]:
        """The merged candidate union (the selection ground set)."""
        return self._candidate_ids

    @property
    def active_count(self) -> int:
        """Number of candidates in the merged union."""
        return len(self._candidate_ids)


def merge_candidate_pools(
    pools: Sequence[CandidatePool],
    num_topics: int,
    config: ScoringConfig,
    time: Optional[int] = None,
    build_index: bool = True,
) -> Tuple[MergedCandidateContext, Optional[RankedListIndex]]:
    """Union the per-shard pools into a context (and optionally an index).

    Candidates are interleaved across pools in descending stored-score
    retrieval order by the merged index itself; the context's candidate
    order follows the pools' export order (shard by shard), which only
    matters for deterministic iteration, not for correctness.
    """
    profiles: Dict[int, ElementProfile] = {}
    followers: Dict[int, Tuple[int, ...]] = {}
    candidate_ids = []
    index = RankedListIndex(num_topics, config) if build_index else None

    for pool in pools:
        for element_id, profile in pool.profiles.items():
            # The shm transport ships follower profiles *stripped* (topic
            # probabilities only — all influence evaluation reads of a
            # follower).  The same element can be a stripped follower in one
            # pool and a full candidate in another; never let the stripped
            # copy shadow the full one.
            existing = profiles.get(element_id)
            if (
                existing is not None
                and existing.word_weights
                and not profile.word_weights
            ):
                continue
            profiles[element_id] = profile
        for element_id in pool.candidate_ids:
            candidate_ids.append(element_id)
            followers[element_id] = pool.followers[element_id]
            if index is not None:
                index.insert_scores(
                    element_id,
                    pool.scores[element_id],
                    activity_time=pool.activity[element_id],
                )

    context = MergedCandidateContext(
        profiles=profiles,
        followers=followers,
        config=config,
        candidate_ids=candidate_ids,
        time=time,
    )
    return context, index
