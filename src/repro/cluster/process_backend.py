"""One-OS-process-per-shard fan-out (``ClusterConfig(backend="process")``).

The thread backend shares the interpreter, so CPU-bound ingestion serialises
on the GIL; this backend gives each shard its own process and communicates
over pipes.  Protocol per command: the coordinator scatters a message to
every shard pipe, then gathers every reply — so shards genuinely overlap on
multi-core machines.

State that must agree between the planner (coordinator side) and the home
filters (shard side) is the element → home-shard table: each
:class:`~repro.cluster.partition.RoutedBucket` carries the ownership entries
for its routed elements and their references, and the remote worker replays
them into a local table before ingesting.

Costs to be aware of: per-bucket pickling of the routed elements and, at
startup, pickling of the topic model into every shard process.  The backend
is therefore most useful when per-element processing dominates IPC — exactly
the heavy-traffic regime the ROADMAP targets.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.processor import ProcessorConfig
from repro.cluster.partition import RoutedBucket
from repro.cluster.worker import CandidatePool, ShardStats, ShardWorker
from repro.topics.model import TopicModel


def _shard_main(conn, shard_id: int, topic_model: TopicModel, config: ProcessorConfig) -> None:
    """The shard process loop: execute commands until ``close`` arrives."""
    owners: Dict[int, int] = {}
    # Bucket end time each ownership entry was last (re)shipped; used to
    # trim the table with the archive horizon, mirroring the planner's
    # trim_inactive (shipping times trail true activity times, so the
    # remote table is only ever trimmed later than the planner's — safe).
    owner_seen: Dict[int, int] = {}
    worker = ShardWorker(
        shard_id,
        topic_model,
        config,
        home_filter=lambda element_id: owners.get(element_id) == shard_id,
    )
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:
            break
        try:
            if command == "ingest":
                elements, end_time, owner_updates, home_count = payload
                owners.update(owner_updates)
                for element_id in owner_updates:
                    owner_seen[element_id] = end_time
                worker.ingest(elements, end_time, home_count=home_count)
                cutoff = end_time - 8 * config.window_length
                if cutoff > 0:
                    for element_id in [
                        eid for eid, seen in owner_seen.items() if seen < cutoff
                    ]:
                        del owner_seen[element_id]
                        owners.pop(element_id, None)
                conn.send(("ok", None))
            elif command == "export":
                vector, budget = payload
                conn.send(("ok", worker.export_candidates(vector, budget)))
            elif command == "dirty":
                conn.send(("ok", worker.take_dirty_topics()))
            elif command == "active":
                conn.send(("ok", worker.home_active_count))
            elif command == "stats":
                conn.send(("ok", worker.stats()))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as error:  # surface shard failures to the coordinator
            conn.send(("error", f"{type(error).__name__}: {error}"))
    conn.close()


class ProcessFanout:
    """Scatter-gather over one worker process per shard."""

    def __init__(
        self,
        num_shards: int,
        topic_model: TopicModel,
        config: ProcessorConfig,
    ) -> None:
        context = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._connections = []
        self._processes = []
        for shard_id in range(num_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_shard_main,
                args=(child_conn, shard_id, topic_model, config),
                daemon=True,
                name=f"ksir-shard-{shard_id}",
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._closed = False
        # The serving engine evaluates standing queries from a thread pool,
        # so exports can arrive concurrently; the pipe protocol is strictly
        # request/reply per shard and must not interleave across threads.
        self._protocol_lock = threading.Lock()

    # -- protocol helpers -----------------------------------------------------------

    def _scatter_gather(self, messages: Sequence[Tuple[str, object]]) -> List[object]:
        """Send one message per shard, then collect every reply."""
        with self._protocol_lock:
            for conn, message in zip(self._connections, messages):
                conn.send(message)
            # Drain every pipe before surfacing failures: raising mid-gather
            # would leave queued replies that desync all later commands.
            replies: List[object] = []
            failures: List[str] = []
            for shard_id, conn in enumerate(self._connections):
                status, value = conn.recv()
                if status != "ok":
                    failures.append(f"shard {shard_id} failed: {value}")
                    replies.append(None)
                else:
                    replies.append(value)
        if failures:
            raise RuntimeError("; ".join(failures))
        return replies

    def _broadcast(self, command: str, payload: object = None) -> List[object]:
        return self._scatter_gather([(command, payload)] * len(self._connections))

    # -- the fan-out interface (mirrors _LocalFanout) ----------------------------------

    def ingest(self, routed: Sequence[RoutedBucket], end_time: int) -> None:
        messages = []
        for bucket in sorted(routed, key=lambda b: b.shard_id):
            messages.append(
                ("ingest", (bucket.elements, end_time, bucket.owners, bucket.home_count))
            )
        self._scatter_gather(messages)

    def export(self, vector: np.ndarray, budget: Optional[int]) -> List[CandidatePool]:
        return self._broadcast("export", (vector, budget))

    def take_dirty_topics(self) -> Set[int]:
        dirty: Set[int] = set()
        for topics in self._broadcast("dirty"):
            dirty.update(topics)
        return dirty

    def home_active_counts(self) -> List[int]:
        return self._broadcast("active")

    def stats(self) -> List[ShardStats]:
        return self._broadcast("stats")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._connections:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
