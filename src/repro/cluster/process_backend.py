"""One-OS-process-per-shard fan-out (``ClusterConfig(backend="process")``).

The thread backend shares the interpreter, so CPU-bound ingestion serialises
on the GIL; this backend gives each shard its own process and communicates
over pipes.  Protocol per command: the coordinator scatters a message to
every shard pipe, then gathers every reply — so shards genuinely overlap on
multi-core machines.

State that must agree between the planner (coordinator side) and the home
filters (shard side) is the element → home-shard table: each
:class:`~repro.cluster.partition.RoutedBucket` carries the ownership entries
for its routed elements and their references, and the remote worker replays
them into a local table before ingesting.

Costs to be aware of: per-bucket pickling of the routed elements and, at
startup, pickling of the topic model into every shard process.  The backend
is therefore most useful when per-element processing dominates IPC — exactly
the heavy-traffic regime the ROADMAP targets.

Liveness and recovery
---------------------
A worker process can die (OOM kill, crash, fault injection).  The fan-out
detects broken pipes during any command — and on demand via :meth:`ping` —
and raises :exc:`ShardFailure` naming the dead shards instead of a generic
protocol error.  Failures are *sticky*: once a shard is marked dead every
command refuses to run until :meth:`restart_shard` replaces the process, at
which point `repro.ha`'s supervisor restores the shard from the latest
checkpoint and replays its WAL gap.  Checkpointing round-trips through the
worker processes via the ``state`` / ``restore`` commands, so the process
backend is fully checkpointable.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.processor import ProcessorConfig
from repro.cluster.partition import RoutedBucket
from repro.cluster.worker import CandidatePool, ShardStats, ShardWorker
from repro.topics.model import TopicModel


class ShardFailure(RuntimeError):
    """One or more shard worker processes died mid-protocol.

    Carries the dead shard ids so a supervisor can restart exactly those
    workers, restore them from the latest checkpoint and replay the gap.

    ``pre_send`` distinguishes the two failure points, which need different
    recovery: ``True`` means the fan-out *refused* the command because a
    shard was already marked dead — nothing was sent anywhere, so the
    command must be retried in full after recovery.  ``False`` (the
    in-band case) means the live shards have already *completed* the
    command (the fan-out drains every pipe before raising), so only the
    dead shards need it replayed — which is what makes per-shard replay
    sound.
    """

    def __init__(
        self, shard_ids: Sequence[int], detail: str = "", pre_send: bool = False
    ) -> None:
        self.shard_ids: Tuple[int, ...] = tuple(sorted(set(int(s) for s in shard_ids)))
        self.pre_send = bool(pre_send)
        message = f"shard worker(s) {list(self.shard_ids)} died"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


def _shard_main(conn, shard_id: int, topic_model: TopicModel, config: ProcessorConfig) -> None:
    """The shard process loop: execute commands until ``close`` arrives."""
    owners: Dict[int, int] = {}
    # Bucket end time each ownership entry was last (re)shipped; used to
    # trim the table with the archive horizon, mirroring the planner's
    # trim_inactive (shipping times trail true activity times, so the
    # remote table is only ever trimmed later than the planner's — safe).
    owner_seen: Dict[int, int] = {}
    # Fault-injection knobs (repro.ha.chaos): a positive ping delay makes
    # the worker look hung to heartbeat probes without killing it.
    chaos: Dict[str, float] = {"ping_delay": 0.0}
    worker = ShardWorker(
        shard_id,
        topic_model,
        config,
        home_filter=lambda element_id: owners.get(element_id) == shard_id,
    )
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:
            break
        try:
            if command == "ingest":
                elements, end_time, owner_updates, home_count = payload
                owners.update(owner_updates)
                for element_id in owner_updates:
                    owner_seen[element_id] = end_time
                worker.ingest(elements, end_time, home_count=home_count)
                cutoff = end_time - 8 * config.window_length
                if cutoff > 0:
                    for element_id in [
                        eid for eid, seen in owner_seen.items() if seen < cutoff
                    ]:
                        del owner_seen[element_id]
                        owners.pop(element_id, None)
                conn.send(("ok", None))
            elif command == "export":
                vector, budget = payload
                conn.send(("ok", worker.export_candidates(vector, budget)))
            elif command == "dirty":
                conn.send(("ok", worker.take_dirty_topics()))
            elif command == "active":
                conn.send(("ok", worker.home_active_count))
            elif command == "stats":
                conn.send(("ok", worker.stats()))
            elif command == "ping":
                if chaos["ping_delay"] > 0.0:
                    time.sleep(chaos["ping_delay"])
                conn.send(("ok", shard_id))
            elif command == "state":
                conn.send(("ok", worker.state_dict()))
            elif command == "restore":
                worker_state, owner_table, owner_time = payload
                worker.restore_state(worker_state)
                # ``owners`` is captured by the home filter: mutate in place.
                owners.clear()
                owners.update({int(eid): int(home) for eid, home in owner_table.items()})
                owner_seen = {eid: int(owner_time) for eid in owners}
                conn.send(("ok", None))
            elif command == "chaos":
                chaos.update({str(key): float(value) for key, value in payload.items()})
                conn.send(("ok", None))
            elif command == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as error:  # surface shard failures to the coordinator
            conn.send(("error", f"{type(error).__name__}: {error}"))
    conn.close()


class ProcessFanout:
    """Scatter-gather over one worker process per shard."""

    #: Remote workers cannot consult the coordinator's planner: routed
    #: buckets must carry the ownership entries their home filters replay.
    ships_owners = True

    def __init__(
        self,
        num_shards: int,
        topic_model: TopicModel,
        config: ProcessorConfig,
    ) -> None:
        self._context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._model = topic_model
        self._config = config
        self._connections = []
        self._processes = []
        for shard_id in range(num_shards):
            connection, process = self._spawn(shard_id)
            self._connections.append(connection)
            self._processes.append(process)
        self._closed = False
        self._dead: Set[int] = set()
        # The serving engine evaluates standing queries from a thread pool,
        # so exports can arrive concurrently; the pipe protocol is strictly
        # request/reply per shard and must not interleave across threads.
        self._protocol_lock = threading.Lock()

    def _spawn(self, shard_id: int):
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_shard_main,
            args=(child_conn, shard_id, self._model, self._config),
            daemon=True,
            name=f"ksir-shard-{shard_id}",
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    # -- liveness ---------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shard worker processes."""
        return len(self._connections)

    @property
    def dead_shards(self) -> Tuple[int, ...]:
        """Shards currently marked dead (sticky until :meth:`restart_shard`)."""
        return tuple(sorted(self._dead))

    def ping(self, timeout: float = 1.0) -> List[bool]:
        """Probe every shard; ``True`` per shard that replies within ``timeout``.

        A shard that fails to reply in time is marked dead: its late reply
        (if any) can no longer be matched to a request, so the only safe
        continuation is a restart.  Already-dead shards are reported without
        being re-probed.
        """
        with self._protocol_lock:
            probed: List[int] = []
            for shard_id, conn in enumerate(self._connections):
                if shard_id in self._dead:
                    continue
                try:
                    conn.send(("ping", None))
                    probed.append(shard_id)
                except (BrokenPipeError, OSError):
                    self._dead.add(shard_id)
            deadline = time.monotonic() + max(0.0, timeout)
            for shard_id in probed:
                conn = self._connections[shard_id]
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    if not conn.poll(remaining):
                        self._dead.add(shard_id)
                        continue
                    status, _ = conn.recv()
                    if status != "ok":
                        self._dead.add(shard_id)
                except (EOFError, OSError):
                    self._dead.add(shard_id)
            return [shard_id not in self._dead for shard_id in range(self.num_shards)]

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill a shard worker process (fault injection).

        The shard is *not* marked dead here: detection is the supervisor's
        job (heartbeat or in-band pipe failure), which is exactly what the
        chaos harness exercises.
        """
        self._processes[shard_id].kill()

    def set_chaos(self, shard_id: int, **knobs: float) -> None:
        """Set fault-injection knobs on one worker (e.g. ``ping_delay=2.0``)."""
        self._request(shard_id, "chaos", dict(knobs))

    def restart_shard(self, shard_id: int) -> None:
        """Replace a dead worker process with a fresh, empty one.

        The caller is responsible for restoring state into the new worker
        (``restore_shard``) and replaying the WAL gap; `repro.ha`'s
        supervisor packages that sequence.
        """
        with self._protocol_lock:
            process = self._processes[shard_id]
            if process.is_alive():
                process.kill()
            process.join(timeout=5.0)
            try:
                self._connections[shard_id].close()
            except OSError:
                pass
            connection, process = self._spawn(shard_id)
            self._connections[shard_id] = connection
            self._processes[shard_id] = process
            self._dead.discard(shard_id)

    # -- protocol helpers -----------------------------------------------------------

    def _check_dead_locked(self) -> None:
        if self._dead:
            raise ShardFailure(
                self._dead,
                "restart_shard() and restore before issuing commands",
                pre_send=True,
            )

    def _scatter_gather(self, messages: Sequence[Tuple[str, object]]) -> List[object]:
        """Send one message per shard, then collect every reply."""
        with self._protocol_lock:
            # Known-dead shards make any fan-out command unsound (their
            # state is behind); refuse before mutating the live shards.
            self._check_dead_locked()
            newly_dead: Set[int] = set()
            for shard_id, (conn, message) in enumerate(
                zip(self._connections, messages)
            ):
                try:
                    conn.send(message)
                except (BrokenPipeError, OSError):
                    newly_dead.add(shard_id)
            # Drain every pipe before surfacing failures: raising mid-gather
            # would leave queued replies that desync all later commands.
            replies: List[object] = []
            failures: List[str] = []
            for shard_id, conn in enumerate(self._connections):
                if shard_id in newly_dead:
                    replies.append(None)
                    continue
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    newly_dead.add(shard_id)
                    replies.append(None)
                    continue
                if status != "ok":
                    failures.append(f"shard {shard_id} failed: {value}")
                    replies.append(None)
                else:
                    replies.append(value)
            self._dead.update(newly_dead)
        if newly_dead:
            raise ShardFailure(newly_dead)
        if failures:
            raise RuntimeError("; ".join(failures))
        return replies

    def _request(self, shard_id: int, command: str, payload: object = None) -> object:
        """Strict request/reply with a single shard."""
        with self._protocol_lock:
            if shard_id in self._dead:
                raise ShardFailure([shard_id], "shard is marked dead", pre_send=True)
            conn = self._connections[shard_id]
            try:
                conn.send((command, payload))
                status, value = conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                self._dead.add(shard_id)
                raise ShardFailure([shard_id]) from None
            if status != "ok":
                raise RuntimeError(f"shard {shard_id} failed: {value}")
            return value

    def _broadcast(self, command: str, payload: object = None) -> List[object]:
        return self._scatter_gather([(command, payload)] * len(self._connections))

    # -- the fan-out interface (mirrors _LocalFanout) ----------------------------------

    def ingest(self, routed: Sequence[RoutedBucket], end_time: int) -> None:
        messages = []
        for bucket in sorted(routed, key=lambda b: b.shard_id):
            messages.append(
                ("ingest", (bucket.elements, end_time, bucket.owners, bucket.home_count))
            )
        self._scatter_gather(messages)

    def export(self, vector: np.ndarray, budget: Optional[int]) -> List[CandidatePool]:
        return self._broadcast("export", (vector, budget))

    def take_dirty_topics(self) -> Set[int]:
        dirty: Set[int] = set()
        for topics in self._broadcast("dirty"):
            dirty.update(topics)
        return dirty

    def home_active_counts(self) -> List[int]:
        return self._broadcast("active")

    def stats(self) -> List[ShardStats]:
        return self._broadcast("stats")

    # -- checkpoint state over the pipes ----------------------------------------------

    def states(self) -> List[Dict[str, object]]:
        """Every worker's ``state_dict`` gathered over the pipes."""
        return self._broadcast("state")

    def shard_state(self, shard_id: int) -> Dict[str, object]:
        """One worker's ``state_dict``."""
        return self._request(shard_id, "state")

    def restore_shard(
        self,
        shard_id: int,
        state: Mapping[str, object],
        owners: Mapping[int, int],
        owner_time: int,
    ) -> None:
        """Restore one worker from a checkpointed shard state.

        ``owners`` is the planner's ownership table at checkpoint time (the
        worker's home filter consults it); entries for elements homed on
        other shards are harmless and keep foreign-replica filtering exact.
        """
        self._request(shard_id, "restore", (dict(state), dict(owners), int(owner_time)))

    def restore_all(
        self,
        states: Sequence[Mapping[str, object]],
        owners: Mapping[int, int],
        owner_time: int,
    ) -> None:
        """Restore every worker (one checkpointed state per shard)."""
        if len(states) != self.num_shards:
            raise ValueError(
                f"checkpoint holds {len(states)} shards, the fan-out "
                f"runs {self.num_shards}"
            )
        payload = (dict(owners), int(owner_time))
        self._scatter_gather(
            [("restore", (dict(state), *payload)) for state in states]
        )

    def ingest_shard(self, bucket: RoutedBucket, end_time: int) -> None:
        """Ingest one routed bucket into a single shard (WAL gap replay)."""
        self._request(
            bucket.shard_id,
            "ingest",
            (bucket.elements, end_time, bucket.owners, bucket.home_count),
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard_id, conn in enumerate(self._connections):
            if shard_id in self._dead:
                continue
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for shard_id, conn in enumerate(self._connections):
            if shard_id not in self._dead:
                try:
                    conn.recv()
                except (EOFError, OSError):
                    pass
            conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
