"""Shared-memory segment management for the zero-copy cluster transport.

The pipe transport pays a *replication tax*: every routed bucket is pickled
into each shard process and every candidate pool is pickled back.  The
columnar store (PR 5) already keeps the hot per-element state — timestamps,
last-activity times, the topic-profile matrix ``P`` — on contiguous NumPy
arrays, so the structural fix is to back those arrays with OS shared memory
and let shard workers *attach* them instead of receiving copies:

* :class:`SharedColumnArena` — the **coordinator-side owner** of a set of
  named array segments.  It creates every segment, hands out NumPy views,
  grows columns by allocating a new generation (the old one is retired and
  unlinked only after the worker confirmed the remap), and unlinks
  everything on close.
* :class:`ArenaView` — the **worker-side attachment**.  It never creates or
  unlinks segments; it maps whatever the current manifest names.  Because
  attach-only :class:`~multiprocessing.shared_memory.SharedMemory` instances
  are not registered with the ``resource_tracker``, a SIGKILLed worker can
  never leak a segment or emit tracker warnings — cleanup responsibility
  lives entirely with the coordinator process.
* :func:`pack_arrays` / :func:`unpack_arrays` — the fixed-layout codec used
  by the shm transport's ingest and export buffers: a sequence of arrays is
  written into one ``uint8`` region at aligned offsets, and the tiny header
  (name, dtype, shape per section) travels over the pipe as a control tuple.

Segment naming
--------------
Every segment is named ``{prefix}-{key}-g{generation}`` where the prefix is
``ksir-{session}-s{shard}`` and ``session`` is a per-fan-out random token.
On Linux the segments appear as ``/dev/shm/ksir-*``, which makes leaked
segments trivially scannable — :func:`scan_segments` is the hook the tests
and the CI teardown step use.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

#: Every segment name starts with this, so orphans are easy to find.
SEGMENT_NAMESPACE = "ksir"

#: Section offsets inside packed buffers are aligned to this many bytes.
_ALIGNMENT = 16

#: ``key → (segment_name, dtype_str, shape)`` — the wire form of an arena.
Manifest = Dict[str, Tuple[str, str, Tuple[int, ...]]]


class SegmentCapacityError(RuntimeError):
    """A packed payload does not fit the current buffer segment.

    Carries the number of bytes the payload needs so the coordinator can
    grow the segment to (at least) that size and retry.
    """

    def __init__(self, key: str, required_bytes: int) -> None:
        self.key = key
        self.required_bytes = int(required_bytes)
        super().__init__(
            f"segment {key!r} needs {required_bytes} bytes"
        )


def new_session_token() -> str:
    """A short random token that namespaces one fan-out's segments."""
    return secrets.token_hex(4)


def segment_prefix(session: str, shard_id: int) -> str:
    """The segment-name prefix of one shard's arena."""
    return f"{SEGMENT_NAMESPACE}-{session}-s{shard_id}"


def scan_segments(session: Optional[str] = None) -> List[str]:
    """Names of live ``ksir-*`` segments in ``/dev/shm`` (Linux only).

    With ``session`` the scan is restricted to that fan-out's segments.
    Used by the leak tests and the CI teardown step; returns an empty list
    on platforms without a ``/dev/shm`` tmpfs.
    """
    prefix = SEGMENT_NAMESPACE + "-" + (session + "-" if session else "")
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def packed_size(arrays: Sequence[Tuple[str, npt.NDArray]]) -> int:
    """Bytes :func:`pack_arrays` needs for the given sections."""
    offset = 0
    for _, array in arrays:
        offset = _aligned(offset) + array.nbytes
    return offset


def pack_arrays(
    buffer: npt.NDArray[np.uint8], arrays: Sequence[Tuple[str, npt.NDArray]]
) -> List[Tuple[str, str, Tuple[int, ...]]]:
    """Write ``arrays`` into ``buffer`` at aligned offsets; return the header.

    The header — ``(name, dtype_str, shape)`` per section, in order — is all
    a reader needs to reconstruct the views with :func:`unpack_arrays`; it is
    small enough to travel over a pipe as a control tuple.  Raises
    :class:`SegmentCapacityError` (naming no particular segment key) when
    the sections do not fit.
    """
    required = packed_size(arrays)
    if required > buffer.nbytes:
        raise SegmentCapacityError("<buffer>", required)
    offset = 0
    header: List[Tuple[str, str, Tuple[int, ...]]] = []
    for name, array in arrays:
        contiguous = np.ascontiguousarray(array)
        offset = _aligned(offset)
        raw = contiguous.view(np.uint8).reshape(-1)
        buffer[offset : offset + contiguous.nbytes] = raw
        header.append((name, contiguous.dtype.str, tuple(contiguous.shape)))
        offset += contiguous.nbytes
    return header


def unpack_arrays(
    buffer: npt.NDArray[np.uint8],
    header: Sequence[Tuple[str, str, Tuple[int, ...]]],
) -> Dict[str, npt.NDArray]:
    """Reconstruct the packed sections as views into ``buffer``.

    The returned arrays alias the shared buffer — copy anything that must
    outlive the current protocol exchange.
    """
    sections: Dict[str, npt.NDArray] = {}
    offset = 0
    for name, dtype_str, shape in header:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        offset = _aligned(offset)
        view = buffer[offset : offset + nbytes].view(dtype).reshape(shape)
        sections[name] = view
        offset += nbytes
    return sections


class SharedColumnArena:
    """Coordinator-owned set of named shared-memory array segments.

    One arena backs one shard: its store columns (``ids``/``ts``/``act``/
    ``inw``/``prof``/``pset``), the ingest buffer the coordinator writes and
    the export buffer the worker writes.  The arena is the single place
    where segments are created and unlinked; workers only ever attach via
    :class:`ArenaView`, which is what makes SIGKILL-safe cleanup possible.
    """

    def __init__(self, session: str, shard_id: int) -> None:
        self._prefix = segment_prefix(session, shard_id)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, npt.NDArray] = {}
        self._meta: Manifest = {}
        self._generations: Dict[str, int] = {}
        # Segments replaced by grow(); unlinked once the worker confirmed
        # the remap (unlink_retired) or at close time, whichever first.
        self._retired: List[shared_memory.SharedMemory] = []
        self._closed = False

    # -- segment lifecycle -------------------------------------------------------

    def create(
        self,
        key: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        fill: Optional[object] = None,
    ) -> npt.NDArray:
        """Create the segment backing column ``key`` and return its view."""
        if key in self._segments:
            raise ValueError(f"segment key {key!r} already exists")
        self._generations[key] = 0
        return self._allocate(key, shape, np.dtype(dtype), fill)

    def _allocate(
        self,
        key: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        fill: Optional[object],
    ) -> npt.NDArray:
        name = f"{self._prefix}-{key}-g{self._generations[key]}"
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        array: npt.NDArray = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        if fill is not None:
            array[...] = fill
        self._segments[key] = segment
        self._arrays[key] = array
        self._meta[key] = (name, dtype.str, tuple(shape))
        return array

    def grow(
        self,
        key: str,
        shape: Tuple[int, ...],
        copy: bool = False,
        fill: Optional[object] = None,
    ) -> npt.NDArray:
        """Replace ``key`` with a larger next-generation segment.

        With ``copy=True`` the old content's overlapping prefix is copied
        into the new segment (store columns keep live state across a grow);
        buffer segments pass ``copy=False`` since their content is per-call
        scratch.  The old segment is *retired*, not unlinked: a worker may
        still be attached to it until it confirms the remap — call
        :meth:`unlink_retired` at the next safe point.
        """
        old_segment = self._segments[key]
        old_array = self._arrays[key]
        self._generations[key] += 1
        array = self._allocate(key, shape, old_array.dtype, fill)
        if copy:
            if old_array.ndim == 1:
                array[: old_array.shape[0]] = old_array
            else:
                array[: old_array.shape[0], ...] = old_array
        self._retired.append(old_segment)
        return array

    def unlink_retired(self) -> None:
        """Unlink segments replaced by :meth:`grow` (worker confirmed remap)."""
        for segment in self._retired:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
        self._retired.clear()

    # -- access ------------------------------------------------------------------

    def array(self, key: str) -> npt.NDArray:
        """The current NumPy view of column ``key``."""
        return self._arrays[key]

    def manifest(self) -> Manifest:
        """``key → (segment_name, dtype, shape)`` for the current generation."""
        return dict(self._meta)

    @property
    def prefix(self) -> str:
        """The segment-name prefix of this arena."""
        return self._prefix

    def close(self, unlink: bool = True) -> None:
        """Release every mapping; with ``unlink`` also remove the segments."""
        if self._closed:
            return
        self._closed = True
        # Views alias the mappings; drop them before closing the segments.
        self._arrays.clear()
        self.unlink_retired()
        for segment in self._segments.values():
            try:
                segment.close()
                if unlink:
                    segment.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._meta.clear()


class ArenaView:
    """Worker-side attachment to a :class:`SharedColumnArena`'s segments.

    Attach-only: segments are mapped by the names a manifest carries and
    never created or unlinked here.  :meth:`refresh` re-attaches exactly the
    keys whose segment name changed (a grow on the coordinator side) and
    reports them, so the store can adopt the new columns.
    """

    def __init__(self, manifest: Manifest) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, npt.NDArray] = {}
        self._names: Dict[str, str] = {}
        self.refresh(manifest)

    def refresh(self, manifest: Manifest) -> Tuple[str, ...]:
        """Attach new/changed segments; returns the keys that were remapped."""
        changed: List[str] = []
        for key, (name, dtype_str, shape) in manifest.items():
            if self._names.get(key) == name:
                continue
            segment = shared_memory.SharedMemory(name=name, create=False)
            array: npt.NDArray = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype_str), buffer=segment.buf
            )
            old = self._segments.get(key)
            self._segments[key] = segment
            self._arrays[key] = array
            self._names[key] = name
            changed.append(key)
            if old is not None:
                old.close()
        return tuple(changed)

    def array(self, key: str) -> npt.NDArray:
        """The mapped NumPy view of column ``key``."""
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def keys(self) -> Iterator[str]:
        """The mapped column keys."""
        return iter(self._arrays)

    def close(self) -> None:
        """Drop every mapping (never unlinks — the coordinator owns that)."""
        self._arrays.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except OSError:
                pass
        self._segments.clear()
        self._names.clear()


def column_spec(
    capacity: int, num_topics: int
) -> Mapping[str, Tuple[Tuple[int, ...], np.dtype, Optional[object]]]:
    """The store-column layout of one shard arena.

    ``key → (shape, dtype, fill)`` for the six :class:`ElementStore`
    columns; shared between the coordinator (create/grow) and the worker
    (adopt), so the two sides can never disagree on the layout.
    """
    no_activity = np.iinfo(np.int64).min
    return {
        "ids": ((capacity,), np.dtype(np.int64), -1),
        "ts": ((capacity,), np.dtype(np.int64), 0),
        "act": ((capacity,), np.dtype(np.int64), no_activity),
        "inw": ((capacity,), np.dtype(np.bool_), False),
        "prof": ((capacity, num_topics), np.dtype(np.float64), 0.0),
        "pset": ((capacity,), np.dtype(np.bool_), False),
    }


#: The arena keys holding store columns (everything else is a buffer).
COLUMN_KEYS: Tuple[str, ...] = ("ids", "ts", "act", "inw", "prof", "pset")

#: Arena key of the coordinator-written ingest buffer.
INGEST_BUFFER_KEY = "ing"

#: Arena key of the worker-written export (candidate pool) buffer.
EXPORT_BUFFER_KEY = "out"

#: Initial size of the ingest/export buffers (grown on demand).
INITIAL_BUFFER_BYTES = 1 << 20
