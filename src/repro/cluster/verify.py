"""Equivalence checking between sharded and single-node execution.

The cluster's contract is that sharding is *transparent*: whenever no shard
truncates its candidate export (the ε-derived budget covers the shard's
positive-weight support — see :mod:`repro.cluster.coordinator`), the
coordinator returns the same elements with the same score as one
:class:`~repro.core.processor.KSIRProcessor` owning the whole window.
:func:`verify_equivalence` replays a stream through both, answers the same
queries on both sides and compares — the property-based test suite drives it
over many random instances, and operators can run it as a pre-deployment
smoke check on real data (raising ``candidate_budget`` if truncation ever
surfaces as a mismatch).

Selected sets are compared as sets: tie-breaking may legitimately order equal
picks differently, but the membership and the objective value must agree to
within ``tolerance``.  SieveStreaming is the one registered algorithm outside
the contract — it is a single-pass streaming algorithm whose output depends
on element *iteration order*, which sharding inherently changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.stream import SocialStream
from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.core.element import SocialElement
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel
from repro.utils.deprecation import library_managed_construction


@dataclass(frozen=True)
class QueryComparison:
    """Single-node vs sharded outcome of one query."""

    query_index: int
    algorithm: str
    single_ids: Tuple[int, ...]
    cluster_ids: Tuple[int, ...]
    single_score: float
    cluster_score: float
    matched: bool
    detail: str = ""


@dataclass
class EquivalenceReport:
    """The outcome of one :func:`verify_equivalence` run."""

    num_shards: int
    queries_checked: int = 0
    comparisons: List[QueryComparison] = field(default_factory=list)
    active_single: int = 0
    active_cluster: int = 0

    @property
    def matched(self) -> bool:
        """Whether every comparison (and the active counts) agreed."""
        return self.active_single == self.active_cluster and all(
            comparison.matched for comparison in self.comparisons
        )

    @property
    def mismatches(self) -> Tuple[QueryComparison, ...]:
        """The failing comparisons."""
        return tuple(c for c in self.comparisons if not c.matched)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "EQUIVALENT" if self.matched else "MISMATCH"
        return (
            f"{status}: {self.queries_checked} queries on {self.num_shards} shards "
            f"({len(self.mismatches)} mismatches, active "
            f"{self.active_single}/{self.active_cluster})"
        )


def verify_equivalence(
    stream: Union[SocialStream, Iterable[SocialElement]],
    topic_model: TopicModel,
    queries: Sequence[KSIRQuery],
    config: Optional[ProcessorConfig] = None,
    cluster: Optional[ClusterConfig] = None,
    algorithms: Sequence[str] = ("mttd",),
    epsilon: Optional[float] = None,
    inferencer: Optional[TopicInferencer] = None,
    tolerance: float = 1e-9,
) -> EquivalenceReport:
    """Replay ``stream`` on both execution paths and compare query answers.

    The cluster defaults to a deterministic ``serial`` backend so the check
    is reproducible; pass an explicit ``cluster`` config to exercise the
    thread or process backends instead.
    """
    if not isinstance(stream, SocialStream):
        stream = SocialStream(stream)
    config = config or ProcessorConfig()
    cluster = cluster or ClusterConfig(backend="serial")

    with library_managed_construction():
        single = KSIRProcessor(topic_model, config, inferencer=inferencer)
    single.process_stream(stream)

    report = EquivalenceReport(num_shards=cluster.num_shards)
    with ClusterCoordinator(
        topic_model, config, cluster=cluster, inferencer=inferencer
    ) as coordinator:
        coordinator.process_stream(stream)
        report.active_single = single.active_count
        report.active_cluster = coordinator.active_count

        for query_index, query in enumerate(queries):
            for algorithm in algorithms:
                single_result = single.query(query, algorithm=algorithm, epsilon=epsilon)
                cluster_result = coordinator.query(
                    query, algorithm=algorithm, epsilon=epsilon
                )
                ids_match = set(single_result.element_ids) == set(
                    cluster_result.element_ids
                )
                score_match = (
                    abs(single_result.score - cluster_result.score) <= tolerance
                )
                detail = ""
                if not ids_match:
                    detail = (
                        f"ids differ: single={sorted(single_result.element_ids)} "
                        f"cluster={sorted(cluster_result.element_ids)}"
                    )
                elif not score_match:
                    detail = (
                        f"scores differ: single={single_result.score!r} "
                        f"cluster={cluster_result.score!r}"
                    )
                report.comparisons.append(
                    QueryComparison(
                        query_index=query_index,
                        algorithm=algorithm,
                        single_ids=single_result.element_ids,
                        cluster_ids=cluster_result.element_ids,
                        single_score=single_result.score,
                        cluster_score=cluster_result.score,
                        matched=ids_match and score_match,
                        detail=detail,
                    )
                )
                report.queries_checked += 1
    return report
