"""The per-shard execution unit: a partition-restricted k-SIR processor.

A :class:`ShardWorker` owns one :class:`~repro.core.processor.KSIRProcessor`
whose home filter restricts ranked-list maintenance to the shard's partition.
The worker's two operations mirror the two halves of the coordinator's
scatter-gather protocol:

* :meth:`ingest` — process one routed bucket (home elements plus the foreign
  replicas whose references point into this partition);
* :meth:`export_candidates` — walk the shard's ranked lists in descending
  ``x_i · δ_i`` order and return a bounded :class:`CandidatePool` carrying
  everything the coordinator needs to evaluate the candidates *exactly*:
  their stored topic-wise scores, their profiles, their in-window follower
  ids and the followers' profiles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.scoring import ElementProfile
from repro.store import ElementStore
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel
from repro.utils.deprecation import library_managed_construction


@dataclass(frozen=True)
class CandidatePool:
    """One shard's bounded candidate export for one query.

    Attributes
    ----------
    shard_id:
        The exporting shard.
    candidate_ids:
        Candidates in the shard's descending retrieval order.
    scores:
        ``element_id → {topic → δ_i(e)}`` exactly as stored on the shard's
        ranked lists (maintained incrementally, so they equal the global
        singleton scores).
    activity:
        ``element_id → t_e`` last-activity timestamps.
    followers:
        ``element_id → in-window follower ids`` for every candidate.  The
        home shard sees the complete follower set of its elements because
        every follower is routed to it.
    profiles:
        Profiles of the candidates *and* of their followers (follower topic
        probabilities are needed to evaluate influence gains exactly).
    """

    shard_id: int
    candidate_ids: Tuple[int, ...]
    scores: Dict[int, Dict[int, float]]
    activity: Dict[int, int]
    followers: Dict[int, Tuple[int, ...]]
    profiles: Dict[int, ElementProfile]

    def __len__(self) -> int:
        return len(self.candidate_ids)


@dataclass
class ShardStats:
    """Lightweight per-shard accounting surfaced by the coordinator."""

    shard_id: int
    home_elements: int = 0
    foreign_elements: int = 0
    buckets: int = 0
    active_home: int = 0
    active_total: int = 0
    ingest_seconds: float = 0.0
    exports: int = 0
    exported_candidates: int = 0


class ShardWorker:
    """One shard: a home-filtered processor plus the export protocol."""

    def __init__(
        self,
        shard_id: int,
        topic_model: TopicModel,
        config: Optional[ProcessorConfig] = None,
        inferencer: Optional[TopicInferencer] = None,
        home_filter: Optional[Callable[[int], bool]] = None,
        store_factory: Optional[Callable[[], ElementStore]] = None,
    ) -> None:
        self._shard_id = int(shard_id)
        with library_managed_construction():
            self._processor = KSIRProcessor(
                topic_model,
                config,
                inferencer=inferencer,
                home_filter=home_filter,
                store_factory=store_factory,
            )
        self._home_ingested = 0
        self._foreign_ingested = 0
        self._exports = 0
        self._exported_candidates = 0
        # Export counters may be bumped from several evaluator threads at
        # once (the serving engine gathers candidates concurrently).
        self._counter_lock = threading.Lock()

    # -- metadata ----------------------------------------------------------------

    @property
    def shard_id(self) -> int:
        """This shard's index."""
        return self._shard_id

    @property
    def processor(self) -> KSIRProcessor:
        """The shard's partition-restricted processor."""
        return self._processor

    @property
    def home_active_count(self) -> int:
        """Active elements owned by this shard."""
        return self._processor.home_count

    def stats(self) -> ShardStats:
        """A snapshot of the shard's accounting counters."""
        return ShardStats(
            shard_id=self._shard_id,
            home_elements=self._home_ingested,
            foreign_elements=self._foreign_ingested,
            buckets=self._processor.buckets_processed,
            active_home=self._processor.home_count,
            active_total=self._processor.active_count,
            ingest_seconds=self._processor.ingest_timer.total_ms / 1000.0,
            exports=self._exports,
            exported_candidates=self._exported_candidates,
        )

    # -- scatter: ingestion ---------------------------------------------------------

    def ingest(
        self,
        elements: Sequence[SocialElement],
        end_time: int,
        home_count: Optional[int] = None,
    ) -> None:
        """Process one routed bucket and advance the shard window.

        ``home_count`` is the planner's count of home elements in the bucket
        (used only for accounting; when omitted it is recomputed from the
        processor's home filter).
        """
        if home_count is None:
            home_count = sum(
                1 for e in elements if self._processor.is_home(e.element_id)
            )
        self._home_ingested += home_count
        self._foreign_ingested += len(elements) - home_count
        self._processor.process_bucket(elements, end_time)

    def take_dirty_topics(self) -> Tuple[int, ...]:
        """Drain the shard's dirty-topic set (see RankedListIndex)."""
        return self._processor.ranked_lists.take_dirty_topics()

    # -- checkpoint state -------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of the shard (processor + counters)."""
        return {
            "shard_id": self._shard_id,
            "home_ingested": self._home_ingested,
            "foreign_ingested": self._foreign_ingested,
            "exports": self._exports,
            "exported_candidates": self._exported_candidates,
            "processor": self._processor.state_dict(),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this worker."""
        if int(state["shard_id"]) != self._shard_id:
            raise ValueError(
                f"checkpoint shard {state['shard_id']} restored onto shard "
                f"{self._shard_id}"
            )
        self._home_ingested = int(state["home_ingested"])
        self._foreign_ingested = int(state["foreign_ingested"])
        self._exports = int(state["exports"])
        self._exported_candidates = int(state["exported_candidates"])
        self._processor.restore_state(state["processor"])

    # -- gather: candidate export -----------------------------------------------------

    def record_export(self, num_candidates: int) -> None:
        """Bump the export counters (thread-safe).

        Shared by :meth:`export_candidates` and transports that encode the
        pool themselves (the shm transport packs array sections instead of
        building a :class:`CandidatePool` object in the worker process).
        """
        with self._counter_lock:
            self._exports += 1
            self._exported_candidates += int(num_candidates)

    def export_candidates(
        self, query_vector: np.ndarray, budget: Optional[int] = None
    ) -> CandidatePool:
        """Export the shard's top candidates for one query vector.

        On the columnar state store the candidates' follower views come
        out of one CSR array slice over the store's adjacency
        (:meth:`repro.store.ElementStore.followers_csr`) instead of one
        window call per candidate; the object store keeps the historical
        per-element walk.  Both export identical pools.
        """
        index = self._processor.ranked_lists
        window = self._processor.window
        candidate_ids = tuple(index.top_candidates(query_vector, budget))

        scores: Dict[int, Dict[int, float]] = {}
        activity: Dict[int, int] = {}
        followers: Dict[int, Tuple[int, ...]] = {}
        profiles: Dict[int, ElementProfile] = {}
        store = self._processor.store
        if store is not None and candidate_ids:
            rows = store.rows_of(candidate_ids)
            indptr, follower_flat = store.followers_csr(rows)
            flat = follower_flat.tolist()
            for position, element_id in enumerate(candidate_ids):
                start, stop = int(indptr[position]), int(indptr[position + 1])
                followers[element_id] = tuple(flat[start:stop])
        else:
            for element_id in candidate_ids:
                followers[element_id] = window.followers_of(element_id)
        for element_id in candidate_ids:
            scores[element_id] = index.scores_of(element_id)
            activity[element_id] = index.last_activity(element_id)
            profiles[element_id] = self._processor.profile(element_id)
            for follower_id in followers[element_id]:
                if follower_id not in profiles:
                    profiles[follower_id] = self._processor.profile(follower_id)

        self.record_export(len(candidate_ids))
        return CandidatePool(
            shard_id=self._shard_id,
            candidate_ids=candidate_ids,
            scores=scores,
            activity=activity,
            followers=followers,
            profiles=profiles,
        )
