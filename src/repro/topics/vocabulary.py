"""Vocabulary management: word ↔ integer-id mapping with frequency pruning.

The paper reports vocabulary sizes both before and after preprocessing
(Table 3); :class:`Vocabulary` supports the same two-stage view — build from
raw tokens, then prune by document frequency to obtain the working
vocabulary the topic model and the scoring functions use.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence


class Vocabulary:
    """A bidirectional word ↔ id mapping with corpus statistics."""

    def __init__(self, words: Optional[Iterable[str]] = None) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        self._document_frequency: Counter = Counter()
        self._total_frequency: Counter = Counter()
        self._documents_seen = 0
        if words is not None:
            for word in words:
                self.add(word)

    # -- construction ------------------------------------------------------

    def add(self, word: str) -> int:
        """Add ``word`` if unseen and return its id."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        word_id = len(self._id_to_word)
        self._word_to_id[word] = word_id
        self._id_to_word.append(word)
        return word_id

    def add_document(self, tokens: Sequence[str]) -> List[int]:
        """Register one document's tokens, updating frequencies.

        Returns the token ids in order (repeated tokens keep repeating).
        """
        self._documents_seen += 1
        ids = [self.add(token) for token in tokens]
        self._total_frequency.update(tokens)
        self._document_frequency.update(set(tokens))
        return ids

    @classmethod
    def from_documents(cls, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build a vocabulary from an iterable of token sequences."""
        vocabulary = cls()
        for tokens in documents:
            vocabulary.add_document(tokens)
        return vocabulary

    # -- pruning -----------------------------------------------------------

    def pruned(
        self,
        min_document_frequency: int = 1,
        max_document_ratio: float = 1.0,
        max_size: Optional[int] = None,
    ) -> "Vocabulary":
        """Return a new vocabulary keeping only sufficiently frequent words.

        Words must appear in at least ``min_document_frequency`` documents and
        in at most ``max_document_ratio`` fraction of documents.  When
        ``max_size`` is given, the most document-frequent words win.
        """
        if not (0.0 < max_document_ratio <= 1.0):
            raise ValueError("max_document_ratio must lie in (0, 1]")
        limit = max(1, self._documents_seen)
        candidates = [
            word
            for word in self._id_to_word
            if self._document_frequency[word] >= min_document_frequency
            and self._document_frequency[word] / limit <= max_document_ratio
        ]
        candidates.sort(key=lambda w: (-self._document_frequency[w], w))
        if max_size is not None:
            candidates = candidates[:max_size]
        pruned = Vocabulary(sorted(candidates))
        pruned._documents_seen = self._documents_seen
        for word in candidates:
            pruned._document_frequency[word] = self._document_frequency[word]
            pruned._total_frequency[word] = self._total_frequency[word]
        return pruned

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    def id_of(self, word: str) -> int:
        """Return the id of ``word`` (KeyError when unknown)."""
        return self._word_to_id[word]

    def word_of(self, word_id: int) -> str:
        """Return the word with id ``word_id``."""
        return self._id_to_word[word_id]

    def get_id(self, word: str, default: Optional[int] = None) -> Optional[int]:
        """Return the id of ``word`` or ``default`` when unknown."""
        return self._word_to_id.get(word, default)

    def encode(self, tokens: Sequence[str], skip_unknown: bool = True) -> List[int]:
        """Map tokens to ids, optionally dropping out-of-vocabulary tokens."""
        ids: List[int] = []
        for token in tokens:
            word_id = self._word_to_id.get(token)
            if word_id is None:
                if skip_unknown:
                    continue
                raise KeyError(f"unknown word {token!r}")
            ids.append(word_id)
        return ids

    def decode(self, word_ids: Sequence[int]) -> List[str]:
        """Map ids back to words."""
        return [self._id_to_word[word_id] for word_id in word_ids]

    def document_frequency(self, word: str) -> int:
        """Number of documents the word appeared in during construction."""
        return self._document_frequency[word]

    def total_frequency(self, word: str) -> int:
        """Total number of occurrences seen during construction."""
        return self._total_frequency[word]

    @property
    def documents_seen(self) -> int:
        """Number of documents registered via :meth:`add_document`."""
        return self._documents_seen

    @property
    def words(self) -> List[str]:
        """All words, ordered by id."""
        return list(self._id_to_word)
