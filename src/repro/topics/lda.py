"""Latent Dirichlet Allocation trained with collapsed Gibbs sampling.

The paper trains LDA (via PLDA) on the AMiner and Reddit corpora with
Dirichlet priors ``alpha = 50 / z`` and ``beta = 0.01`` (Section 5.1).  This
module provides a from-scratch single-process implementation of the same
model with the same defaults, exposing the trained topic-word matrix through
the :class:`repro.topics.model.TopicModel` oracle interface along with the
per-training-document topic mixtures.

The sampler is the standard collapsed Gibbs sampler (Griffiths & Steyvers):
for each token occurrence with current topic assignment ``t`` we remove it
from the count matrices, compute the full conditional

``P(topic = i) ∝ (n_{d,i} + alpha) * (n_{i,w} + beta) / (n_i + beta * |V|)``

and resample.  Everything is vectorised per token over the topic dimension
with numpy, which keeps laptop-scale corpora (tens of thousands of short
documents) tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, make_rng


@dataclass
class LDATrainingReport:
    """Summary of one training run (used by tests and examples)."""

    iterations: int
    log_likelihood_trace: List[float]

    @property
    def final_log_likelihood(self) -> float:
        """Joint log-likelihood of the last recorded iteration."""
        return self.log_likelihood_trace[-1] if self.log_likelihood_trace else float("nan")


class LatentDirichletAllocation(TopicModel):
    """LDA with collapsed Gibbs sampling.

    Parameters
    ----------
    vocabulary:
        The working vocabulary; documents are encoded against it, dropping
        out-of-vocabulary tokens.
    num_topics:
        Number of latent topics ``z``.
    alpha:
        Symmetric document-topic Dirichlet prior.  ``None`` uses the paper's
        ``50 / z``.
    beta:
        Symmetric topic-word Dirichlet prior (paper: ``0.01``).
    iterations:
        Number of Gibbs sweeps over the corpus.
    burn_in:
        Sweeps ignored before accumulating the posterior estimate.
    seed:
        Seed or generator controlling the sampler.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        num_topics: int,
        alpha: Optional[float] = None,
        beta: float = 0.01,
        iterations: int = 100,
        burn_in: int = 20,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(vocabulary, num_topics)
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if burn_in < 0 or burn_in >= iterations:
            raise ValueError("burn_in must lie in [0, iterations)")
        self.alpha = float(alpha) if alpha is not None else 50.0 / num_topics
        self.beta = float(beta)
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.iterations = int(iterations)
        self.burn_in = int(burn_in)
        self._rng = make_rng(seed)
        self._topic_word: Optional[np.ndarray] = None
        self._document_topic: Optional[np.ndarray] = None
        self._report: Optional[LDATrainingReport] = None

    # -- training ------------------------------------------------------------

    def fit(self, documents: Sequence[Sequence[str]]) -> LDATrainingReport:
        """Train on a corpus of token lists and return a training report."""
        encoded = [self._vocabulary.encode(tokens) for tokens in documents]
        num_docs = len(encoded)
        vocab_size = len(self._vocabulary)
        z = self._num_topics
        if vocab_size == 0:
            raise ValueError("cannot train LDA with an empty vocabulary")
        if num_docs == 0:
            raise ValueError("cannot train LDA on an empty corpus")

        doc_topic_counts = np.zeros((num_docs, z), dtype=np.int64)
        topic_word_counts = np.zeros((z, vocab_size), dtype=np.int64)
        topic_counts = np.zeros(z, dtype=np.int64)

        assignments: List[np.ndarray] = []
        for doc_index, word_ids in enumerate(encoded):
            topics = self._rng.integers(0, z, size=len(word_ids))
            assignments.append(topics)
            for word_id, topic in zip(word_ids, topics):
                doc_topic_counts[doc_index, topic] += 1
                topic_word_counts[topic, word_id] += 1
                topic_counts[topic] += 1

        accumulated_topic_word = np.zeros((z, vocab_size), dtype=np.float64)
        accumulated_doc_topic = np.zeros((num_docs, z), dtype=np.float64)
        accumulation_steps = 0
        log_likelihoods: List[float] = []

        beta_sum = self.beta * vocab_size
        for sweep in range(self.iterations):
            for doc_index, word_ids in enumerate(encoded):
                topics = assignments[doc_index]
                doc_counts = doc_topic_counts[doc_index]
                for position, word_id in enumerate(word_ids):
                    old_topic = topics[position]
                    doc_counts[old_topic] -= 1
                    topic_word_counts[old_topic, word_id] -= 1
                    topic_counts[old_topic] -= 1

                    weights = (doc_counts + self.alpha) * (
                        topic_word_counts[:, word_id] + self.beta
                    ) / (topic_counts + beta_sum)
                    total = weights.sum()
                    new_topic = int(
                        np.searchsorted(
                            np.cumsum(weights), self._rng.random() * total
                        )
                    )
                    if new_topic >= z:
                        new_topic = z - 1

                    topics[position] = new_topic
                    doc_counts[new_topic] += 1
                    topic_word_counts[new_topic, word_id] += 1
                    topic_counts[new_topic] += 1

            log_likelihoods.append(
                self._joint_log_likelihood(topic_word_counts, doc_topic_counts)
            )
            if sweep >= self.burn_in:
                accumulated_topic_word += topic_word_counts
                accumulated_doc_topic += doc_topic_counts
                accumulation_steps += 1

        if accumulation_steps == 0:
            accumulated_topic_word = topic_word_counts.astype(float)
            accumulated_doc_topic = doc_topic_counts.astype(float)
            accumulation_steps = 1

        topic_word = (accumulated_topic_word / accumulation_steps) + self.beta
        topic_word /= topic_word.sum(axis=1, keepdims=True)
        doc_topic = (accumulated_doc_topic / accumulation_steps) + self.alpha
        doc_topic /= doc_topic.sum(axis=1, keepdims=True)

        self._topic_word = topic_word
        self._document_topic = doc_topic
        self._report = LDATrainingReport(self.iterations, log_likelihoods)
        return self._report

    def _joint_log_likelihood(
        self, topic_word_counts: np.ndarray, doc_topic_counts: np.ndarray
    ) -> float:
        """Unnormalised joint log-likelihood used to monitor convergence."""
        vocab_size = topic_word_counts.shape[1]
        phi = (topic_word_counts + self.beta) / (
            topic_word_counts.sum(axis=1, keepdims=True) + self.beta * vocab_size
        )
        theta = (doc_topic_counts + self.alpha) / (
            doc_topic_counts.sum(axis=1, keepdims=True)
            + self.alpha * self._num_topics
        )
        return float(
            np.sum(topic_word_counts * np.log(phi))
            + np.sum(doc_topic_counts * np.log(theta))
        )

    # -- oracle interface ------------------------------------------------------

    @property
    def topic_word_matrix(self) -> np.ndarray:
        if self._topic_word is None:
            raise RuntimeError("LatentDirichletAllocation has not been fitted yet")
        return self._topic_word

    @property
    def document_topic_matrix(self) -> np.ndarray:
        """Posterior topic mixtures of the training documents."""
        if self._document_topic is None:
            raise RuntimeError("LatentDirichletAllocation has not been fitted yet")
        return self._document_topic

    @property
    def training_report(self) -> LDATrainingReport:
        """The report of the last :meth:`fit` call."""
        if self._report is None:
            raise RuntimeError("LatentDirichletAllocation has not been fitted yet")
        return self._report

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._topic_word is not None
