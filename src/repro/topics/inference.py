"""Topic inference for unseen documents and for query keyword sets.

The paper's query paradigm (Section 3.2): users provide keywords, the
keywords are treated as a pseudo-document, and the query vector is the
pseudo-document's topic distribution inferred from the trained model.  New
stream elements get their topic vector the same way before entering the
active window (Figure 4's "Topic Inference" box).

Two inference procedures are provided:

* ``method="gibbs"`` — fold-in collapsed Gibbs sampling, holding the
  topic-word matrix fixed and resampling only the document's own topic
  assignments (the standard LDA fold-in, also cited by the paper).
* ``method="expectation"`` — a fast deterministic approximation that
  iterates the mean-field update
  ``q(i | w) ∝ p_i(w) * theta_i`` / ``theta_i ∝ alpha + Σ_w q(i | w)``;
  it is what the stream processor uses by default because it is an order of
  magnitude faster and deterministic, which keeps experiments reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.topics.model import TopicModel
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TopicInferencer:
    """Infers topic distributions for token lists against a trained model.

    Parameters
    ----------
    model:
        The trained :class:`repro.topics.model.TopicModel` oracle.
    alpha:
        Document-topic Dirichlet prior used during inference; ``None``
        defaults to the paper's ``50 / z``.
    iterations:
        Gibbs sweeps (``method="gibbs"``) or fixed-point iterations
        (``method="expectation"``).
    method:
        ``"expectation"`` (default) or ``"gibbs"``.
    sparsity_threshold:
        Posterior entries below this value are truncated to zero and the
        vector re-normalised.  The paper observes that real elements sit on
        fewer than two topics on average; truncation keeps inferred vectors
        similarly sparse, which is what the ranked lists exploit.
    seed:
        Seed or generator for the Gibbs variant.
    """

    model: TopicModel
    alpha: Optional[float] = None
    iterations: int = 30
    method: str = "expectation"
    sparsity_threshold: float = 0.0
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.method not in ("expectation", "gibbs"):
            raise ValueError("method must be 'expectation' or 'gibbs'")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not (0.0 <= self.sparsity_threshold < 1.0):
            raise ValueError("sparsity_threshold must lie in [0, 1)")
        self._alpha = (
            float(self.alpha)
            if self.alpha is not None
            else 50.0 / self.model.num_topics
        )
        self._rng = make_rng(self.seed)

    # -- public API -------------------------------------------------------------

    def infer(self, tokens: Sequence[str]) -> np.ndarray:
        """Return the topic distribution of a token list.

        Unknown tokens are ignored.  Empty (or fully out-of-vocabulary)
        documents get the uniform distribution, matching the "no information"
        prior.
        """
        word_ids = self.model.vocabulary.encode(tokens)
        z = self.model.num_topics
        if not word_ids:
            return np.full(z, 1.0 / z)
        if self.method == "gibbs":
            distribution = self._infer_gibbs(word_ids)
        else:
            distribution = self._infer_expectation(word_ids)
        return self._sparsify(distribution)

    def infer_many(self, documents: Sequence[Sequence[str]]) -> np.ndarray:
        """Stack the inferred distributions of many documents row-wise."""
        return np.vstack([self.infer(tokens) for tokens in documents])

    # -- inference procedures ------------------------------------------------------

    def _infer_expectation(self, word_ids: Sequence[int]) -> np.ndarray:
        phi = self.model.topic_word_matrix[:, word_ids]  # (z, n_tokens)
        z = self.model.num_topics
        theta = np.full(z, 1.0 / z)
        for _ in range(self.iterations):
            # responsibilities of each topic for each token
            weighted = phi * theta[:, None]
            token_totals = weighted.sum(axis=0)
            token_totals[token_totals == 0.0] = 1.0
            responsibilities = weighted / token_totals
            theta = self._alpha + responsibilities.sum(axis=1)
            theta = theta / theta.sum()
        return theta

    def _infer_gibbs(self, word_ids: Sequence[int]) -> np.ndarray:
        phi = self.model.topic_word_matrix
        z = self.model.num_topics
        assignments = self._rng.integers(0, z, size=len(word_ids))
        counts = np.bincount(assignments, minlength=z).astype(float)
        accumulated = np.zeros(z)
        burn_in = max(1, self.iterations // 3)
        for sweep in range(self.iterations):
            for position, word_id in enumerate(word_ids):
                old_topic = assignments[position]
                counts[old_topic] -= 1
                weights = (counts + self._alpha) * phi[:, word_id]
                total = weights.sum()
                if total <= 0:
                    new_topic = int(self._rng.integers(0, z))
                else:
                    new_topic = int(
                        np.searchsorted(np.cumsum(weights), self._rng.random() * total)
                    )
                    if new_topic >= z:
                        new_topic = z - 1
                assignments[position] = new_topic
                counts[new_topic] += 1
            if sweep >= burn_in:
                accumulated += counts
        if accumulated.sum() == 0:
            accumulated = counts
        theta = accumulated + self._alpha
        return theta / theta.sum()

    def _sparsify(self, distribution: np.ndarray) -> np.ndarray:
        if self.sparsity_threshold <= 0.0:
            return distribution
        truncated = np.where(distribution >= self.sparsity_threshold, distribution, 0.0)
        total = truncated.sum()
        if total <= 0.0:
            # Keep only the single best topic rather than returning zeros.
            best = int(np.argmax(distribution))
            truncated = np.zeros_like(distribution)
            truncated[best] = 1.0
            return truncated
        return truncated / total


def infer_query_vector(
    model: TopicModel,
    keywords: Sequence[str],
    inferencer: Optional[TopicInferencer] = None,
) -> np.ndarray:
    """Infer a k-SIR query vector from user keywords.

    This is the paper's query-by-keyword transformation: the keywords form a
    pseudo-document whose topic distribution (inferred against ``model``)
    becomes the normalised query vector ``x``.
    """
    if inferencer is None:
        inferencer = TopicInferencer(model)
    return inferencer.infer(list(keywords))


def infer_document_query_vector(
    model: TopicModel,
    document_tokens: Sequence[str],
    inferencer: Optional[TopicInferencer] = None,
) -> np.ndarray:
    """Infer a query vector from a whole document (query-by-document).

    Section 3.2 mentions the query-by-document paradigm of Zhang et al.
    (TOIS 2017): the user supplies a document (e.g. a news article) and wants
    representative social elements about it.  The transformation is the same
    fold-in inference as for keywords, but documented separately because the
    inputs are typically much longer.
    """
    if inferencer is None:
        inferencer = TopicInferencer(model)
    return inferencer.infer(list(document_tokens))


def infer_personalized_vector(
    model: TopicModel,
    recent_documents: Sequence[Sequence[str]],
    inferencer: Optional[TopicInferencer] = None,
    decay: float = 0.8,
) -> np.ndarray:
    """Infer a personalised query vector from a user's recent posts.

    The paper's personalised-search paradigm (Li et al., ICDE 2015) derives
    the query vector from the user's own recent activity.  Each of the user's
    recent documents is inferred independently and the distributions are
    combined with exponential recency weighting (the last document in
    ``recent_documents`` is the most recent and gets weight 1, the one before
    it ``decay``, and so on), then renormalised.
    """
    if not (0.0 < decay <= 1.0):
        raise ValueError("decay must lie in (0, 1]")
    if inferencer is None:
        inferencer = TopicInferencer(model)
    documents = list(recent_documents)
    if not documents:
        return np.full(model.num_topics, 1.0 / model.num_topics)
    combined = np.zeros(model.num_topics)
    weight = 1.0
    for tokens in reversed(documents):
        combined += weight * inferencer.infer(list(tokens))
        weight *= decay
    total = combined.sum()
    if total <= 0.0:
        return np.full(model.num_topics, 1.0 / model.num_topics)
    return combined / total
