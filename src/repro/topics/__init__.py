"""Topic-model substrate for the k-SIR reproduction.

The paper treats the topic model as a *black-box oracle* providing, for each
topic ``i``, the word probability ``p_i(w)`` and, for each element ``e``, the
document-topic probability ``p_i(e)``.  This package implements that oracle
end to end:

* :mod:`repro.topics.vocabulary` — word ↔ id mapping with frequency pruning.
* :mod:`repro.topics.preprocess` — tokenisation and stop-word removal.
* :mod:`repro.topics.model` — the :class:`TopicModel` oracle interface and a
  matrix-backed implementation usable with externally supplied distributions.
* :mod:`repro.topics.lda` — Latent Dirichlet Allocation trained by collapsed
  Gibbs sampling (the paper trains PLDA on AMiner and Reddit).
* :mod:`repro.topics.btm` — the Biterm Topic Model for short texts (the
  paper's choice for Twitter).
* :mod:`repro.topics.inference` — fold-in inference of topic vectors for new
  documents and for query keyword sets (query-by-keyword → pseudo-document).
"""

from repro.topics.btm import BitermTopicModel
from repro.topics.inference import TopicInferencer, infer_query_vector
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.model import MatrixTopicModel, TopicModel
from repro.topics.preprocess import STOP_WORDS, Preprocessor, tokenize
from repro.topics.vocabulary import Vocabulary

__all__ = [
    "BitermTopicModel",
    "LatentDirichletAllocation",
    "MatrixTopicModel",
    "Preprocessor",
    "STOP_WORDS",
    "TopicInferencer",
    "TopicModel",
    "Vocabulary",
    "infer_query_vector",
    "tokenize",
]
