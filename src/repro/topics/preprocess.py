"""Text preprocessing: tokenisation, normalisation and stop-word removal.

The paper removes stop words and noise words before training topic models and
computing semantic scores (Section 5.1).  The pipeline here mirrors that:
lower-casing, URL/mention stripping, hashtag and handle preservation (they
carry the topical signal in the paper's running example), alphanumeric
tokenisation, stop-word and short-token removal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence

# A compact English stop-word list; enough to strip function words from the
# synthetic and example corpora without pulling in external data files.
STOP_WORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll he's
    her here here's hers herself him himself his how how's i i'd i'll i'm
    i've if in into is isn't it it's its itself let's me more most mustn't my
    myself no nor not of off on once only or other ought our ours ourselves
    out over own same shan't she she'd she'll she's should shouldn't so some
    such than that that's the their theirs them themselves then there there's
    these they they'd they'll they're they've this those through to too under
    until up very was wasn't we we'd we'll we're we've were weren't what
    what's when when's where where's which while who who's whom why why's
    with won't would wouldn't you you'd you'll you're you've your yours
    yourself yourselves will just also rt via amp get got one two new like
    """.split()
)

_URL_PATTERN = re.compile(r"https?://\S+|www\.\S+")
_TOKEN_PATTERN = re.compile(r"[#@]?[a-z0-9][a-z0-9_'-]*")


def tokenize(text: str) -> List[str]:
    """Split raw text into lower-case tokens, dropping URLs.

    Hashtags and @-mentions are kept with their sigil stripped, because in the
    paper they are exactly the words that carry topical meaning (``#UCL``,
    ``@LFC``...).
    """
    lowered = _URL_PATTERN.sub(" ", text.lower())
    tokens = []
    for match in _TOKEN_PATTERN.finditer(lowered):
        token = match.group(0).lstrip("#@")
        if token:
            tokens.append(token)
    return tokens


@dataclass
class Preprocessor:
    """Configurable preprocessing pipeline producing cleaned token lists.

    Parameters
    ----------
    stop_words:
        Words removed after tokenisation.  Defaults to :data:`STOP_WORDS`.
    min_token_length:
        Tokens shorter than this are treated as noise and dropped.
    max_token_length:
        Tokens longer than this are dropped (catches concatenated junk).
    extra_noise_words:
        Additional corpus-specific noise words to drop.
    """

    stop_words: FrozenSet[str] = STOP_WORDS
    min_token_length: int = 2
    max_token_length: int = 40
    extra_noise_words: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        if self.max_token_length < self.min_token_length:
            raise ValueError("max_token_length must be >= min_token_length")

    def process(self, text: str) -> List[str]:
        """Tokenise ``text`` and filter stop/noise words."""
        return self.filter_tokens(tokenize(text))

    def filter_tokens(self, tokens: Iterable[str]) -> List[str]:
        """Apply the stop/noise/length filters to an existing token list."""
        cleaned = []
        for token in tokens:
            if len(token) < self.min_token_length:
                continue
            if len(token) > self.max_token_length:
                continue
            if token in self.stop_words:
                continue
            if token in self.extra_noise_words:
                continue
            cleaned.append(token)
        return cleaned

    def process_corpus(self, texts: Sequence[str]) -> List[List[str]]:
        """Preprocess a whole corpus of raw strings."""
        return [self.process(text) for text in texts]
