"""The topic-model oracle interface used by every downstream component.

Section 3.1 of the paper: "we consider any probabilistic topic model can be
used as a black-box oracle to provide ``p_i(w)`` for all words and ``p_i(e)``
for all elements".  :class:`TopicModel` is that oracle; trained models
(:class:`repro.topics.lda.LatentDirichletAllocation`,
:class:`repro.topics.btm.BitermTopicModel`) and externally supplied matrices
(:class:`MatrixTopicModel`, used by the synthetic data generator and by unit
tests reproducing the paper's worked example) all satisfy it.

Any model can be persisted with :meth:`TopicModel.save` and reloaded with
:meth:`MatrixTopicModel.load` (a single ``.npz`` file holding the topic-word
matrix and the vocabulary), so expensive LDA/BTM training runs are reusable
across experiments and from the command-line interface.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.topics.vocabulary import Vocabulary


class TopicModel:
    """Abstract oracle exposing topic-word probabilities ``p_i(w)``.

    Concrete subclasses must provide :attr:`topic_word_matrix` — a
    ``(num_topics, vocabulary_size)`` row-stochastic matrix — plus the
    vocabulary mapping word strings to column indices.  Document-topic
    inference for unseen documents lives in
    :mod:`repro.topics.inference`; trained models may additionally retain the
    topic mixtures of their training documents.
    """

    def __init__(self, vocabulary: Vocabulary, num_topics: int) -> None:
        if num_topics <= 0:
            raise ValueError("num_topics must be positive")
        self._vocabulary = vocabulary
        self._num_topics = int(num_topics)

    # -- interface ---------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary whose ids index the topic-word matrix columns."""
        return self._vocabulary

    @property
    def num_topics(self) -> int:
        """Number of topics ``z``."""
        return self._num_topics

    @property
    def topic_word_matrix(self) -> np.ndarray:
        """Row-stochastic ``(z, |V|)`` matrix of ``p_i(w)``."""
        raise NotImplementedError

    # -- convenience accessors ----------------------------------------------

    def word_probability(self, topic: int, word: str) -> float:
        """``p_i(w)`` for a word string (0.0 for out-of-vocabulary words)."""
        word_id = self._vocabulary.get_id(word)
        if word_id is None:
            return 0.0
        return float(self.topic_word_matrix[topic, word_id])

    def word_probabilities(self, word: str) -> np.ndarray:
        """The length-``z`` vector ``[p_1(w), ..., p_z(w)]``."""
        word_id = self._vocabulary.get_id(word)
        if word_id is None:
            return np.zeros(self._num_topics)
        return np.asarray(self.topic_word_matrix[:, word_id], dtype=float)

    def top_words(self, topic: int, count: int = 10) -> List[str]:
        """The ``count`` highest-probability words of ``topic``."""
        row = np.asarray(self.topic_word_matrix[topic], dtype=float)
        order = np.argsort(-row)[:count]
        return [self._vocabulary.word_of(int(idx)) for idx in order]

    def validate(self, atol: float = 1e-6) -> bool:
        """Check that every topic row is a probability distribution."""
        matrix = np.asarray(self.topic_word_matrix, dtype=float)
        if matrix.shape != (self._num_topics, len(self._vocabulary)):
            return False
        if np.any(matrix < -atol):
            return False
        row_sums = matrix.sum(axis=1)
        return bool(np.allclose(row_sums, 1.0, atol=atol))

    def save(self, path) -> "Path":
        """Persist the oracle (topic-word matrix + vocabulary) as ``.npz``.

        Works for any subclass; the file reloads as a
        :class:`MatrixTopicModel` via :meth:`MatrixTopicModel.load`.  Returns
        the path actually written (a ``.npz`` suffix is added when missing).
        """
        destination = Path(path)
        if destination.suffix != ".npz":
            destination = destination.with_suffix(".npz")
        destination.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            destination,
            topic_word_matrix=np.asarray(self.topic_word_matrix, dtype=float),
            vocabulary=np.array(self._vocabulary.words, dtype=object),
        )
        return destination


class MatrixTopicModel(TopicModel):
    """A topic model defined directly by a topic-word probability matrix.

    Used in three places: unit tests that reproduce the paper's worked
    example (Table 1's topic-word distributions), the synthetic stream
    generator (which *samples* a ground-truth matrix), and any user who has
    trained a topic model elsewhere and only needs the k-SIR machinery.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        topic_word_matrix: np.ndarray,
        normalize: bool = True,
    ) -> None:
        matrix = np.asarray(topic_word_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("topic_word_matrix must be 2-dimensional")
        if matrix.shape[1] != len(vocabulary):
            raise ValueError(
                "topic_word_matrix has "
                f"{matrix.shape[1]} columns but the vocabulary has "
                f"{len(vocabulary)} words"
            )
        if np.any(matrix < 0):
            raise ValueError("topic_word_matrix must be non-negative")
        super().__init__(vocabulary, matrix.shape[0])
        if normalize:
            row_sums = matrix.sum(axis=1, keepdims=True)
            # Topics with no mass become uniform distributions.
            zero_rows = (row_sums == 0).flatten()
            if np.any(zero_rows):
                matrix[zero_rows] = 1.0 / matrix.shape[1]
                row_sums = matrix.sum(axis=1, keepdims=True)
            matrix = matrix / row_sums
        self._matrix = matrix

    @property
    def topic_word_matrix(self) -> np.ndarray:
        return self._matrix

    @classmethod
    def load(cls, path) -> "MatrixTopicModel":
        """Reload a model persisted with :meth:`TopicModel.save`."""
        source = Path(path)
        if not source.exists() and source.suffix != ".npz":
            source = source.with_suffix(".npz")
        with np.load(source, allow_pickle=True) as payload:
            matrix = np.asarray(payload["topic_word_matrix"], dtype=float)
            words = [str(word) for word in payload["vocabulary"].tolist()]
        return cls(Vocabulary(words), matrix, normalize=False)

    @classmethod
    def from_word_distributions(
        cls,
        distributions: Sequence[Dict[str, float]],
        vocabulary: Optional[Vocabulary] = None,
        normalize: bool = True,
    ) -> "MatrixTopicModel":
        """Build a model from per-topic ``{word: probability}`` dictionaries.

        Handy for reconstructing the paper's Table 1 example in tests.
        """
        if vocabulary is None:
            words = sorted({word for dist in distributions for word in dist})
            vocabulary = Vocabulary(words)
        matrix = np.zeros((len(distributions), len(vocabulary)))
        for topic_index, distribution in enumerate(distributions):
            for word, probability in distribution.items():
                word_id = vocabulary.get_id(word)
                if word_id is None:
                    raise KeyError(f"word {word!r} missing from the vocabulary")
                matrix[topic_index, word_id] = probability
        return cls(vocabulary, matrix, normalize=normalize)
