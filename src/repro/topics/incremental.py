"""Incremental topic-model maintenance over the stream (the paper's future work).

Section 6 of the paper: *"In future work, we plan to extend our approach for
supporting the incremental updates of topic models over streams."*  This
module provides that extension in the form the paper's own data model
suggests: topic distributions drift much more slowly than the stream, so the
model is kept fixed for long stretches and retrained from a buffer of recent
documents when drift is detected.

:class:`IncrementalTopicModelManager` wraps the training procedure:

* it keeps a bounded buffer of the most recent documents;
* it monitors **drift** through the out-of-vocabulary rate and the average
  per-token likelihood of new documents under the current model;
* when either signal crosses its threshold (or on an explicit
  :meth:`refresh` call), it retrains a fresh LDA/BTM model on the buffer —
  optionally blending the previous topic-word matrix in, which keeps topic
  identities stable across refreshes so long-lived query vectors remain
  meaningful.

Downstream, a new model means new element profiles; the intended integration
(demonstrated in the tests) is to rebuild the :class:`repro.core.processor.
KSIRProcessor` from the active window after a refresh, which is cheap relative
to the retraining itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.topics.btm import BitermTopicModel
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.model import MatrixTopicModel, TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.validation import require_in_range, require_positive


@dataclass
class DriftReport:
    """Drift signals of the current model against the recent buffer."""

    out_of_vocabulary_rate: float
    mean_token_log_likelihood: float
    buffered_documents: int

    def exceeds(self, oov_threshold: float, likelihood_threshold: float) -> bool:
        """Whether either drift signal crosses its threshold."""
        if self.buffered_documents == 0:
            return False
        if self.out_of_vocabulary_rate > oov_threshold:
            return True
        return self.mean_token_log_likelihood < likelihood_threshold


class IncrementalTopicModelManager:
    """Maintains a topic model over a stream with periodic retraining.

    Parameters
    ----------
    num_topics:
        Number of topics of every (re)trained model.
    model_kind:
        ``"lda"`` (default) or ``"btm"``.
    buffer_size:
        Maximum number of recent documents kept for retraining.
    oov_threshold:
        Refresh when the fraction of buffered tokens missing from the current
        vocabulary exceeds this value.
    likelihood_threshold:
        Refresh when the mean per-token log-likelihood of buffered documents
        under the current model falls below this value.
    blend:
        Weight of the *previous* topic-word matrix when merging with the
        newly trained one (0 = replace outright, 0.5 = equal blend).  Blending
        requires the vocabularies to be merged, which this class handles.
    iterations:
        Gibbs sweeps per retraining run.
    seed:
        Master seed; each retraining derives its own child seed.
    """

    def __init__(
        self,
        num_topics: int,
        model_kind: str = "lda",
        buffer_size: int = 2000,
        oov_threshold: float = 0.2,
        likelihood_threshold: float = -9.0,
        blend: float = 0.3,
        iterations: int = 40,
        seed: SeedLike = None,
    ) -> None:
        require_positive(num_topics, "num_topics")
        require_positive(buffer_size, "buffer_size")
        require_in_range(oov_threshold, "oov_threshold", 0.0, 1.0)
        require_in_range(blend, "blend", 0.0, 1.0)
        require_positive(iterations, "iterations")
        if model_kind not in ("lda", "btm"):
            raise ValueError("model_kind must be 'lda' or 'btm'")
        self.num_topics = int(num_topics)
        self.model_kind = model_kind
        self.buffer_size = int(buffer_size)
        self.oov_threshold = float(oov_threshold)
        self.likelihood_threshold = float(likelihood_threshold)
        self.blend = float(blend)
        self.iterations = int(iterations)
        self._seed = seed if isinstance(seed, int) else None
        self._buffer: Deque[List[str]] = deque(maxlen=self.buffer_size)
        self._model: Optional[TopicModel] = None
        self._refreshes = 0

    # -- state -----------------------------------------------------------------

    @property
    def model(self) -> TopicModel:
        """The current topic model (RuntimeError before the first refresh)."""
        if self._model is None:
            raise RuntimeError(
                "no topic model yet; call observe() with documents and refresh(), "
                "or bootstrap() with an existing model"
            )
        return self._model

    @property
    def has_model(self) -> bool:
        """Whether a model is available."""
        return self._model is not None

    @property
    def refresh_count(self) -> int:
        """Number of (re)trainings performed so far."""
        return self._refreshes

    @property
    def buffered_documents(self) -> int:
        """Number of documents currently buffered for the next retraining."""
        return len(self._buffer)

    def bootstrap(self, model: TopicModel) -> None:
        """Adopt an externally trained model as the starting point."""
        self._model = model

    # -- stream observation --------------------------------------------------------

    def observe(self, tokens: Sequence[str]) -> None:
        """Add one document to the retraining buffer."""
        self._buffer.append(list(tokens))

    def observe_many(self, documents: Sequence[Sequence[str]]) -> None:
        """Add many documents to the retraining buffer."""
        for tokens in documents:
            self.observe(tokens)

    # -- drift detection --------------------------------------------------------------

    def drift_report(self) -> DriftReport:
        """Compute the drift signals of the current model on the buffer."""
        if self._model is None or not self._buffer:
            return DriftReport(0.0, 0.0, len(self._buffer))
        vocabulary = self._model.vocabulary
        matrix = self._model.topic_word_matrix
        # Corpus-average word distribution under the model (uniform topic mix).
        average_word_probability = matrix.mean(axis=0)
        total_tokens = 0
        unknown_tokens = 0
        log_likelihood = 0.0
        scored_tokens = 0
        for tokens in self._buffer:
            for token in tokens:
                total_tokens += 1
                word_id = vocabulary.get_id(token)
                if word_id is None:
                    unknown_tokens += 1
                    continue
                probability = float(average_word_probability[word_id])
                if probability > 0.0:
                    log_likelihood += float(np.log(probability))
                    scored_tokens += 1
        oov_rate = unknown_tokens / total_tokens if total_tokens else 0.0
        mean_log_likelihood = log_likelihood / scored_tokens if scored_tokens else 0.0
        return DriftReport(oov_rate, mean_log_likelihood, len(self._buffer))

    def needs_refresh(self) -> bool:
        """Whether the drift signals call for retraining."""
        if self._model is None:
            return len(self._buffer) > 0
        return self.drift_report().exceeds(self.oov_threshold, self.likelihood_threshold)

    # -- retraining ------------------------------------------------------------------------

    def _train(self, corpus: Sequence[Sequence[str]], vocabulary: Vocabulary) -> TopicModel:
        seed = derive_seed(self._seed, "incremental-topic-model", str(self._refreshes))
        if self.model_kind == "lda":
            model = LatentDirichletAllocation(
                vocabulary,
                self.num_topics,
                iterations=self.iterations,
                burn_in=max(1, self.iterations // 4),
                seed=seed,
            )
        else:
            model = BitermTopicModel(
                vocabulary,
                self.num_topics,
                iterations=self.iterations,
                burn_in=max(1, self.iterations // 4),
                seed=seed,
            )
        model.fit(list(corpus))
        return model

    def _blend_with_previous(self, fresh: TopicModel) -> TopicModel:
        """Merge the previous topic-word matrix into the freshly trained one."""
        previous = self._model
        if previous is None or self.blend <= 0.0:
            return fresh
        if previous.num_topics != self.num_topics:
            # A bootstrapped model with a different topic count cannot be
            # blended topic-by-topic; the fresh model replaces it outright.
            return fresh
        merged_words = list(
            dict.fromkeys(list(previous.vocabulary.words) + list(fresh.vocabulary.words))
        )
        merged_vocabulary = Vocabulary(merged_words)
        merged = np.zeros((self.num_topics, len(merged_vocabulary)))
        for word in merged_words:
            column = merged_vocabulary.id_of(word)
            previous_column = previous.vocabulary.get_id(word)
            fresh_column = fresh.vocabulary.get_id(word)
            if previous_column is not None:
                merged[:, column] += self.blend * previous.topic_word_matrix[:, previous_column]
            if fresh_column is not None:
                merged[:, column] += (1.0 - self.blend) * fresh.topic_word_matrix[:, fresh_column]
        return MatrixTopicModel(merged_vocabulary, merged, normalize=True)

    def refresh(self, force: bool = True) -> TopicModel:
        """Retrain the model from the buffer (and blend with the old one).

        With ``force=False`` retraining only happens when
        :meth:`needs_refresh` says so; the current model is returned either
        way.
        """
        if not force and not self.needs_refresh():
            return self.model
        if not self._buffer:
            raise ValueError("cannot refresh: the document buffer is empty")
        corpus = list(self._buffer)
        vocabulary = Vocabulary.from_documents(corpus)
        if len(vocabulary) == 0:
            raise ValueError("cannot refresh: the buffered documents are empty")
        fresh = self._train(corpus, vocabulary)
        blended = self._blend_with_previous(fresh)
        self._model = blended
        self._refreshes += 1
        return blended

    def maybe_refresh(self) -> Optional[TopicModel]:
        """Refresh only if drift demands it; returns the new model or ``None``."""
        if not self.needs_refresh():
            return None
        return self.refresh(force=True)
