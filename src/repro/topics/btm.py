"""Biterm Topic Model (BTM) for short texts, trained by collapsed Gibbs sampling.

The paper trains BTM (Yan et al., WWW 2013) on the Twitter corpus because the
word co-occurrence signal of LDA collapses on very short documents.  BTM
models the generation of unordered word *pairs* (biterms) drawn from the
whole corpus: each biterm picks a topic from a corpus-level mixture, then
both words are drawn from that topic.

Training is collapsed Gibbs sampling over biterm topic assignments:

``P(topic = i | b=(w1, w2)) ∝ (n_i + alpha) *
  (n_{i,w1} + beta)(n_{i,w2} + beta) / (n_i·2 + beta·|V|)^2``

Document-topic inference follows the original paper:
``p(i | d) = Σ_b p(i | b) p(b | d)`` over the biterms of the document.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, make_rng


def extract_biterms(word_ids: Sequence[int], window: Optional[int] = None) -> List[Tuple[int, int]]:
    """All unordered word-id pairs of a document (within an optional window).

    Short texts use the whole document as the co-occurrence window, which is
    the BTM default and what we do when ``window`` is ``None``.
    """
    pairs: List[Tuple[int, int]] = []
    n = len(word_ids)
    for left in range(n):
        right_limit = n if window is None else min(n, left + window + 1)
        for right in range(left + 1, right_limit):
            a, b = word_ids[left], word_ids[right]
            if a == b:
                continue
            pairs.append((a, b) if a < b else (b, a))
    return pairs


@dataclass
class BTMTrainingReport:
    """Summary of one BTM training run."""

    iterations: int
    num_biterms: int
    log_likelihood_trace: List[float]


class BitermTopicModel(TopicModel):
    """The Biterm Topic Model with collapsed Gibbs sampling.

    Parameters mirror :class:`repro.topics.lda.LatentDirichletAllocation`;
    ``alpha`` defaults to the paper's ``50 / z`` and ``beta`` to ``0.01``.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        num_topics: int,
        alpha: Optional[float] = None,
        beta: float = 0.01,
        iterations: int = 100,
        burn_in: int = 20,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(vocabulary, num_topics)
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if burn_in < 0 or burn_in >= iterations:
            raise ValueError("burn_in must lie in [0, iterations)")
        self.alpha = float(alpha) if alpha is not None else 50.0 / num_topics
        self.beta = float(beta)
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.iterations = int(iterations)
        self.burn_in = int(burn_in)
        self._rng = make_rng(seed)
        self._topic_word: Optional[np.ndarray] = None
        self._topic_mixture: Optional[np.ndarray] = None
        self._report: Optional[BTMTrainingReport] = None

    # -- training --------------------------------------------------------------

    def fit(self, documents: Sequence[Sequence[str]]) -> BTMTrainingReport:
        """Train on a corpus of token lists and return a training report."""
        vocab_size = len(self._vocabulary)
        z = self._num_topics
        if vocab_size == 0:
            raise ValueError("cannot train BTM with an empty vocabulary")

        biterms: List[Tuple[int, int]] = []
        for tokens in documents:
            word_ids = self._vocabulary.encode(tokens)
            biterms.extend(extract_biterms(word_ids))
        if not biterms:
            raise ValueError(
                "the corpus produced no biterms; documents need >= 2 distinct "
                "in-vocabulary words"
            )

        topic_counts = np.zeros(z, dtype=np.int64)
        topic_word_counts = np.zeros((z, vocab_size), dtype=np.int64)
        assignments = self._rng.integers(0, z, size=len(biterms))
        for (w1, w2), topic in zip(biterms, assignments):
            topic_counts[topic] += 1
            topic_word_counts[topic, w1] += 1
            topic_word_counts[topic, w2] += 1

        accumulated_topic_word = np.zeros((z, vocab_size), dtype=np.float64)
        accumulated_topic = np.zeros(z, dtype=np.float64)
        accumulation_steps = 0
        log_likelihoods: List[float] = []
        beta_sum = self.beta * vocab_size

        for sweep in range(self.iterations):
            for index, (w1, w2) in enumerate(biterms):
                old_topic = assignments[index]
                topic_counts[old_topic] -= 1
                topic_word_counts[old_topic, w1] -= 1
                topic_word_counts[old_topic, w2] -= 1

                denominator = 2.0 * topic_counts + beta_sum
                weights = (
                    (topic_counts + self.alpha)
                    * (topic_word_counts[:, w1] + self.beta)
                    * (topic_word_counts[:, w2] + self.beta)
                    / (denominator * denominator)
                )
                total = weights.sum()
                new_topic = int(
                    np.searchsorted(np.cumsum(weights), self._rng.random() * total)
                )
                if new_topic >= z:
                    new_topic = z - 1

                assignments[index] = new_topic
                topic_counts[new_topic] += 1
                topic_word_counts[new_topic, w1] += 1
                topic_word_counts[new_topic, w2] += 1

            log_likelihoods.append(
                self._joint_log_likelihood(topic_counts, topic_word_counts)
            )
            if sweep >= self.burn_in:
                accumulated_topic_word += topic_word_counts
                accumulated_topic += topic_counts
                accumulation_steps += 1

        if accumulation_steps == 0:
            accumulated_topic_word = topic_word_counts.astype(float)
            accumulated_topic = topic_counts.astype(float)
            accumulation_steps = 1

        topic_word = (accumulated_topic_word / accumulation_steps) + self.beta
        topic_word /= topic_word.sum(axis=1, keepdims=True)
        mixture = (accumulated_topic / accumulation_steps) + self.alpha
        mixture /= mixture.sum()

        self._topic_word = topic_word
        self._topic_mixture = mixture
        self._report = BTMTrainingReport(self.iterations, len(biterms), log_likelihoods)
        return self._report

    def _joint_log_likelihood(
        self, topic_counts: np.ndarray, topic_word_counts: np.ndarray
    ) -> float:
        """Unnormalised joint log-likelihood used to monitor convergence."""
        vocab_size = topic_word_counts.shape[1]
        phi = (topic_word_counts + self.beta) / (
            topic_word_counts.sum(axis=1, keepdims=True) + self.beta * vocab_size
        )
        theta = (topic_counts + self.alpha) / (
            topic_counts.sum() + self.alpha * self._num_topics
        )
        return float(
            np.sum(topic_word_counts * np.log(phi))
            + np.sum(topic_counts * np.log(theta))
        )

    # -- document inference ------------------------------------------------------

    def infer_document(self, tokens: Sequence[str]) -> np.ndarray:
        """Topic mixture of a (short) document via biterm posterior averaging."""
        if self._topic_word is None or self._topic_mixture is None:
            raise RuntimeError("BitermTopicModel has not been fitted yet")
        word_ids = self._vocabulary.encode(tokens)
        biterms = extract_biterms(word_ids)
        z = self._num_topics
        if not biterms:
            # Fall back to single-word posterior, or uniform for empty docs.
            if not word_ids:
                return np.full(z, 1.0 / z)
            posterior = np.zeros(z)
            for word_id in word_ids:
                weights = self._topic_mixture * self._topic_word[:, word_id]
                total = weights.sum()
                if total > 0:
                    posterior += weights / total
            total = posterior.sum()
            return posterior / total if total > 0 else np.full(z, 1.0 / z)

        posterior = np.zeros(z)
        for w1, w2 in biterms:
            weights = (
                self._topic_mixture
                * self._topic_word[:, w1]
                * self._topic_word[:, w2]
            )
            total = weights.sum()
            if total > 0:
                posterior += weights / total
        total = posterior.sum()
        return posterior / total if total > 0 else np.full(z, 1.0 / z)

    # -- oracle interface ----------------------------------------------------------

    @property
    def topic_word_matrix(self) -> np.ndarray:
        if self._topic_word is None:
            raise RuntimeError("BitermTopicModel has not been fitted yet")
        return self._topic_word

    @property
    def topic_mixture(self) -> np.ndarray:
        """The corpus-level topic mixture ``p(i)``."""
        if self._topic_mixture is None:
            raise RuntimeError("BitermTopicModel has not been fitted yet")
        return self._topic_mixture

    @property
    def training_report(self) -> BTMTrainingReport:
        """The report of the last :meth:`fit` call."""
        if self._report is None:
            raise RuntimeError("BitermTopicModel has not been fitted yet")
        return self._report

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._topic_word is not None
