"""Pure-NumPy reference implementations of every built-in kernel.

These are the always-available, always-correct versions: the compiled
Numba variants in :mod:`repro.kernels.numba_impl` must match them within
1e-9 (equivalence-tested with hypothesis, like the columnar-store and
shm-transport migrations before them).  Each function is a pure array
transformation — no store or processor objects cross the seam, so the
same signatures compile unchanged under ``@njit``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import numpy.typing as npt

from repro.kernels.segments import segment_sums


def delta_topic_sums(
    profile_matrix: npt.NDArray[np.float64],
    indices: npt.NDArray[np.intp],
    counts: npt.NDArray[np.intp],
) -> npt.NDArray[np.float64]:
    """Gather + segmented-reduce over the store's ``P[rows, z]`` matrix.

    For each touched parent ``j`` (whose follower rows occupy segment
    ``j`` of ``indices``, ``counts[j]`` rows long) the result row is
    ``Σ_{f ∈ followers(j)} P[f]`` — the follower-probability sums behind
    the δ-recompute ``δ_i = λ·R_i + ((1−λ)/η)·(p_i·Σ p_i(f))``.
    """
    gathered: npt.NDArray[np.float64] = profile_matrix[indices]
    return segment_sums(gathered, counts)


def ranked_merge(
    scores: npt.NDArray[np.float64], keys: npt.NDArray[np.int64]
) -> npt.NDArray[np.intp]:
    """Sort order of ranked-list entries: score descending, key ascending.

    Returns the permutation ``order`` such that
    ``zip(scores[order], keys[order])`` is the merged ranked list.  The
    ascending-key tie-break is the library-wide determinism contract of
    :class:`~repro.utils.sorted_list.DescendingSortedList`.
    """
    order: npt.NDArray[np.intp] = np.lexsort((keys, -scores))
    return order


def window_scan(
    element_ids: npt.NDArray[np.int64],
    in_window: npt.NDArray[np.bool_],
    timestamps: npt.NDArray[np.int64],
    last_activity: npt.NDArray[np.int64],
    window_start: int,
) -> Tuple[npt.NDArray[np.intp], npt.NDArray[np.intp]]:
    """Fused expiry + free-row-recycling scan over the store columns.

    One pass computes both row sets the window advance needs: window
    members posted before ``window_start`` (they leave ``W_t``) and live
    rows whose last activity predates ``window_start`` (their rows are
    recycled).  Columns arrive pre-sliced to the store's high-water mark.
    """
    expired: npt.NDArray[np.intp] = np.nonzero(
        in_window & (timestamps < window_start)
    )[0]
    inactive: npt.NDArray[np.intp] = np.nonzero(
        (element_ids >= 0) & (last_activity < window_start)
    )[0]
    return expired, inactive


def positive_counts(
    weights: npt.NDArray[np.float64], counts: npt.NDArray[np.intp]
) -> npt.NDArray[np.intp]:
    """Per-segment count of strictly positive weights.

    The profile builder's per-topic candidate counting: segment ``j``
    covers ``counts[j]`` consecutive weights, and the result is how many
    of them survive thresholding (``> 0``).
    """
    flags: npt.NDArray[np.intp] = (weights > 0.0).astype(np.intp)
    return segment_sums(flags, counts)
