"""The process-wide kernel registry and backend selection.

Every hot inner loop of the reproduction — the touched-parent
δ-recompute, ranked-list merging, window-expiry scanning, profile
thresholding — runs behind a named :class:`KernelHandle` resolved
through this registry, mirroring the execution-backend, transport and
stream-source registries.  Each handle carries two implementations:

* a **pure-NumPy reference** (always present, always correct), and
* an optional **compiled** variant (Numba ``@njit``), attached lazily
  the first time the compiled path is requested and the ``numba``
  package is importable.

Selection is process-wide (kernels sit far below the per-engine
configuration layers) and driven by :func:`configure_kernels` with one
of three modes:

``auto``
    Use the compiled implementation when Numba is importable, silently
    fall back to the reference otherwise.  The default — zero new hard
    dependencies.
``numba``
    Require the compiled path; raises :class:`ValueError` when Numba is
    not installed.
``numpy``
    Force the reference implementations (useful for A/B benchmarking
    and equivalence testing).

Every call through a handle is timed (``time.perf_counter_ns``) into
per-kernel cumulative counters surfaced by :func:`kernel_stats` — the
payload behind ``KSIREngine.stats()["kernels"]``, the server's
``ksir_kernel_*`` gauges and the ``repro-ksir bench profile`` table.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

#: Kernel selection modes accepted by :func:`configure_kernels`.
KERNEL_CHOICES: Tuple[str, ...] = ("auto", "numba", "numpy")

#: A kernel implementation: pure array in, array out.
KernelImpl = Callable[..., Any]


class KernelHandle:
    """One named kernel: reference + optional compiled impl, with timers.

    Handles are created by :func:`register_kernel` and looked up with
    :func:`get_kernel`; their identity is stable across re-registration,
    so call sites may cache the handle at module import time.  Calling
    the handle dispatches to the active implementation and accumulates
    wall-time nanoseconds and call counts.
    """

    __slots__ = ("name", "numpy_impl", "numba_impl", "calls", "total_ns")

    def __init__(self, name: str, numpy_impl: KernelImpl) -> None:
        self.name = name
        self.numpy_impl = numpy_impl
        self.numba_impl: Optional[KernelImpl] = None
        self.calls = 0
        self.total_ns = 0

    @property
    def backend(self) -> str:
        """The implementation this handle would dispatch to right now."""
        if _compiled_active() and self.numba_impl is not None:
            return "numba"
        return "numpy"

    def __call__(self, *args: Any) -> Any:
        if _compiled_active() and self.numba_impl is not None:
            impl = self.numba_impl
        else:
            impl = self.numpy_impl
        started = perf_counter_ns()
        try:
            return impl(*args)
        finally:
            self.calls += 1
            self.total_ns += perf_counter_ns() - started

    def reset(self) -> None:
        """Zero this kernel's timing counters."""
        self.calls = 0
        self.total_ns = 0

    def __repr__(self) -> str:
        return (
            f"KernelHandle({self.name!r}, backend={self.backend!r}, "
            f"calls={self.calls}, total_ns={self.total_ns})"
        )


_REGISTRY: Dict[str, KernelHandle] = {}

#: The configured selection mode (one of :data:`KERNEL_CHOICES`).
_MODE: str = "auto"

#: Tri-state Numba probe: ``None`` = not yet attempted.
_NUMBA_READY: Optional[bool] = None


def register_kernel(
    name: str, numpy_impl: KernelImpl, numba_impl: Optional[KernelImpl] = None
) -> KernelHandle:
    """Register (or re-register) a kernel under a canonical name.

    Re-registering an existing name swaps the implementations **in
    place** — the handle object is reused, so call sites that cached it
    pick up the replacement (useful for tests and instrumented builds).
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("kernel names must be non-empty")
    handle = _REGISTRY.get(key)
    if handle is None:
        handle = KernelHandle(key, numpy_impl)
        _REGISTRY[key] = handle
    else:
        handle.numpy_impl = numpy_impl
    if numba_impl is not None:
        handle.numba_impl = numba_impl
    return handle


def attach_numba(name: str, numba_impl: KernelImpl) -> None:
    """Attach a compiled implementation to an already-registered kernel."""
    get_kernel(name).numba_impl = numba_impl


def get_kernel(name: str) -> KernelHandle:
    """Look up a registered kernel handle by name."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError as error:
        available = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        raise KeyError(
            f"unknown kernel {name!r}; registered: {available}"
        ) from error


def kernel_names() -> Tuple[str, ...]:
    """The registered kernel names, sorted."""
    return tuple(sorted(_REGISTRY))


# -- backend selection ----------------------------------------------------------------


def _numba_ready() -> bool:
    """Probe (once) whether compiled kernels can be installed."""
    global _NUMBA_READY
    if _NUMBA_READY is None:
        try:
            from repro.kernels import numba_impl

            numba_impl.install()
        except Exception:
            _NUMBA_READY = False
        else:
            _NUMBA_READY = True
    return _NUMBA_READY


def _compiled_active() -> bool:
    return _MODE != "numpy" and _numba_ready()


def configure_kernels(mode: str) -> str:
    """Select the process-wide kernel backend; returns the resolved backend.

    ``mode`` is one of :data:`KERNEL_CHOICES`.  ``"numba"`` raises
    :class:`ValueError` when Numba is not importable; ``"auto"`` falls
    back to the NumPy reference silently.  The return value is the
    backend actually in effect (``"numba"`` or ``"numpy"``).
    """
    global _MODE
    key = mode.strip().lower()
    if key not in KERNEL_CHOICES:
        available = ", ".join(KERNEL_CHOICES)
        raise ValueError(f"unknown kernel mode {mode!r}; available: {available}")
    if key == "numba" and not _numba_ready():
        raise ValueError(
            "kernel mode 'numba' requires the numba package "
            "(pip install 'repro-ksir[kernels]'); use 'auto' to fall back "
            "to the NumPy reference when it is absent"
        )
    _MODE = key
    return active_kernel_backend()


def kernel_mode() -> str:
    """The configured selection mode (``auto``/``numba``/``numpy``)."""
    return _MODE


def active_kernel_backend() -> str:
    """The backend actually dispatching right now: ``numba`` or ``numpy``."""
    return "numba" if _compiled_active() else "numpy"


def numba_available() -> bool:
    """Whether compiled kernels can be (or have been) installed."""
    return _numba_ready()


@contextmanager
def use_kernels(mode: str) -> Iterator[str]:
    """Temporarily select a kernel mode (tests and A/B benchmarks)."""
    previous = _MODE
    resolved = configure_kernels(mode)
    try:
        yield resolved
    finally:
        configure_kernels(previous)


# -- profiling -------------------------------------------------------------------------


def kernel_stats() -> Dict[str, Any]:
    """Cumulative per-kernel timing since the last reset.

    The mapping feeds ``KSIREngine.stats()["kernels"]`` and the server's
    ``ksir_kernel_*`` gauges::

        {"backend": "numpy",
         "per_kernel": {"ranked_merge": {"calls": 12, "total_ns": 83210}, ...}}

    Counters are process-wide: every engine in the process shares the
    kernel layer, exactly like the registry itself.
    """
    per_kernel: Dict[str, Dict[str, int]] = {
        name: {"calls": handle.calls, "total_ns": handle.total_ns}
        for name, handle in sorted(_REGISTRY.items())
    }
    return {"backend": active_kernel_backend(), "per_kernel": per_kernel}


def reset_kernel_stats() -> None:
    """Zero every kernel's timing counters."""
    for handle in _REGISTRY.values():
        handle.reset()


def format_kernel_stats(stats: Optional[Dict[str, Any]] = None) -> str:
    """Render :func:`kernel_stats` as the aligned table ``bench profile`` prints."""
    payload = kernel_stats() if stats is None else stats
    per_kernel = payload.get("per_kernel", {})
    header = f"{'kernel':<24} {'calls':>10} {'total_ms':>12} {'ns/call':>12}"
    lines = [f"kernel backend: {payload.get('backend', '?')}", header, "-" * len(header)]
    for name, counters in sorted(per_kernel.items()):
        calls = int(counters.get("calls", 0))
        total_ns = int(counters.get("total_ns", 0))
        per_call = total_ns / calls if calls else 0.0
        lines.append(
            f"{name:<24} {calls:>10} {total_ns / 1e6:>12.3f} {per_call:>12.0f}"
        )
    return "\n".join(lines)
