"""Native-speed hot-path kernels behind a registry seam.

The kernel layer gives every hot inner loop of the reproduction two
interchangeable implementations — a pure-NumPy reference and an optional
Numba-compiled variant — behind one :func:`get_kernel` lookup, mirroring
the execution-backend, transport and stream-source registries:

======================  ==============================================
kernel                  hot path it backs
======================  ==============================================
``delta_topic_sums``    touched-parent δ-recompute (gather + segmented
                        reduce over the store's ``P[rows, z]`` matrix)
``ranked_merge``        ``DescendingSortedList.bulk_insert`` /
                        ``RankedListIndex.bulk_update`` merge order
``window_scan``         window-expiry mask + free-row recycling scan
``positive_counts``     per-topic candidate counting in the profile
                        builder (thresholded segmented reduce)
======================  ==============================================

Selection is process-wide via :func:`configure_kernels` (driven by the
``kernels`` section of :class:`~repro.api.config.EngineConfig` and the
``--kernels`` CLI flag): ``auto`` compiles when Numba is importable and
silently falls back otherwise, so the package keeps zero new hard
dependencies.  Every call is timed into :func:`kernel_stats`, the
payload behind ``KSIREngine.stats()["kernels"]``, the ``ksir_kernel_*``
Prometheus gauges and ``repro-ksir bench profile``.

Custom kernels register exactly like custom backends::

    from repro.kernels import register_kernel

    register_kernel("my_kernel", my_numpy_reference, my_compiled_variant)
"""

from repro.kernels import numpy_impl
from repro.kernels.registry import (
    KERNEL_CHOICES,
    KernelHandle,
    active_kernel_backend,
    configure_kernels,
    format_kernel_stats,
    get_kernel,
    kernel_mode,
    kernel_names,
    kernel_stats,
    numba_available,
    register_kernel,
    reset_kernel_stats,
    use_kernels,
)
from repro.kernels.segments import segment_sums

register_kernel("delta_topic_sums", numpy_impl.delta_topic_sums)
register_kernel("ranked_merge", numpy_impl.ranked_merge)
register_kernel("window_scan", numpy_impl.window_scan)
register_kernel("positive_counts", numpy_impl.positive_counts)

__all__ = [
    "KERNEL_CHOICES",
    "KernelHandle",
    "active_kernel_backend",
    "configure_kernels",
    "format_kernel_stats",
    "get_kernel",
    "kernel_mode",
    "kernel_names",
    "kernel_stats",
    "numba_available",
    "register_kernel",
    "reset_kernel_stats",
    "segment_sums",
    "use_kernels",
]
