"""Numba-compiled kernel variants (the optional ``[kernels]`` extra).

Importing this module raises :class:`ImportError` when ``numba`` is not
installed — the registry probes it exactly once and falls back to the
NumPy reference implementations, so the package keeps zero new hard
dependencies.  Each function below mirrors its reference twin in
:mod:`repro.kernels.numpy_impl` signature-for-signature; the compiled
bodies fuse the gather/reduce/scan passes into single loops (no
temporary arrays) and are cached on disk (``cache=True``) so the JIT
cost is paid once per machine, not once per process.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable, Tuple

import numpy as np

# Imported dynamically so this module type-checks without numba stubs;
# the ImportError when the extra is absent is the gating signal.
_numba = import_module("numba")

_njit: Callable[..., Any] = _numba.njit


@_njit(cache=True)
def _delta_topic_sums(
    profile_matrix: Any, indices: Any, counts: Any
) -> Any:  # pragma: no cover - exercised only when numba is installed
    num_segments = counts.shape[0]
    num_topics = profile_matrix.shape[1]
    out = np.zeros((num_segments, num_topics), dtype=np.float64)
    position = 0
    for segment in range(num_segments):
        for _ in range(counts[segment]):
            row = indices[position]
            for topic in range(num_topics):
                out[segment, topic] += profile_matrix[row, topic]
            position += 1
    return out


@_njit(cache=True)
def _ranked_merge(
    scores: Any, keys: Any
) -> Any:  # pragma: no cover - exercised only when numba is installed
    # Two stable sorts == lexsort: order by key, then (stably) by -score,
    # yielding score-descending with the ascending-key tie-break.
    size = scores.shape[0]
    by_key = np.argsort(keys, kind="mergesort")
    negated = np.empty(size, dtype=np.float64)
    for position in range(size):
        negated[position] = -scores[by_key[position]]
    by_score = np.argsort(negated, kind="mergesort")
    order = np.empty(size, dtype=np.intp)
    for position in range(size):
        order[position] = by_key[by_score[position]]
    return order


@_njit(cache=True)
def _window_scan(
    element_ids: Any,
    in_window: Any,
    timestamps: Any,
    last_activity: Any,
    window_start: int,
) -> Any:  # pragma: no cover - exercised only when numba is installed
    limit = element_ids.shape[0]
    expired = np.empty(limit, dtype=np.intp)
    inactive = np.empty(limit, dtype=np.intp)
    num_expired = 0
    num_inactive = 0
    for row in range(limit):
        if in_window[row] and timestamps[row] < window_start:
            expired[num_expired] = row
            num_expired += 1
        if element_ids[row] >= 0 and last_activity[row] < window_start:
            inactive[num_inactive] = row
            num_inactive += 1
    return expired[:num_expired].copy(), inactive[:num_inactive].copy()


@_njit(cache=True)
def _positive_counts(
    weights: Any, counts: Any
) -> Any:  # pragma: no cover - exercised only when numba is installed
    num_segments = counts.shape[0]
    out = np.zeros(num_segments, dtype=np.intp)
    position = 0
    for segment in range(num_segments):
        total = 0
        for _ in range(counts[segment]):
            if weights[position] > 0.0:
                total += 1
            position += 1
        out[segment] = total
    return out


#: ``kernel name -> compiled implementation`` installed by :func:`install`.
COMPILED: Tuple[Tuple[str, Callable[..., Any]], ...] = (
    ("delta_topic_sums", _delta_topic_sums),
    ("ranked_merge", _ranked_merge),
    ("window_scan", _window_scan),
    ("positive_counts", _positive_counts),
)


def install() -> None:
    """Attach every compiled implementation to its registered kernel."""
    from repro.kernels.registry import attach_numba

    for name, impl in COMPILED:
        attach_numba(name, impl)
