"""The shared segmented-reduction helper behind the hot kernels.

``np.add.reduceat`` has a well-known sharp edge: an empty segment makes
``reduceat`` return the *next* row instead of zero, so every call site
historically re-implemented the same guard (compute segment starts, mask
the empty segments, fill a zero output selectively).  That idiom was
duplicated ad hoc in the processor's δ-recompute and the profile
builder's candidate counting; :func:`segment_sums` is now the single
canonical version — and the NumPy reference implementation of the
``delta_topic_sums`` and ``positive_counts`` kernels.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt


def segment_sums(
    data: npt.NDArray[Any], counts: npt.NDArray[np.intp]
) -> npt.NDArray[Any]:
    """Sum consecutive row segments of ``data``, tolerating empty segments.

    ``counts[j]`` is the number of leading-to-trailing rows of ``data``
    belonging to segment ``j`` (so ``counts.sum() == data.shape[0]``).
    Returns an array of shape ``(len(counts),) + data.shape[1:]`` whose
    ``j``-th entry is the element-wise sum of segment ``j`` — **zero**
    for empty segments, which is where raw ``np.add.reduceat`` goes
    wrong.  The dtype of ``data`` is preserved.
    """
    out_shape = (counts.shape[0],) + data.shape[1:]
    out: npt.NDArray[Any] = np.zeros(out_shape, dtype=data.dtype)
    if counts.shape[0] == 0 or data.shape[0] == 0:
        return out
    starts = np.cumsum(counts) - counts
    nonempty = counts > 0
    if bool(nonempty.any()):
        out[nonempty] = np.add.reduceat(data, starts[nonempty], axis=0)
    return out
