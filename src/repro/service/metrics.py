"""Service-level metrics for the standing-query engine.

The serving engine distinguishes *opportunities* (query × bucket pairs: every
registered standing query could be re-evaluated after every ingested bucket)
from *evaluations* (the pairs actually re-run).  The gap between the two is
what incremental maintenance buys, so the report centres on:

* the **re-eval ratio** — evaluations / opportunities;
* the **result-cache hit rate** — the complementary fraction of pairs served
  from the per-query result cache (with staleness metadata);
* the **snapshot-cache hit rate** — how often an evaluation reused the shared
  per-bucket :class:`~repro.core.scoring.ScoringContext`;
* **latency percentiles** (p50/p99) of individual query evaluations and the
  sustained **maintenance throughput** in pairs per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.utils.timing import TimingStats


def timer_summary(stats: TimingStats) -> Dict[str, float]:
    """A plain-JSON summary of one :class:`TimingStats` accumulator.

    Counters and percentiles only (the raw samples stay private), so the
    serving tier can expose timers over ``/metrics`` and ``/telemetry``
    without reaching into sample lists.
    """
    samples = stats.samples_ms
    return {
        "count": float(stats.count),
        "total_ms": float(stats.total_ms),
        "mean_ms": float(stats.mean_ms),
        "p50_ms": percentile(samples, 0.50),
        "p95_ms": percentile(samples, 0.95),
        "p99_ms": percentile(samples, 0.99),
        "max_ms": float(stats.max_ms),
    }


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty).

    ``fraction`` is in ``[0, 1]``; ``percentile(xs, 0.5)`` is the median
    under the nearest-rank convention.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class ServiceMetrics:
    """Counters and timers accumulated by :class:`~repro.service.engine.ServiceEngine`.

    Attributes
    ----------
    eval_latency:
        Per-evaluation wall-clock times (one sample per re-run pair).
    maintenance_timer:
        Per-bucket standing-query maintenance times (evaluation phase only;
        stream ingestion is tracked by the processor's own timer).
    buckets:
        Buckets ingested while serving.
    evaluations:
        Query × bucket pairs actually re-evaluated.
    reused:
        Query × bucket pairs served from the per-query result cache.
    full_reevals:
        Buckets on which the scheduler fell back to re-evaluating every
        standing query (window-expiry churn or near-total dirtiness).
    expired_queries:
        Standing queries dropped because their TTL elapsed.
    snapshot_hits:
        Evaluations that reused the shared per-bucket scoring snapshot.
    snapshot_misses:
        Evaluations that had to materialise a fresh snapshot.
    """

    eval_latency: TimingStats = field(
        default_factory=lambda: TimingStats(name="eval-latency")
    )
    maintenance_timer: TimingStats = field(
        default_factory=lambda: TimingStats(name="bucket-maintenance")
    )
    buckets: int = 0
    evaluations: int = 0
    reused: int = 0
    full_reevals: int = 0
    expired_queries: int = 0
    snapshot_hits: int = 0
    snapshot_misses: int = 0

    # -- derived rates ----------------------------------------------------------------

    @property
    def opportunities(self) -> int:
        """Query × bucket pairs the engine was responsible for."""
        return self.evaluations + self.reused

    @property
    def reeval_ratio(self) -> float:
        """Fraction of pairs actually re-evaluated (1.0 for the naive mode)."""
        if self.opportunities == 0:
            return 0.0
        return self.evaluations / self.opportunities

    @property
    def result_cache_hit_rate(self) -> float:
        """Fraction of pairs served from the per-query result cache."""
        if self.opportunities == 0:
            return 0.0
        return self.reused / self.opportunities

    @property
    def snapshot_hit_rate(self) -> float:
        """Fraction of snapshot lookups answered from the shared cache."""
        lookups = self.snapshot_hits + self.snapshot_misses
        if lookups == 0:
            return 0.0
        return self.snapshot_hits / lookups

    @property
    def latency_p50_ms(self) -> float:
        """Median evaluation latency in milliseconds."""
        return percentile(self.eval_latency.samples_ms, 0.50)

    @property
    def latency_p99_ms(self) -> float:
        """99th-percentile evaluation latency in milliseconds."""
        return percentile(self.eval_latency.samples_ms, 0.99)

    @property
    def maintenance_seconds(self) -> float:
        """Total standing-query maintenance time in seconds."""
        return self.maintenance_timer.total_ms / 1000.0

    @property
    def queries_per_sec(self) -> float:
        """Standing-query results maintained per second of maintenance time.

        Counts every query × bucket pair (cached pairs included: keeping a
        result fresh *or* provably unchanged is the service's unit of work),
        so the incremental and naive modes are compared on equal footing.
        """
        seconds = self.maintenance_seconds
        if seconds <= 0.0:
            return 0.0
        return self.opportunities / seconds

    @property
    def evaluations_per_sec(self) -> float:
        """Re-evaluated pairs per second of maintenance time."""
        seconds = self.maintenance_seconds
        if seconds <= 0.0:
            return 0.0
        return self.evaluations / seconds

    # -- snapshot export -------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of every counter and derived rate.

        Plain ints/floats only (timers are exported as percentile
        summaries, never as raw sample lists), so ``/metrics`` and
        ``/telemetry`` can serialise the serving state without touching
        private fields.  The snapshot is a value copy: mutating the
        returned dictionary never affects the live metrics.
        """
        return {
            "buckets": self.buckets,
            "evaluations": self.evaluations,
            "reused": self.reused,
            "opportunities": self.opportunities,
            "full_reevals": self.full_reevals,
            "expired_queries": self.expired_queries,
            "snapshot_hits": self.snapshot_hits,
            "snapshot_misses": self.snapshot_misses,
            "reeval_ratio": float(self.reeval_ratio),
            "result_cache_hit_rate": float(self.result_cache_hit_rate),
            "snapshot_hit_rate": float(self.snapshot_hit_rate),
            "queries_per_sec": float(self.queries_per_sec),
            "evaluations_per_sec": float(self.evaluations_per_sec),
            "maintenance_seconds": float(self.maintenance_seconds),
            "eval_latency": timer_summary(self.eval_latency),
            "maintenance_timer": timer_summary(self.maintenance_timer),
        }

    # -- reporting -------------------------------------------------------------------------

    def render(self) -> str:
        """The metrics report printed by ``repro-ksir serve``."""
        lines = [
            "service metrics",
            f"  buckets ingested     {self.buckets}",
            (
                f"  query-bucket pairs   {self.opportunities}"
                f" (re-eval ratio {self.reeval_ratio:.3f},"
                f" result-cache hit rate {self.result_cache_hit_rate * 100.0:.1f}%)"
            ),
            (
                f"  evaluations          {self.evaluations}"
                f" ({self.full_reevals} full re-eval buckets,"
                f" {self.expired_queries} queries expired by TTL)"
            ),
            (
                f"  eval latency         p50 {self.latency_p50_ms:.3f} ms"
                f" | p99 {self.latency_p99_ms:.3f} ms"
                f" | mean {self.eval_latency.mean_ms:.3f} ms"
            ),
            (
                f"  throughput           {self.queries_per_sec:.1f} pairs/sec"
                f" ({self.evaluations_per_sec:.1f} evals/sec,"
                f" maintenance {self.maintenance_seconds:.3f} s)"
            ),
            (
                f"  snapshot cache       hit rate {self.snapshot_hit_rate * 100.0:.1f}%"
                f" ({self.snapshot_hits} hits, {self.snapshot_misses} misses)"
            ),
        ]
        return "\n".join(lines)
