"""repro.service — continuous multi-query serving over the k-SIR processor.

The serving layer turns the one-shot query processor into a standing-query
system: many registered :class:`~repro.service.registry.StandingQuery` users
share one sliding window, one scoring snapshot per bucket and an incremental
maintenance loop that re-evaluates only the queries whose topic support
actually changed.

* :class:`QueryRegistry` / :class:`StandingQuery` — the registered queries
  with per-query algorithm/ε/TTL options and a topic-inverted index;
* :class:`SnapshotCache` — one shared scoring snapshot per ingested bucket;
* :class:`IncrementalScheduler` / :class:`SchedulePlan` — maps the ranked
  lists' per-topic dirty sets to the affected queries, falling back to full
  re-evaluation on window-expiry churn;
* :class:`ServiceEngine` / :class:`StandingResult` — the façade wiring it
  all to a thread-pool evaluator, a per-query result cache with staleness
  metadata and :class:`ServiceMetrics`.
"""

from repro.service.engine import ServiceEngine, ServiceUpdate, StandingResult
from repro.service.metrics import ServiceMetrics, percentile, timer_summary
from repro.service.registry import QueryRegistry, StandingQuery
from repro.service.scheduler import IncrementalScheduler, SchedulePlan
from repro.service.snapshot_cache import SnapshotCache

__all__ = [
    "IncrementalScheduler",
    "QueryRegistry",
    "SchedulePlan",
    "ServiceEngine",
    "ServiceMetrics",
    "ServiceUpdate",
    "SnapshotCache",
    "StandingQuery",
    "StandingResult",
    "percentile",
    "timer_summary",
]
