"""Standing k-SIR queries and the registry the serving engine maintains.

A :class:`StandingQuery` wraps a :class:`~repro.core.query.KSIRQuery` with
the per-query serving options — which algorithm answers it, its ``ε`` and an
optional TTL in buckets after which the registry drops it.  The
:class:`QueryRegistry` keeps the standing queries plus an inverted
topic → query-ids index, which is what lets the incremental scheduler map the
ranked lists' per-topic dirty sets to the affected queries in time
proportional to the dirty topics rather than to the registry size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.core.query import KSIRQuery
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class StandingQuery:
    """One registered standing query and its serving options.

    Parameters
    ----------
    query_id:
        Registry-unique identifier.
    query:
        The underlying k-SIR query (``k`` and the topic vector ``x``).
    algorithm:
        Registry name of the algorithm answering this query; ``None`` falls
        back to the processor's default.
    epsilon:
        ``ε`` for ε-parameterised algorithms; ``None`` falls back to the
        processor's default.
    ttl_buckets:
        Serve the query for this many ingested buckets, then drop it;
        ``None`` keeps it until it is unregistered.  A query registered at
        bucket ``B`` is evaluated on buckets ``B+1 .. B+ttl_buckets`` (so
        ``ttl_buckets=1`` still yields one answer) and pruned on the next.
    registered_at_bucket:
        ``buckets_processed`` of the processor when the query was registered
        (the TTL countdown starts here).
    """

    query_id: str
    query: KSIRQuery
    algorithm: Optional[str] = None
    epsilon: Optional[float] = None
    ttl_buckets: Optional[int] = None
    registered_at_bucket: int = 0

    def __post_init__(self) -> None:
        if self.ttl_buckets is not None:
            require_positive(self.ttl_buckets, "ttl_buckets")
        if self.registered_at_bucket < 0:
            raise ValueError("registered_at_bucket must be non-negative")

    @property
    def topics(self) -> Tuple[int, ...]:
        """The query's topic support (non-zero entries of ``x``)."""
        return self.query.nonzero_topics

    def expired(self, bucket: int) -> bool:
        """Whether the TTL has elapsed at processor bucket ``bucket``.

        Strictly greater, so the query is still served on its last TTL
        bucket (pruning runs before evaluation in the engine's loop).
        """
        if self.ttl_buckets is None:
            return False
        return bucket > self.registered_at_bucket + self.ttl_buckets

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dictionary (used by the checkpoint layer)."""
        return {
            "query_id": self.query_id,
            "query": self.query.to_dict(),
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "ttl_buckets": self.ttl_buckets,
            "registered_at_bucket": self.registered_at_bucket,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StandingQuery":
        """Inverse of :meth:`to_dict`."""
        algorithm = payload.get("algorithm")
        epsilon = payload.get("epsilon")
        ttl_buckets = payload.get("ttl_buckets")
        return cls(
            query_id=str(payload["query_id"]),
            query=KSIRQuery.from_dict(payload["query"]),
            algorithm=None if algorithm is None else str(algorithm),
            epsilon=None if epsilon is None else float(epsilon),
            ttl_buckets=None if ttl_buckets is None else int(ttl_buckets),
            registered_at_bucket=int(payload.get("registered_at_bucket", 0)),
        )


class QueryRegistry:
    """The set of standing queries, indexed by id and by topic support."""

    def __init__(self) -> None:
        self._queries: Dict[str, StandingQuery] = {}
        self._by_topic: Dict[int, Set[str]] = {}
        self._counter = 0

    # -- registration ------------------------------------------------------------------

    def register(
        self,
        query: KSIRQuery,
        query_id: Optional[str] = None,
        algorithm: Optional[str] = None,
        epsilon: Optional[float] = None,
        ttl_buckets: Optional[int] = None,
        at_bucket: int = 0,
    ) -> StandingQuery:
        """Register a query and return its :class:`StandingQuery` record.

        ``query_id`` defaults to a fresh ``"q<n>"``; passing an id that is
        already registered raises ``ValueError``.
        """
        if query_id is None:
            # Skip over ids the caller registered explicitly.
            while f"q{self._counter:05d}" in self._queries:
                self._counter += 1
            query_id = f"q{self._counter:05d}"
            self._counter += 1
        if query_id in self._queries:
            raise ValueError(f"query id {query_id!r} is already registered")
        standing = StandingQuery(
            query_id=query_id,
            query=query,
            algorithm=algorithm,
            epsilon=epsilon,
            ttl_buckets=ttl_buckets,
            registered_at_bucket=at_bucket,
        )
        self._queries[query_id] = standing
        for topic in standing.topics:
            self._by_topic.setdefault(topic, set()).add(query_id)
        return standing

    def unregister(self, query_id: str) -> bool:
        """Remove a standing query; returns whether it was registered."""
        standing = self._queries.pop(query_id, None)
        if standing is None:
            return False
        for topic in standing.topics:
            members = self._by_topic.get(topic)
            if members is not None:
                members.discard(query_id)
                if not members:
                    del self._by_topic[topic]
        return True

    def prune_expired(self, bucket: int) -> Tuple[StandingQuery, ...]:
        """Unregister every query whose TTL elapsed; returns the dropped ones."""
        expired = tuple(
            standing for standing in self._queries.values() if standing.expired(bucket)
        )
        for standing in expired:
            self.unregister(standing.query_id)
        return expired

    # -- checkpoint state ---------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of the registry (order preserved)."""
        return {
            "counter": self._counter,
            "queries": [standing.to_dict() for standing in self._queries.values()],
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this registry."""
        self._queries.clear()
        self._by_topic.clear()
        self._counter = int(state.get("counter", 0))
        for payload in state["queries"]:
            standing = StandingQuery.from_dict(payload)
            self._queries[standing.query_id] = standing
            for topic in standing.topics:
                self._by_topic.setdefault(topic, set()).add(standing.query_id)

    # -- lookups -----------------------------------------------------------------------------

    def get(self, query_id: str) -> StandingQuery:
        """The standing query with the given id (KeyError when absent)."""
        return self._queries[query_id]

    def ids(self) -> Tuple[str, ...]:
        """Every registered query id, in registration order."""
        return tuple(self._queries.keys())

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._queries

    def __iter__(self) -> Iterator[StandingQuery]:
        return iter(tuple(self._queries.values()))

    def queries_on_topic(self, topic: int) -> FrozenSet[str]:
        """Ids of the standing queries with positive interest in ``topic``."""
        return frozenset(self._by_topic.get(topic, ()))

    def affected_by(self, dirty_topics: Iterable[int]) -> Set[str]:
        """Ids of the standing queries whose support meets the dirty topics."""
        affected: Set[str] = set()
        for topic in dirty_topics:
            affected.update(self._by_topic.get(topic, ()))
        return affected
