"""The continuous multi-query serving engine.

:class:`ServiceEngine` is the façade of the ``repro.service`` layer: it owns
an execution backend — a single-node
:class:`~repro.core.processor.KSIRProcessor` or a sharded
:class:`~repro.cluster.coordinator.ClusterCoordinator` — a
:class:`~repro.service.registry.QueryRegistry` of standing queries, the
shared per-bucket :class:`~repro.service.snapshot_cache.SnapshotCache`
(single-node only), the
:class:`~repro.service.scheduler.IncrementalScheduler` and a thread-pool
evaluator.  Standing queries are backend-transparent: the same registry and
scheduling loop runs over one window or over ``N`` shards, with cluster
evaluations delegated to the coordinator's scatter-gather path.  Driving it
is a two-step loop:

1. :meth:`ingest_bucket` feeds one stream bucket to the processor, drains
   the ranked lists' per-topic dirty sets, prunes TTL-expired queries, asks
   the scheduler which standing queries are affected and re-evaluates only
   those (the naive mode re-runs everything for comparison);
2. :meth:`result` / :meth:`results` read the per-query result cache, with
   staleness metadata saying how many buckets ago each answer was computed.

:meth:`serve_stream` wraps the loop over a whole
:class:`~repro.core.stream.SocialStream`, and :meth:`report` renders the
service metrics (p50/p99 latency, pairs/sec, cache hit rates, re-eval
ratio).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.coordinator import ClusterCoordinator
from repro.core.algorithms import KSIRAlgorithm
from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor
from repro.core.query import KSIRQuery, QueryResult
from repro.core.scoring import KSIRObjective, ScoringContext
from repro.core.stream import SocialStream, replay_stream
from repro.service.metrics import ServiceMetrics
from repro.service.registry import QueryRegistry, StandingQuery
from repro.service.scheduler import IncrementalScheduler, SchedulePlan
from repro.service.snapshot_cache import SnapshotCache
from repro.utils.deprecation import warn_deprecated_construction
from repro.utils.timing import StopWatch


@dataclass(frozen=True)
class StandingResult:
    """A cached standing-query answer plus its staleness metadata.

    Attributes
    ----------
    query_id:
        The standing query this answers.
    result:
        The cached :class:`~repro.core.query.QueryResult`.
    evaluated_at_bucket:
        ``buckets_processed`` when the answer was (re)computed.
    evaluated_at_time:
        Stream time of that bucket (None before any advance).
    evaluations:
        How many times the query has been evaluated so far.
    staleness_buckets:
        Buckets ingested since the answer was computed (0 = fresh).  A
        positive value means the scheduler proved the window changes since
        then could not affect this query's topics — the answer is reused,
        not recomputed.
    """

    query_id: str
    result: QueryResult
    evaluated_at_bucket: int
    evaluated_at_time: Optional[int]
    evaluations: int = 1
    staleness_buckets: int = 0

    @property
    def fresh(self) -> bool:
        """Whether the answer reflects the latest ingested bucket."""
        return self.staleness_buckets == 0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dictionary (used by the checkpoint layer)."""
        return {
            "query_id": self.query_id,
            "result": self.result.to_dict(),
            "evaluated_at_bucket": self.evaluated_at_bucket,
            "evaluated_at_time": self.evaluated_at_time,
            "evaluations": self.evaluations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StandingResult":
        """Inverse of :meth:`to_dict` (staleness is recomputed on access)."""
        evaluated_at_time = payload.get("evaluated_at_time")
        return cls(
            query_id=str(payload["query_id"]),
            result=QueryResult.from_dict(payload["result"]),
            evaluated_at_bucket=int(payload["evaluated_at_bucket"]),
            evaluated_at_time=(
                None if evaluated_at_time is None else int(evaluated_at_time)
            ),
            evaluations=int(payload.get("evaluations", 1)),
        )


@dataclass(frozen=True)
class ServiceUpdate:
    """What one ingested bucket changed, delivered to update listeners.

    The serving tier (``repro.server``) subscribes here to push WebSocket
    deltas: ``updated`` holds the standing results the incremental
    scheduler re-evaluated on this bucket (exactly the queries whose
    dirty-topic epochs intersected their support — everything else is
    provably unchanged and generates no push), and ``expired`` names the
    queries dropped by TTL on this bucket.

    Attributes
    ----------
    bucket:
        ``buckets_processed`` after the ingest.
    time:
        Stream time of the bucket (None before any advance).
    plan:
        The schedule plan that was executed.
    updated:
        Freshly re-evaluated standing results, keyed by query id.
    expired:
        Ids of the standing queries whose TTL elapsed on this bucket.
    """

    bucket: int
    time: Optional[int]
    plan: SchedulePlan
    updated: Mapping[str, StandingResult] = field(default_factory=dict)
    expired: Tuple[str, ...] = ()


#: Signature of a :meth:`ServiceEngine.add_update_listener` callback.
UpdateListener = Callable[[ServiceUpdate], None]


class ServiceEngine:
    """Maintains many standing k-SIR queries over one shared sliding window."""

    def __init__(
        self,
        backend: Union[KSIRProcessor, ClusterCoordinator],
        registry: Optional[QueryRegistry] = None,
        scheduler: Optional[IncrementalScheduler] = None,
        max_workers: int = 4,
        incremental: bool = True,
    ) -> None:
        warn_deprecated_construction(
            "Constructing ServiceEngine directly",
            'repro.api.KSIREngine(topic_model, EngineConfig(backend="service"))',
        )
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._backend = backend
        self._is_cluster = isinstance(backend, ClusterCoordinator)
        # On a single-node columnar backend the incremental scheduler reads
        # dirty topics from the store's per-topic change epochs; the cursor
        # starts at 0 so changes ingested before the engine adopted the
        # processor are still observed (matching the undrained dirty set).
        self._store = None if self._is_cluster else getattr(backend, "store", None)
        self._store_epoch_cursor = 0
        self._registry = registry or QueryRegistry()
        self._scheduler = scheduler or IncrementalScheduler(
            self._registry, backend.topic_model.num_topics
        )
        if self._scheduler.registry is not self._registry:
            raise ValueError("scheduler must be bound to the engine's registry")
        # The shared per-bucket snapshot only exists on a single node; the
        # cluster path evaluates through the coordinator's scatter-gather.
        self._snapshots = None if self._is_cluster else SnapshotCache(backend)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="ksir-eval"
        )
        self._incremental = bool(incremental)
        self._results: Dict[str, StandingResult] = {}
        # Solver instances resolved once per standing query (algorithms are
        # stateless across select() calls, and one query never evaluates
        # concurrently with itself).
        self._solvers: Dict[str, KSIRAlgorithm] = {}
        self._pending: set = set()
        self._metrics = ServiceMetrics()
        self._listeners: List[UpdateListener] = []
        self._closed = False
        # A supplied registry may already hold standing queries: adopt them
        # as never-evaluated so the next bucket gives them a first answer.
        for standing in self._registry:
            self._solvers[standing.query_id] = self._resolve_standing(standing)
            self._pending.add(standing.query_id)

    # -- metadata -----------------------------------------------------------------

    @property
    def backend(self) -> Union[KSIRProcessor, ClusterCoordinator]:
        """The execution backend (single-node processor or cluster)."""
        return self._backend

    @property
    def is_cluster(self) -> bool:
        """Whether standing queries run on the sharded backend."""
        return self._is_cluster

    @property
    def processor(self) -> Optional[KSIRProcessor]:
        """The single-node processor (None when backed by a cluster)."""
        return None if self._is_cluster else self._backend

    @property
    def registry(self) -> QueryRegistry:
        """The standing-query registry."""
        return self._registry

    @property
    def snapshot_cache(self) -> Optional[SnapshotCache]:
        """The shared per-bucket snapshot cache (None on a cluster)."""
        return self._snapshots

    @property
    def metrics(self) -> ServiceMetrics:
        """Accumulated service metrics."""
        return self._metrics

    @property
    def incremental(self) -> bool:
        """Whether incremental maintenance is on (False = naive re-run-all)."""
        return self._incremental

    # -- registration ----------------------------------------------------------------

    def register(
        self,
        query: KSIRQuery,
        query_id: Optional[str] = None,
        algorithm: Optional[str] = None,
        epsilon: Optional[float] = None,
        ttl_buckets: Optional[int] = None,
    ) -> StandingQuery:
        """Register a standing query; it is first evaluated on the next bucket."""
        if query.num_topics != self._backend.topic_model.num_topics:
            raise ValueError(
                f"query vector has {query.num_topics} topics, the processor's "
                f"model has {self._backend.topic_model.num_topics}"
            )
        # Resolve the solver before touching the registry, so an unknown
        # algorithm name fails the registration without leaving an orphan
        # standing query behind.
        solver = self._backend.config.resolve_algorithm(algorithm, epsilon)
        standing = self._registry.register(
            query,
            query_id=query_id,
            algorithm=algorithm,
            epsilon=epsilon,
            ttl_buckets=ttl_buckets,
            at_bucket=self._backend.buckets_processed,
        )
        self._solvers[standing.query_id] = solver
        self._pending.add(standing.query_id)
        return standing

    def unregister(self, query_id: str) -> bool:
        """Drop a standing query and its cached result."""
        removed = self._registry.unregister(query_id)
        self._results.pop(query_id, None)
        self._solvers.pop(query_id, None)
        self._pending.discard(query_id)
        return removed

    # -- update listeners --------------------------------------------------------------

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Subscribe to per-bucket :class:`ServiceUpdate` notifications.

        Listeners fire synchronously at the end of :meth:`ingest_bucket`,
        after the affected standing results were re-evaluated, and must not
        call back into the engine's ingest path.  A listener that raises
        propagates to the ingest caller (the serving tier isolates its
        own failures before this boundary).
        """
        self._listeners.append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> bool:
        """Unsubscribe a listener; returns whether it was registered."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            return False
        return True

    # -- serving loop -----------------------------------------------------------------

    def ingest_bucket(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> SchedulePlan:
        """Ingest one bucket and bring the affected standing results up to date.

        Returns the schedule plan that was executed (useful for inspection
        and tests).
        """
        self._require_open()
        active_before = self._backend.active_count
        self._backend.process_bucket(elements, end_time)
        if self._is_cluster:
            dirty = self._backend.take_dirty_topics()
        elif self._store is not None:
            # Columnar store: read the per-topic change epochs stamped by
            # the ranked-list maintenance since the last bucket (the dirty
            # set is still drained so ad-hoc consumers see one bounded
            # contract regardless of the store representation).
            self._backend.ranked_lists.take_dirty_topics()
            dirty = self._store.dirty_topics_since(self._store_epoch_cursor)
            self._store_epoch_cursor = self._store.epoch
        else:
            dirty = self._backend.ranked_lists.take_dirty_topics()

        bucket = self._backend.buckets_processed
        expired_ids: List[str] = []
        for standing in self._registry.prune_expired(bucket):
            self._results.pop(standing.query_id, None)
            self._solvers.pop(standing.query_id, None)
            self._pending.discard(standing.query_id)
            self._metrics.expired_queries += 1
            expired_ids.append(standing.query_id)

        if self._incremental:
            # The advance may both add and expire elements, so the expiry
            # count is estimated from the active-set balance.
            expired_estimate = max(
                0, active_before + len(elements) - self._backend.active_count
            )
            plan = self._scheduler.plan(
                dirty,
                expired_elements=expired_estimate,
                active_elements=self._backend.active_count,
                pending_ids=tuple(self._pending),
            )
        else:
            plan = SchedulePlan(
                query_ids=tuple(sorted(self._registry.ids())),
                full=len(self._registry) > 0,
                reason="naive",
                dirty_topics=dirty,
            )

        with self._metrics.maintenance_timer.measure():
            self._evaluate_many(plan.query_ids)

        self._metrics.buckets += 1
        self._metrics.evaluations += len(plan.query_ids)
        self._metrics.reused += len(self._registry) - len(plan.query_ids)
        if plan.full and plan.reason != "incremental":
            self._metrics.full_reevals += 1
        if self._listeners:
            update = ServiceUpdate(
                bucket=self._backend.buckets_processed,
                time=self._backend.current_time,
                plan=plan,
                updated={
                    query_id: result
                    for query_id in plan.query_ids
                    if (result := self.result(query_id)) is not None
                },
                expired=tuple(expired_ids),
            )
            for listener in tuple(self._listeners):
                listener(update)
        return plan

    def serve_stream(
        self,
        stream: Union[SocialStream, Iterable[SocialElement]],
        until: Optional[int] = None,
    ) -> None:
        """Replay a whole stream, maintaining the standing queries throughout."""
        replay_stream(
            stream, self._backend.config.bucket_length, self.ingest_bucket, until
        )

    # -- result access -------------------------------------------------------------------

    def result(self, query_id: str) -> Optional[StandingResult]:
        """The cached answer of one standing query, with current staleness.

        The returned record carries a *defensive copy* of the cached
        :class:`~repro.core.query.QueryResult`: callers may mutate the
        result they receive (e.g. annotate ``extras``) without corrupting
        the engine's internal standing-result state.
        """
        stored = self._results.get(query_id)
        if stored is None:
            return None
        staleness = self._backend.buckets_processed - stored.evaluated_at_bucket
        return replace(
            stored,
            result=stored.result.copy(),
            staleness_buckets=max(0, staleness),
        )

    def results(self) -> Dict[str, StandingResult]:
        """Cached answers of every standing query that has been evaluated."""
        return {
            query_id: result
            for query_id in self._registry.ids()
            if (result := self.result(query_id)) is not None
        }

    def report(self) -> str:
        """A human-readable service report (mode, registry size, metrics)."""
        mode = "incremental" if self._incremental else "naive"
        where = (
            f"{self._backend.num_shards}-shard cluster"
            if self._is_cluster
            else "single node"
        )
        header = (
            f"serving {len(self._registry)} standing queries ({mode} maintenance, "
            f"{where}), {self._backend.active_count} active elements at time "
            f"{self._backend.current_time}"
        )
        return header + "\n" + self._metrics.render()

    # -- evaluation -----------------------------------------------------------------------

    def _evaluate_many(self, query_ids: Sequence[str]) -> None:
        if not query_ids:
            return
        standings = [self._registry.get(query_id) for query_id in query_ids]
        if self._is_cluster:
            # Scatter-gather evaluation: each standing query exports bounded
            # candidate pools from every shard and runs the final selection
            # on the coordinator; there is no shared single-node snapshot.
            if len(standings) == 1:
                outcomes = [self._evaluate_on_cluster(standings[0])]
            else:
                outcomes = list(self._pool.map(self._evaluate_on_cluster, standings))
        else:
            # Materialise the shared snapshot once in the caller's thread so
            # the workers never race to build it.
            misses_before = self._snapshots.misses
            context = self._snapshots.context()
            built_fresh = self._snapshots.misses > misses_before
            # Per-evaluation snapshot accounting: at most one evaluation per
            # bucket pays for a fresh snapshot, every other one shares it.
            self._metrics.snapshot_misses += 1 if built_fresh else 0
            self._metrics.snapshot_hits += len(standings) - (1 if built_fresh else 0)
            if len(standings) == 1:
                outcomes = [self._evaluate(standings[0], context)]
            else:
                outcomes = list(
                    self._pool.map(lambda s: self._evaluate(s, context), standings)
                )
        bucket = self._backend.buckets_processed
        time = self._backend.current_time
        for standing, result in zip(standings, outcomes):
            previous = self._results.get(standing.query_id)
            self._results[standing.query_id] = StandingResult(
                query_id=standing.query_id,
                result=result,
                evaluated_at_bucket=bucket,
                evaluated_at_time=time,
                evaluations=1 if previous is None else previous.evaluations + 1,
            )
            self._pending.discard(standing.query_id)

    def _evaluate_on_cluster(self, standing: StandingQuery) -> QueryResult:
        solver = self._solvers.get(standing.query_id)
        if solver is None:
            # Query registered on the registry directly, not via the engine.
            solver = self._solvers[standing.query_id] = self._resolve_standing(standing)
        result = self._backend.query(
            standing.query, algorithm=solver, epsilon=standing.epsilon
        )
        self._metrics.eval_latency.add(result.elapsed_ms / 1000.0)
        return result

    def _resolve_standing(self, standing: StandingQuery) -> KSIRAlgorithm:
        return self._backend.config.resolve_algorithm(
            standing.algorithm, standing.epsilon
        )

    def _evaluate(self, standing: StandingQuery, context: ScoringContext) -> QueryResult:
        solver = self._solvers.get(standing.query_id)
        if solver is None:
            # Query registered on the registry directly, not via the engine.
            solver = self._solvers[standing.query_id] = self._resolve_standing(standing)
        objective = KSIRObjective(context, standing.query.vector)
        watch = StopWatch()
        watch.start()
        outcome = solver.select(
            objective,
            standing.query.k,
            index=self._backend.ranked_lists if solver.requires_index else None,
        )
        elapsed = watch.stop()
        self._metrics.eval_latency.add(elapsed)
        return QueryResult(
            element_ids=outcome.element_ids,
            score=outcome.value,
            algorithm=solver.name,
            elapsed_ms=elapsed * 1000.0,
            evaluated_elements=outcome.evaluated_elements,
            active_elements=context.active_count,
            extras=dict(outcome.extras),
        )

    # -- checkpoint state --------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of the serving state.

        Covers the execution backend (processor or cluster), the
        standing-query registry, the cached standing results and the
        pending (never-evaluated) set.  Service metrics are measurement
        state and restart from zero after a restore; solver instances are
        re-resolved from the restored standing queries.
        """
        self._require_open()
        return {
            "incremental": self._incremental,
            "backend": self._backend.state_dict(),
            "registry": self._registry.state_dict(),
            "results": [
                stored.to_dict()
                for _, stored in sorted(self._results.items())
            ],
            "pending": sorted(self._pending),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this engine."""
        self._require_open()
        self._backend.restore_state(state["backend"])
        self._registry.restore_state(state["registry"])
        self._snapshot_cache_reset()
        self._metrics = ServiceMetrics()
        self._results = {}
        self._solvers = {}
        self._pending = {str(query_id) for query_id in state["pending"]}
        for standing in self._registry:
            self._solvers[standing.query_id] = self._resolve_standing(standing)
        for payload in state["results"]:
            stored = StandingResult.from_dict(payload)
            if stored.query_id in self._registry:
                self._results[stored.query_id] = stored

    def _snapshot_cache_reset(self) -> None:
        """Re-create the snapshot cache after the backend state changed."""
        if not self._is_cluster:
            self._snapshots = SnapshotCache(self._backend)

    # -- lifecycle ---------------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the evaluator thread pool (idempotent)."""
        if not self._closed:
            self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "ServiceEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("the service engine has been closed")
