"""Incremental re-evaluation scheduling for standing queries.

After each ingested bucket the ranked-list index reports which topics had
tuples inserted, re-scored or removed (the per-topic dirty sets).  A standing
query's answer can only have changed if its topic support intersects those
dirty topics — ``f(S, x)`` is a weighted sum over the query's non-zero
topics, and the window state feeding any ``f_i`` with ``x_i > 0`` is exactly
what the dirty sets track.  The scheduler therefore re-evaluates only the
affected queries and lets the engine serve every other standing result from
its cache (with staleness metadata).

Two situations fall back to re-evaluating everything:

* **window-expiry churn** — when an advance expires a large fraction of the
  active set, nearly every list changed and the per-query bookkeeping would
  cost more than it saves;
* **near-total dirtiness** — when the dirty topics already cover most of the
  topic space, the intersection test approves almost every query anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.service.registry import QueryRegistry
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class SchedulePlan:
    """The scheduler's decision for one bucket.

    Attributes
    ----------
    query_ids:
        Standing queries to re-evaluate, in deterministic (sorted) order.
    full:
        Whether this is a full re-evaluation of the registry.
    reason:
        Why the plan was chosen (``"incremental"``, ``"expiry-churn"``,
        ``"dirty-fraction"`` or ``"naive"``).
    dirty_topics:
        The dirty topics the plan was derived from.
    """

    query_ids: Tuple[str, ...]
    full: bool
    reason: str
    dirty_topics: Tuple[int, ...]


class IncrementalScheduler:
    """Plans which standing queries to re-evaluate after a bucket."""

    def __init__(
        self,
        registry: QueryRegistry,
        num_topics: int,
        dirty_fraction_fallback: float = 0.75,
        expiry_churn_fraction: float = 0.5,
    ) -> None:
        require_positive(num_topics, "num_topics")
        require_in_range(dirty_fraction_fallback, "dirty_fraction_fallback", 0.0, 1.0)
        require_in_range(expiry_churn_fraction, "expiry_churn_fraction", 0.0, 1.0)
        self._registry = registry
        self._num_topics = int(num_topics)
        self._dirty_fraction_fallback = float(dirty_fraction_fallback)
        self._expiry_churn_fraction = float(expiry_churn_fraction)

    @property
    def registry(self) -> QueryRegistry:
        """The registry the plans are drawn from."""
        return self._registry

    def plan(
        self,
        dirty_topics: Iterable[int],
        expired_elements: int = 0,
        active_elements: int = 0,
        pending_ids: Sequence[str] = (),
    ) -> SchedulePlan:
        """Decide which standing queries need re-evaluation.

        Parameters
        ----------
        dirty_topics:
            Topics whose ranked lists changed during the bucket.
        expired_elements:
            How many active elements the window advance expired.
        active_elements:
            Active-set size after the advance (churn denominator).
        pending_ids:
            Queries that have never been evaluated; they are always included
            regardless of the dirty sets.
        """
        dirty = tuple(sorted(set(dirty_topics)))
        pending = [qid for qid in pending_ids if qid in self._registry]

        if len(self._registry) > 0:
            churn_floor = self._expiry_churn_fraction * max(1, active_elements)
            if expired_elements > 0 and expired_elements >= churn_floor:
                return SchedulePlan(
                    query_ids=tuple(sorted(self._registry.ids())),
                    full=True,
                    reason="expiry-churn",
                    dirty_topics=dirty,
                )
            if len(dirty) >= self._dirty_fraction_fallback * self._num_topics:
                return SchedulePlan(
                    query_ids=tuple(sorted(self._registry.ids())),
                    full=True,
                    reason="dirty-fraction",
                    dirty_topics=dirty,
                )

        affected = self._registry.affected_by(dirty)
        affected.update(pending)
        return SchedulePlan(
            query_ids=tuple(sorted(affected)),
            full=len(affected) == len(self._registry) and len(self._registry) > 0,
            reason="incremental",
            dirty_topics=dirty,
        )
