"""One shared scoring snapshot per ingested bucket.

Every standing-query evaluation needs a frozen
:class:`~repro.core.scoring.ScoringContext` of the active window.  Building
one costs time linear in the window, so the serving engine must not rebuild
it per query: the :class:`SnapshotCache` materialises a single context per
processor version (``buckets_processed``) and hands the same object to every
evaluation until the next bucket invalidates it.  Versioning by bucket count
— not per query — is what makes the snapshot *shared*: with ``q`` standing
queries the window is frozen once per bucket instead of ``q`` times.
"""

from __future__ import annotations

from typing import Optional

from repro.core.processor import KSIRProcessor
from repro.core.scoring import ScoringContext


class SnapshotCache:
    """Versioned cache of the processor's scoring snapshot."""

    def __init__(self, processor: KSIRProcessor) -> None:
        self._processor = processor
        self._version: Optional[int] = None
        self._context: Optional[ScoringContext] = None
        self._hits = 0
        self._misses = 0

    @property
    def version(self) -> Optional[int]:
        """``buckets_processed`` the cached context belongs to (None when cold)."""
        return self._version

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to materialise a fresh snapshot."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self._hits + self._misses
        if lookups == 0:
            return 0.0
        return self._hits / lookups

    def context(self) -> ScoringContext:
        """The scoring snapshot of the processor's current bucket version."""
        version = self._processor.buckets_processed
        if self._context is not None and self._version == version:
            self._hits += 1
            return self._context
        self._misses += 1
        self._context = self._processor.snapshot()
        self._version = version
        return self._context
