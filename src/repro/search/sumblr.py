"""A Sumblr-style stream summarisation baseline (Shou et al., SIGIR 2013).

The paper runs Sumblr for ad-hoc queries as follows (Section 5.1): the
elements containing at least one query keyword are kept as candidates, the
candidates are clustered (Sumblr maintains k-means-style tweet clusters), and
a summary of ``k`` elements is produced by picking the highest-LexRank
element of each cluster.  This module reproduces that pipeline:

1. keyword filtering (falling back to all elements when nothing matches, so
   the method always returns a result);
2. k-means clustering of the candidates in topic space (Lloyd's algorithm,
   deterministic farthest-point initialisation);
3. LexRank centrality inside each cluster over TF-IDF cosine similarities;
   the top element per cluster enters the summary, largest clusters first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.element import SocialElement
from repro.search.base import SearchMethod, SearchRequest
from repro.search.lexrank import lexrank_scores, pairwise_cosine_matrix
from repro.search.tfidf import build_document_frequencies, tfidf_vector


def kmeans_cluster(
    points: np.ndarray, num_clusters: int, max_iterations: int = 50
) -> np.ndarray:
    """Lloyd's k-means with farthest-point initialisation.

    Returns the cluster label of each row of ``points``.  Deterministic (no
    random restarts) so the baseline is reproducible.
    """
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=int)
    num_clusters = max(1, min(num_clusters, n))

    # Farthest-point (k-means++-like but deterministic) initialisation.
    centroid_indices = [0]
    distances = np.linalg.norm(points - points[0], axis=1)
    while len(centroid_indices) < num_clusters:
        next_index = int(np.argmax(distances))
        centroid_indices.append(next_index)
        distances = np.minimum(distances, np.linalg.norm(points - points[next_index], axis=1))
    centroids = points[centroid_indices].copy()

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(num_clusters):
            members = points[labels == cluster]
            if len(members) > 0:
                centroids[cluster] = members.mean(axis=0)
    return labels


class SumblrSummarizer(SearchMethod):
    """Keyword filter → k-means in topic space → LexRank per cluster."""

    name = "sumblr"

    def __init__(self, lexrank_threshold: float = 0.1, lexrank_damping: float = 0.85) -> None:
        self.lexrank_threshold = float(lexrank_threshold)
        self.lexrank_damping = float(lexrank_damping)

    def __repr__(self) -> str:
        return (
            f"SumblrSummarizer(lexrank_threshold={self.lexrank_threshold}, "
            f"lexrank_damping={self.lexrank_damping})"
        )

    # -- pipeline stages --------------------------------------------------------------

    @staticmethod
    def _filter_candidates(
        elements: Sequence[SocialElement], keywords: Tuple[str, ...]
    ) -> List[SocialElement]:
        keyword_set = set(keywords)
        candidates = [
            element
            for element in elements
            if keyword_set and keyword_set.intersection(element.tokens)
        ]
        return candidates if candidates else list(elements)

    @staticmethod
    def _topic_points(candidates: Sequence[SocialElement]) -> np.ndarray:
        dimensions = 0
        for element in candidates:
            if element.topic_distribution is not None:
                dimensions = len(element.topic_distribution)
                break
        if dimensions == 0:
            # No topic vectors available: every element collapses to a single
            # point and clustering degenerates to one cluster.
            return np.zeros((len(candidates), 1))
        points = np.zeros((len(candidates), dimensions))
        for row, element in enumerate(candidates):
            if element.topic_distribution is not None:
                points[row] = np.asarray(element.topic_distribution, dtype=float)
        return points

    def _cluster_representatives(
        self,
        candidates: Sequence[SocialElement],
        labels: np.ndarray,
        popularity: Dict[int, float],
    ) -> List[Tuple[int, int, float]]:
        """Per cluster: ``(cluster_size, representative_id, centrality)``."""
        document_frequencies = build_document_frequencies(candidates)
        num_documents = max(1, len(candidates))
        representatives: List[Tuple[int, int, float]] = []
        for cluster in sorted(set(int(label) for label in labels)):
            member_indices = [i for i, label in enumerate(labels) if int(label) == cluster]
            members = [candidates[i] for i in member_indices]
            vectors = [
                tfidf_vector(member.tokens, document_frequencies, num_documents)
                for member in members
            ]
            similarity = pairwise_cosine_matrix(vectors)
            centrality = lexrank_scores(
                similarity,
                threshold=self.lexrank_threshold,
                damping=self.lexrank_damping,
                teleport_weights=[
                    1.0 + popularity.get(member.element_id, 0) for member in members
                ],
            )
            best_local = int(np.argmax(centrality)) if len(members) else 0
            representatives.append(
                (len(members), members[best_local].element_id, float(centrality[best_local]))
            )
        representatives.sort(key=lambda item: (-item[0], -item[2], item[1]))
        return representatives

    # -- public API ----------------------------------------------------------------------

    @staticmethod
    def _popularity(elements: Sequence[SocialElement]) -> Dict[int, float]:
        """Author-popularity weights (the original system's PageRank signal).

        Sumblr scores content with the *author's* PageRank, not the element's
        own reference count (which is exactly why the paper finds it less
        influence-aware than k-SIR).  We reproduce that: each element's weight
        is the total number of references received by all elements of its
        author within the snapshot.  Elements without an author fall back to
        their own referenced-by count.
        """
        element_counts: Dict[int, int] = {}
        for element in elements:
            for parent_id in element.references:
                element_counts[parent_id] = element_counts.get(parent_id, 0) + 1
        author_counts: Dict[int, int] = {}
        for element in elements:
            if element.author is None:
                continue
            author_counts[element.author] = author_counts.get(element.author, 0) + (
                element_counts.get(element.element_id, 0)
            )
        weights: Dict[int, float] = {}
        for element in elements:
            if element.author is not None:
                weights[element.element_id] = float(author_counts.get(element.author, 0))
            else:
                weights[element.element_id] = float(
                    element_counts.get(element.element_id, 0)
                )
        return weights

    def search(self, request: SearchRequest) -> Tuple[int, ...]:
        candidates = self._filter_candidates(request.elements, request.keywords)
        if not candidates:
            return ()
        popularity = self._popularity(request.elements)
        points = self._topic_points(candidates)
        labels = kmeans_cluster(points, num_clusters=request.k)
        representatives = self._cluster_representatives(candidates, labels, popularity)
        selected = [element_id for _size, element_id, _score in representatives[: request.k]]

        if len(selected) < request.k:
            # Fewer clusters than k (small candidate sets): top up with the
            # next most central unselected candidates, largest clusters first.
            chosen = set(selected)
            extras = [
                element.element_id
                for element in candidates
                if element.element_id not in chosen
            ]
            selected.extend(extras[: request.k - len(selected)])
        return tuple(selected[: request.k])
