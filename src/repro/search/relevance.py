"""Top-k relevance query in topic space (the paper's "REL" baseline).

Both the query and the elements are topic vectors; relevance is cosine
similarity; the result is simply the ``k`` most similar elements.  This is
the topic-based social search approach of Zhang et al. (TOIS 2017) that the
paper argues is relevant but not *representative*.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.search.base import SearchMethod, SearchRequest


def topic_cosine(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity of two dense topic vectors."""
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right)) / (left_norm * right_norm)


class TopicRelevanceSearch(SearchMethod):
    """Top-k by cosine similarity between topic vectors."""

    name = "rel"

    def rank(self, request: SearchRequest) -> List[Tuple[int, float]]:
        """All candidates ranked by topic-space relevance (best first)."""
        scored = []
        for element in request.elements:
            if element.topic_distribution is None:
                similarity = 0.0
            else:
                similarity = topic_cosine(
                    request.query_vector, np.asarray(element.topic_distribution, dtype=float)
                )
            scored.append((element.element_id, similarity))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def search(self, request: SearchRequest) -> Tuple[int, ...]:
        ranked = self.rank(request)
        return tuple(element_id for element_id, _score in ranked[: request.k])
