"""LexRank sentence/element centrality (substrate for the Sumblr baseline).

LexRank (Erkan & Radev, 2004) scores each document by its eigenvector
centrality in a cosine-similarity graph: build the similarity matrix, keep
edges above a threshold, row-normalise, and run PageRank-style power
iteration with a damping factor.  Sumblr uses LexRank to pick the
representative element of each cluster.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def lexrank_scores(
    similarity: np.ndarray,
    threshold: float = 0.1,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    teleport_weights: Sequence[float] = (),
) -> np.ndarray:
    """LexRank centrality scores from a symmetric similarity matrix.

    Parameters
    ----------
    similarity:
        Square matrix of pairwise similarities (diagonal ignored).
    threshold:
        Edges below this similarity are dropped (continuous LexRank uses 0).
    damping:
        PageRank damping factor.
    max_iterations, tolerance:
        Power-iteration stopping criteria.
    teleport_weights:
        Optional non-negative personalisation weights (one per node).  The
        Sumblr baseline uses author/element popularity here so that the
        centrality reflects social influence, as in the original system.
        Empty means uniform teleportation (classic LexRank).
    """
    matrix = np.asarray(similarity, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("similarity must be a square matrix")
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0)

    adjacency = np.where(matrix >= threshold, matrix, 0.0)
    np.fill_diagonal(adjacency, 0.0)
    row_sums = adjacency.sum(axis=1, keepdims=True)
    # Dangling rows (no neighbours) jump uniformly.
    transition = np.where(row_sums > 0, adjacency / np.where(row_sums == 0, 1.0, row_sums), 1.0 / n)

    scores = np.full(n, 1.0 / n)
    if len(teleport_weights) == 0:
        teleport = np.full(n, 1.0 / n)
    else:
        weights = np.asarray(teleport_weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError("teleport_weights must have one entry per node")
        if np.any(weights < 0):
            raise ValueError("teleport_weights must be non-negative")
        total = weights.sum()
        teleport = weights / total if total > 0 else np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = (1.0 - damping) * teleport + damping * (transition.T @ scores)
        if float(np.abs(updated - scores).sum()) < tolerance:
            scores = updated
            break
        scores = updated
    return scores


def pairwise_cosine_matrix(vectors: Sequence[Dict[str, float]]) -> np.ndarray:
    """Dense cosine-similarity matrix of sparse word-weight vectors."""
    n = len(vectors)
    matrix = np.zeros((n, n))
    norms: List[float] = []
    for vector in vectors:
        norms.append(float(np.sqrt(sum(weight * weight for weight in vector.values()))))
    for i in range(n):
        matrix[i, i] = 1.0
        for j in range(i + 1, n):
            left, right = vectors[i], vectors[j]
            if len(right) < len(left):
                left, right = right, left
            dot = sum(weight * right.get(word, 0.0) for word, weight in left.items())
            if dot > 0 and norms[i] > 0 and norms[j] > 0:
                value = dot / (norms[i] * norms[j])
                matrix[i, j] = value
                matrix[j, i] = value
    return matrix
