"""Diversity-aware top-k keyword query (the paper's "DIV" baseline).

Following Chen & Cong (SIGMOD 2015), the result set maximises

``score(q, S) = λ · Σ_{e ∈ S} rel(q, e) + (1 − λ) · div(S)``

where ``rel`` is TF-IDF cosine relevance and ``div(S)`` is the average
pairwise dissimilarity between result elements.  The paper uses ``λ = 0.3``.
The maximisation is done with the standard greedy heuristic: repeatedly add
the element with the largest increase of the combined score.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.search.base import SearchMethod, SearchRequest
from repro.search.tfidf import build_document_frequencies, cosine_similarity, tfidf_vector


class DiversityAwareSearch(SearchMethod):
    """Greedy relevance + diversity selection over TF-IDF vectors."""

    name = "div"

    def __init__(self, relevance_weight: float = 0.3) -> None:
        if not (0.0 <= relevance_weight <= 1.0):
            raise ValueError("relevance_weight must lie in [0, 1]")
        self.relevance_weight = float(relevance_weight)

    def __repr__(self) -> str:
        return f"DiversityAwareSearch(relevance_weight={self.relevance_weight})"

    def _combined_score(
        self,
        selected: List[int],
        relevance: Dict[int, float],
        similarity: Dict[Tuple[int, int], float],
    ) -> float:
        if not selected:
            return 0.0
        total_relevance = sum(relevance[element_id] for element_id in selected)
        if len(selected) < 2:
            diversity = 0.0
        else:
            dissimilarity = 0.0
            pairs = 0
            for i, left in enumerate(selected):
                for right in selected[i + 1 :]:
                    key = (left, right) if left < right else (right, left)
                    dissimilarity += 1.0 - similarity.get(key, 0.0)
                    pairs += 1
            diversity = dissimilarity / pairs if pairs else 0.0
        return (
            self.relevance_weight * total_relevance
            + (1.0 - self.relevance_weight) * diversity
        )

    def search(self, request: SearchRequest) -> Tuple[int, ...]:
        elements = list(request.elements)
        if not elements:
            return ()
        document_frequencies = build_document_frequencies(elements)
        num_documents = max(1, len(elements))
        query_vector = tfidf_vector(
            list(request.keywords), document_frequencies, num_documents
        )
        vectors = {
            element.element_id: tfidf_vector(
                element.tokens, document_frequencies, num_documents
            )
            for element in elements
        }
        relevance = {
            element_id: cosine_similarity(query_vector, vector)
            for element_id, vector in vectors.items()
        }

        # Restrict the greedy search to the most relevant candidates so the
        # pairwise-similarity bookkeeping stays small (the tail is irrelevant
        # to both terms of the score).
        pool_size = max(request.k * 10, 50)
        pool = sorted(relevance, key=lambda eid: (-relevance[eid], eid))[:pool_size]
        similarity: Dict[Tuple[int, int], float] = {}
        for i, left in enumerate(pool):
            for right in pool[i + 1 :]:
                key = (left, right) if left < right else (right, left)
                similarity[key] = cosine_similarity(vectors[left], vectors[right])

        selected: List[int] = []
        current_score = 0.0
        while len(selected) < request.k and len(selected) < len(pool):
            best_id = None
            best_score = current_score
            for candidate in pool:
                if candidate in selected:
                    continue
                score = self._combined_score(selected + [candidate], relevance, similarity)
                if best_id is None or score > best_score:
                    best_score = score
                    best_id = candidate
            if best_id is None:
                break
            selected.append(best_id)
            current_score = best_score
        return tuple(selected)
