"""Top-k keyword query with TF-IDF weighting (the paper's "TF-IDF" baseline).

Elements and queries are vectorised with log-normalised TF-IDF weights
computed over the candidate set; relevance is cosine similarity, and the
``k`` most relevant elements are returned.  This captures the classical
keyword-based social search methods the paper compares against — purely
syntactic matching, no semantics, no representativeness.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.core.element import SocialElement
from repro.search.base import SearchMethod, SearchRequest


def build_document_frequencies(elements: Sequence[SocialElement]) -> Dict[str, int]:
    """Document frequency of every word over the candidate elements."""
    frequencies: Counter = Counter()
    for element in elements:
        frequencies.update(set(element.tokens))
    return dict(frequencies)


def tfidf_vector(
    tokens: Sequence[str], document_frequencies: Dict[str, int], num_documents: int
) -> Dict[str, float]:
    """Log-normalised TF-IDF weights of one bag of words."""
    counts = Counter(tokens)
    vector: Dict[str, float] = {}
    for word, count in counts.items():
        df = document_frequencies.get(word, 0)
        idf = math.log((1 + num_documents) / (1 + df)) + 1.0
        vector[word] = (1.0 + math.log(count)) * idf
    return vector


def cosine_similarity(left: Dict[str, float], right: Dict[str, float]) -> float:
    """Cosine similarity of two sparse vectors keyed by word."""
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = sum(weight * right.get(word, 0.0) for word, weight in left.items())
    if dot == 0.0:
        return 0.0
    left_norm = math.sqrt(sum(weight * weight for weight in left.values()))
    right_norm = math.sqrt(sum(weight * weight for weight in right.values()))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)


class TFIDFSearch(SearchMethod):
    """Top-k by TF-IDF cosine relevance to the query keywords."""

    name = "tfidf"

    def rank(self, request: SearchRequest) -> List[Tuple[int, float]]:
        """All candidates ranked by relevance (best first)."""
        elements = list(request.elements)
        document_frequencies = build_document_frequencies(elements)
        num_documents = max(1, len(elements))
        query_vector = tfidf_vector(list(request.keywords), document_frequencies, num_documents)
        scored = []
        for element in elements:
            vector = tfidf_vector(element.tokens, document_frequencies, num_documents)
            scored.append((element.element_id, cosine_similarity(query_vector, vector)))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def search(self, request: SearchRequest) -> Tuple[int, ...]:
        ranked = self.rank(request)
        return tuple(element_id for element_id, _score in ranked[: request.k])
