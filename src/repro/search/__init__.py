"""Search baselines used in the paper's effectiveness study (Section 5.2).

* :class:`repro.search.tfidf.TFIDFSearch` — top-k keyword query with
  log-normalised TF-IDF weights and cosine similarity.
* :class:`repro.search.diversity.DiversityAwareSearch` — diversity-aware
  top-k keyword query (DIV): relevance plus average pairwise dissimilarity.
* :class:`repro.search.sumblr.SumblrSummarizer` — a Sumblr-style stream
  summariser: keyword filtering, k-means clustering in topic space and
  LexRank-based representative selection per cluster.
* :class:`repro.search.relevance.TopicRelevanceSearch` — top-k relevance
  query (REL): cosine similarity between topic vectors.
* :mod:`repro.search.lexrank` — the LexRank centrality substrate used by the
  Sumblr baseline.

All baselines implement the :class:`repro.search.base.SearchMethod`
interface so the effectiveness harness can run them interchangeably.
"""

from repro.search.base import SearchMethod, SearchRequest
from repro.search.diversity import DiversityAwareSearch
from repro.search.lexrank import lexrank_scores
from repro.search.relevance import TopicRelevanceSearch
from repro.search.sumblr import SumblrSummarizer
from repro.search.tfidf import TFIDFSearch

SEARCH_REGISTRY = {
    "tfidf": TFIDFSearch,
    "div": DiversityAwareSearch,
    "sumblr": SumblrSummarizer,
    "rel": TopicRelevanceSearch,
}
"""Maps the paper's baseline names to their classes."""

__all__ = [
    "DiversityAwareSearch",
    "SEARCH_REGISTRY",
    "SearchMethod",
    "SearchRequest",
    "SumblrSummarizer",
    "TFIDFSearch",
    "TopicRelevanceSearch",
    "lexrank_scores",
]
