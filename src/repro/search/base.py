"""Common interface of the effectiveness-study baselines.

Each baseline receives a :class:`SearchRequest` — the candidate elements
(the active set at query time), the raw keywords, the inferred query vector
and the result size ``k`` — and returns the ids of the selected elements.
Keyword methods (TF-IDF, DIV, Sumblr) read the keywords; topic-space methods
(REL, k-SIR) read the query vector; both views are always provided so the
comparison is fair, exactly as in Section 5.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.element import SocialElement


@dataclass
class SearchRequest:
    """One effectiveness-study query against a snapshot of active elements.

    Attributes
    ----------
    elements:
        The candidate elements (the active set ``A_t`` at query time).
    keywords:
        The raw query keywords.
    query_vector:
        The query vector inferred from the keywords (topic space).
    k:
        Result size bound.
    """

    elements: Sequence[SocialElement]
    keywords: Tuple[str, ...]
    query_vector: np.ndarray
    k: int

    def __post_init__(self) -> None:
        self.keywords = tuple(self.keywords)
        self.query_vector = np.asarray(self.query_vector, dtype=float)
        if self.k <= 0:
            raise ValueError("k must be positive")


class SearchMethod:
    """Base class for effectiveness baselines."""

    #: Name used in reports (matches the paper's method names).
    name: str = "base"

    def search(self, request: SearchRequest) -> Tuple[int, ...]:
        """Return the ids of at most ``request.k`` selected elements."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
