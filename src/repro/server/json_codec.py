"""JSON payload (de)serialisation of the serving tier.

One module owns the wire shapes, shared by the ASGI app, the in-process
test client and the load generator: request payloads are validated here
(raising :class:`PayloadError` with a client-worthy message), responses are
built from the library's own ``to_dict`` forms so the HTTP surface can
never drift from the checkpoint format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.element import SocialElement
from repro.core.query import KSIRQuery, QueryResult
from repro.service.engine import StandingResult
from repro.service.registry import StandingQuery


class PayloadError(ValueError):
    """A malformed request payload (maps to HTTP 400/422)."""


def require_mapping(payload: Any, where: str) -> Mapping[str, Any]:
    """The payload as a mapping, or :class:`PayloadError`."""
    if not isinstance(payload, Mapping):
        raise PayloadError(f"{where} must be a JSON object")
    return payload


def parse_query_spec(
    payload: Mapping[str, Any], default_k: Optional[int] = None
) -> Tuple[Optional[List[str]], Optional[List[float]], int]:
    """Parse the shared query shape: keywords xor a topic vector, plus k.

    Returns ``(keywords, vector, k)`` with exactly one of the first two
    non-None.
    """
    keywords = payload.get("keywords")
    vector = payload.get("vector")
    if (keywords is None) == (vector is None):
        raise PayloadError("provide exactly one of 'keywords' or 'vector'")
    k_raw = payload.get("k", default_k)
    if k_raw is None:
        raise PayloadError("'k' is required")
    try:
        k = int(k_raw)
    except (TypeError, ValueError):
        raise PayloadError("'k' must be an integer") from None
    if k < 1:
        raise PayloadError("'k' must be positive")
    if keywords is not None:
        if (
            not isinstance(keywords, Sequence)
            or isinstance(keywords, (str, bytes))
            or not keywords
            or not all(isinstance(word, str) for word in keywords)
        ):
            raise PayloadError("'keywords' must be a non-empty list of strings")
        return list(keywords), None, k
    if not isinstance(vector, Sequence) or isinstance(vector, (str, bytes)):
        raise PayloadError("'vector' must be a list of numbers")
    try:
        values = [float(value) for value in vector]
    except (TypeError, ValueError):
        raise PayloadError("'vector' must be a list of numbers") from None
    return None, values, k


def parse_registration(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Parse a ``POST /queries`` body into keyword arguments."""
    keywords, vector, k = parse_query_spec(payload)
    options: Dict[str, Any] = {
        "keywords": keywords,
        "vector": vector,
        "k": k,
        "query_id": None,
        "algorithm": None,
        "epsilon": None,
        "ttl_buckets": None,
    }
    if payload.get("query_id") is not None:
        options["query_id"] = str(payload["query_id"])
    if payload.get("algorithm") is not None:
        options["algorithm"] = str(payload["algorithm"])
    if payload.get("epsilon") is not None:
        try:
            options["epsilon"] = float(payload["epsilon"])
        except (TypeError, ValueError):
            raise PayloadError("'epsilon' must be a number") from None
    if payload.get("ttl_buckets") is not None:
        try:
            options["ttl_buckets"] = int(payload["ttl_buckets"])
        except (TypeError, ValueError):
            raise PayloadError("'ttl_buckets' must be an integer") from None
    unknown = set(payload) - {
        "keywords", "vector", "k", "query_id", "algorithm", "epsilon", "ttl_buckets",
    }
    if unknown:
        raise PayloadError(f"unknown fields: {', '.join(sorted(unknown))}")
    return options


def parse_ingest(payload: Mapping[str, Any]) -> Tuple[List[SocialElement], int]:
    """Parse a ``POST /ingest/bucket`` body into elements and end time."""
    if "end_time" not in payload:
        raise PayloadError("'end_time' is required")
    try:
        end_time = int(payload["end_time"])
    except (TypeError, ValueError):
        raise PayloadError("'end_time' must be an integer") from None
    raw_elements = payload.get("elements", [])
    if not isinstance(raw_elements, Sequence) or isinstance(raw_elements, (str, bytes)):
        raise PayloadError("'elements' must be a list of element objects")
    elements: List[SocialElement] = []
    for index, entry in enumerate(raw_elements):
        if not isinstance(entry, Mapping):
            raise PayloadError(f"elements[{index}] must be a JSON object")
        try:
            elements.append(SocialElement.from_dict(dict(entry)))
        except (KeyError, TypeError, ValueError) as error:
            raise PayloadError(f"elements[{index}] is invalid: {error}") from None
    return elements, end_time


def parse_events(payload: Mapping[str, Any]) -> Tuple[List[SocialElement], bool]:
    """Parse a ``POST /ingest`` body into raw events plus a flush flag.

    Unlike :func:`parse_ingest` there is no ``end_time``: the events are
    raw, possibly out-of-order arrivals, and bucketing is the engine's
    job (the watermark decides what commits).  ``flush`` (default false)
    asks the engine to seal everything up to the event-time high-water
    mark after accepting the batch — the end-of-stream signal.
    """
    raw_elements = payload.get("events", payload.get("elements"))
    if raw_elements is None:
        raise PayloadError("'events' is required")
    if not isinstance(raw_elements, Sequence) or isinstance(raw_elements, (str, bytes)):
        raise PayloadError("'events' must be a list of element objects")
    elements: List[SocialElement] = []
    for index, entry in enumerate(raw_elements):
        if not isinstance(entry, Mapping):
            raise PayloadError(f"events[{index}] must be a JSON object")
        try:
            elements.append(SocialElement.from_dict(dict(entry)))
        except (KeyError, TypeError, ValueError) as error:
            raise PayloadError(f"events[{index}] is invalid: {error}") from None
    flush = payload.get("flush", False)
    if not isinstance(flush, bool):
        raise PayloadError("'flush' must be a boolean")
    unknown = set(payload) - {"events", "elements", "flush"}
    if unknown:
        raise PayloadError(f"unknown fields: {', '.join(sorted(unknown))}")
    return elements, flush


# -- response shapes -------------------------------------------------------------------


def element_to_json(element: SocialElement) -> Dict[str, Any]:
    """The wire form of one element (the JSONL stream format)."""
    return dict(element.to_dict())


def query_to_json(query: KSIRQuery) -> Dict[str, Any]:
    """The wire form of a k-SIR query."""
    return dict(query.to_dict())


def result_to_json(result: QueryResult) -> Dict[str, Any]:
    """The wire form of an ad-hoc query result."""
    return dict(result.to_dict())


def standing_to_json(standing: StandingQuery) -> Dict[str, Any]:
    """The wire form of a registered standing query (vector omitted by size)."""
    return {
        "query_id": standing.query_id,
        "k": standing.query.k,
        "keywords": list(standing.query.keywords),
        "topics": list(standing.topics),
        "algorithm": standing.algorithm,
        "epsilon": standing.epsilon,
        "ttl_buckets": standing.ttl_buckets,
        "registered_at_bucket": standing.registered_at_bucket,
    }


def standing_result_to_json(standing_result: StandingResult) -> Dict[str, Any]:
    """The wire form of a cached standing answer with staleness."""
    return {
        "query_id": standing_result.query_id,
        "result": result_to_json(standing_result.result),
        "evaluated_at_bucket": standing_result.evaluated_at_bucket,
        "evaluated_at_time": standing_result.evaluated_at_time,
        "evaluations": standing_result.evaluations,
        "staleness_buckets": standing_result.staleness_buckets,
        "fresh": standing_result.fresh,
    }
