"""RFC 6455 WebSocket framing shared by the server, the client and the bench.

Only the subset a push channel needs: the opening-handshake accept key,
frame encoding (server frames unmasked, client frames masked as the RFC
requires) and an asyncio frame reader that transparently reassembles
fragmented messages.  Compression extensions and subprotocols are out of
scope — deltas are small JSON texts.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from dataclasses import dataclass

#: The fixed GUID of the WebSocket opening handshake (RFC 6455 §1.3).
WS_ACCEPT_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Upper bound on a single incoming frame (sanity cap, not a protocol limit).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WebSocketProtocolError(Exception):
    """A malformed or oversized WebSocket frame."""


@dataclass(frozen=True)
class Frame:
    """One decoded WebSocket frame (payload already unmasked)."""

    opcode: int
    payload: bytes
    fin: bool = True


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key + WS_ACCEPT_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """Encode one complete (FIN) frame.

    ``mask=True`` applies a fresh random masking key — required for every
    client-to-server frame; servers always send unmasked.
    """
    header = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def encode_text(text: str, mask: bool = False) -> bytes:
    """Encode a text message frame."""
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def encode_close(code: int = 1000, reason: str = "", mask: bool = False) -> bytes:
    """Encode a close frame with a status code and optional reason."""
    return encode_frame(
        OP_CLOSE, struct.pack("!H", code) + reason.encode("utf-8"), mask=mask
    )


def close_code(frame: Frame) -> int:
    """The status code carried by a close frame (1005 when absent)."""
    if len(frame.payload) >= 2:
        return int(struct.unpack("!H", frame.payload[:2])[0])
    return 1005


async def read_frame(reader: asyncio.StreamReader) -> Frame:
    """Read one frame from ``reader`` (unmasking if the mask bit is set).

    Raises :class:`WebSocketProtocolError` on malformed input and
    ``asyncio.IncompleteReadError`` when the peer hangs up mid-frame.
    """
    first = await reader.readexactly(2)
    fin = bool(first[0] & 0x80)
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    if length == 126:
        length = int(struct.unpack("!H", await reader.readexactly(2))[0])
    elif length == 127:
        length = int(struct.unpack("!Q", await reader.readexactly(8))[0])
    if length > MAX_FRAME_BYTES:
        raise WebSocketProtocolError(f"frame of {length} bytes exceeds the cap")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return Frame(opcode=opcode, payload=payload, fin=fin)


async def read_message(reader: asyncio.StreamReader) -> Frame:
    """Read one complete *data* message, reassembling continuation frames.

    Control frames (close/ping/pong) interleaved inside a fragmented
    message are returned immediately — the caller handles them and calls
    again.  The returned frame always has ``fin=True`` for data opcodes.
    """
    frame = await read_frame(reader)
    if frame.opcode in (OP_CLOSE, OP_PING, OP_PONG) or frame.fin:
        return frame
    opcode = frame.opcode
    parts = [frame.payload]
    while True:
        nxt = await read_frame(reader)
        if nxt.opcode in (OP_CLOSE, OP_PING, OP_PONG):
            return nxt
        if nxt.opcode != OP_CONT:
            raise WebSocketProtocolError("expected a continuation frame")
        parts.append(nxt.payload)
        if nxt.fin:
            return Frame(opcode=opcode, payload=b"".join(parts), fin=True)
