"""Stdlib asyncio HTTP and WebSocket clients for the serving tier.

The load benchmark, the socket-level tests and the CI smoke check need a
client that exists on a bare Python install; this is it.  ``HttpClient``
speaks just enough HTTP/1.1 (keep-alive, ``Content-Length`` bodies, JSON
payloads) and ``WebSocketClient`` performs the RFC 6455 opening handshake
and exchanges text frames via the shared :mod:`repro.server.ws_frames`.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.server import ws_frames


@dataclass
class HttpResponse:
    """One parsed HTTP response."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body decoded as JSON."""
        return json.loads(self.body.decode("utf-8"))


class HttpClient:
    """A keep-alive HTTP/1.1 client bound to one host and port."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is None or self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self._reader, self._writer

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> HttpResponse:
        """Send one request; reconnects once if the kept-alive socket died."""
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        for attempt in (0, 1):
            reader, writer = await self._connect()
            try:
                writer.write(_encode_request(method, path, self.host, body))
                await writer.drain()
                return await _read_response(reader)
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise ConnectionError("unreachable")  # pragma: no cover

    async def get(self, path: str) -> HttpResponse:
        """``GET path``."""
        return await self.request("GET", path)

    async def post(
        self, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> HttpResponse:
        """``POST path`` with a JSON body."""
        return await self.request("POST", path, payload=payload or {})

    async def delete(self, path: str) -> HttpResponse:
        """``DELETE path``."""
        return await self.request("DELETE", path)

    async def close(self) -> None:
        """Close the kept-alive connection (idempotent)."""
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None and not writer.is_closing():
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def __aenter__(self) -> "HttpClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class WebSocketClient:
    """One client-side WebSocket session (text frames, JSON helpers)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.closed = False
        self.close_code: Optional[int] = None

    @classmethod
    async def connect(cls, host: str, port: int, path: str) -> "WebSocketClient":
        """Open a WebSocket to ``ws://host:port{path}`` (raises on refusal)."""
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            writer.close()
            raise ConnectionError(f"WebSocket upgrade refused: {status_line}")
        expected = ws_frames.accept_key(key).lower()
        for line in head.decode("latin-1").split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                if value.strip().lower() != expected:
                    writer.close()
                    raise ConnectionError("bad Sec-WebSocket-Accept")
                break
        return cls(reader, writer)

    async def send_text(self, text: str) -> None:
        """Send one masked text frame."""
        self._writer.write(ws_frames.encode_text(text, mask=True))
        await self._writer.drain()

    async def recv(self, timeout: Optional[float] = None) -> Optional[str]:
        """The next text message, or ``None`` once the server closed.

        Ping frames are answered transparently; a timeout raises
        :class:`asyncio.TimeoutError`.
        """
        while True:
            if self.closed:
                return None
            frame = await asyncio.wait_for(
                ws_frames.read_message(self._reader), timeout
            )
            if frame.opcode == ws_frames.OP_PING:
                self._writer.write(
                    ws_frames.encode_frame(
                        ws_frames.OP_PONG, frame.payload, mask=True
                    )
                )
                await self._writer.drain()
                continue
            if frame.opcode == ws_frames.OP_PONG:
                continue
            if frame.opcode == ws_frames.OP_CLOSE:
                self.close_code = ws_frames.close_code(frame)
                if not self.closed:
                    self.closed = True
                    try:
                        self._writer.write(
                            ws_frames.encode_close(self.close_code, mask=True)
                        )
                        await self._writer.drain()
                    except ConnectionError:  # pragma: no cover
                        pass
                return None
            return frame.payload.decode("utf-8", "replace")

    async def recv_json(self, timeout: Optional[float] = None) -> Optional[Any]:
        """The next message parsed as JSON, or ``None`` on close."""
        text = await self.recv(timeout)
        return None if text is None else json.loads(text)

    async def close(self, code: int = 1000) -> None:
        """Send a close frame and shut the socket down (idempotent)."""
        if not self.closed:
            self.closed = True
            try:
                self._writer.write(ws_frames.encode_close(code, mask=True))
                await self._writer.drain()
            except ConnectionError:  # pragma: no cover
                pass
        if not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def __aenter__(self) -> "WebSocketClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


def _encode_request(method: str, path: str, host: str, body: bytes) -> bytes:
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1") + body


async def _read_response(reader: asyncio.StreamReader) -> HttpResponse:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1"):
        raise ConnectionError(f"malformed response line: {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return HttpResponse(status=status, headers=headers, body=body)
