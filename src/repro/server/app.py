"""The ASGI application serving a :class:`~repro.api.engine.KSIREngine`.

Framework-free ASGI (the ``scope``/``receive``/``send`` protocol), so the
same application object runs under uvicorn/hypercorn when the ``server``
extra is installed *and* under the bundled stdlib server
(:mod:`repro.server.asgi`) when it is not.

Surface
-------

================  ======================================  =====================
``GET``           ``/health``                             liveness + engine id
``GET``           ``/healthz``                            pure liveness (no engine)
``GET``           ``/readyz``                             engine ready to serve
``GET``           ``/stats``                              backend counters
``POST``          ``/queries``                            register standing query
``GET``           ``/queries``                            list standing queries
``GET``           ``/queries/{id}``                       one query + answer
``DELETE``        ``/queries/{id}``                       unregister
``GET``           ``/queries/{id}/result``                cached standing answer
``POST``          ``/query``                              ad-hoc top-k query
``POST``          ``/ingest``                             raw out-of-order events
``POST``          ``/ingest/bucket``                      batched bucket ingest
``POST``          ``/checkpoint/save``                    persist engine state
``POST``          ``/checkpoint/load``                    restore + hot-swap
``GET``           ``/metrics``                            Prometheus text format
``GET``           ``/telemetry``                          runtime-store JSON
``WS``            ``/ws/queries/{id}``                    push channel
================  ======================================  =====================

Engine calls are synchronous and potentially slow, so every handler that
touches the engine runs in a worker thread under one mutation lock; the
event loop only shuffles bytes.  WebSocket pushes ride the
:class:`~repro.server.hub.PushHub` wired into the service engine's
update-listener hook — one push per (re-evaluated query × subscriber) per
bucket, none for provably unchanged results.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Pattern,
    Tuple,
)

from repro.api.checkpoint import CheckpointError
from repro.api.engine import KSIREngine
from repro.core.query import KSIRQuery
from repro.server import json_codec as codec
from repro.server.hub import PushHub
from repro.server.metrics import render_prometheus
from repro.server.runtime_store import RuntimeStore
from repro.service.engine import ServiceEngine, ServiceUpdate

#: ASGI protocol aliases (PEP 484-friendly, no external types).
Scope = MutableMapping[str, Any]
Message = MutableMapping[str, Any]
Receive = Callable[[], Awaitable[Message]]
Send = Callable[[Message], Awaitable[None]]

#: Close code sent when the requested standing query does not exist.
WS_CLOSE_UNKNOWN_QUERY = 4404


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: Dict[str, str]
    query_string: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Mapping[str, Any]:
        """The body as a JSON object (raises :class:`codec.PayloadError`)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise codec.PayloadError("request body is not valid JSON") from None
        return codec.require_mapping(payload, "request body")


@dataclass
class Response:
    """One HTTP response about to be serialised."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def json(cls, payload: Mapping[str, Any], status: int = 200) -> "Response":
        """A JSON response."""
        return cls(status=status, body=json.dumps(payload).encode("utf-8"))

    @classmethod
    def error(cls, message: str, status: int) -> "Response":
        """A JSON error envelope."""
        return cls.json({"error": message}, status=status)

    @classmethod
    def text(cls, body: str, content_type: str = "text/plain; charset=utf-8") -> "Response":
        """A plain-text response (``/metrics``)."""
        return cls(status=200, body=body.encode("utf-8"), content_type=content_type)


Handler = Callable[["KSIRServer", Request], Awaitable[Response]]


@dataclass(frozen=True)
class Route:
    """One HTTP route: method + compiled path pattern + handler."""

    method: str
    name: str
    pattern: Pattern[str]
    handler: Handler


def _route(method: str, template: str, handler: Handler) -> Route:
    pattern = re.compile(
        "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template) + "$"
    )
    return Route(method=method, name=f"{method} {template}", pattern=pattern,
                 handler=handler)


class KSIRServer:
    """The serving-tier application state over one :class:`KSIREngine`.

    The engine must run the ``service`` backend (standing queries are the
    product of this tier).  The instance is itself the ASGI callable:
    ``await server(scope, receive, send)``.
    """

    def __init__(
        self,
        engine: KSIREngine,
        store: Optional[RuntimeStore] = None,
        max_workers: int = 8,
        push_queue_size: int = 256,
        supervisor: Optional[Any] = None,
    ) -> None:
        if engine.service_engine is None:
            raise ValueError(
                "the serving tier requires the 'service' backend; construct the "
                'engine with EngineConfig(backend="service")'
            )
        self._engine = engine
        self._store = store if store is not None else RuntimeStore()
        self._owns_store = store is None
        self._hub = PushHub(queue_size=push_queue_size)
        self._engine_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="ksir-http"
        )
        self._last_update: Optional[ServiceUpdate] = None
        self._closed = False
        # Optional repro.ha supervisor (duck-typed: needs status()); used
        # by /readyz for shard health and surfaced under /telemetry.
        self._supervisor = supervisor
        self._wire_listeners(self._service())

    # -- accessors ---------------------------------------------------------------------

    @property
    def engine(self) -> KSIREngine:
        """The engine currently serving (hot-swapped by checkpoint load)."""
        return self._engine

    @property
    def store(self) -> RuntimeStore:
        """The runtime-telemetry store."""
        return self._store

    @property
    def hub(self) -> PushHub:
        """The WebSocket push hub."""
        return self._hub

    @property
    def supervisor(self) -> Optional[Any]:
        """The attached HA supervisor, if any."""
        return self._supervisor

    def _service(self) -> ServiceEngine:
        service = self._engine.service_engine
        assert service is not None  # enforced at construction and on swap
        return service

    def _wire_listeners(self, service: ServiceEngine) -> None:
        service.add_update_listener(self._hub.on_update)
        service.add_update_listener(self._remember_update)

    def _remember_update(self, update: ServiceUpdate) -> None:
        self._last_update = update

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the executor, the store and the engine (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        if self._owns_store:
            self._store.close()
        else:
            self._store.flush()
        self._engine.close()

    # -- ASGI entry point --------------------------------------------------------------

    async def __call__(self, scope: Scope, receive: Receive, send: Send) -> None:
        """The ASGI application callable."""
        scope_type = scope.get("type")
        if scope_type == "http":
            await self._handle_http(scope, receive, send)
        elif scope_type == "websocket":
            await self._handle_websocket(scope, receive, send)
        elif scope_type == "lifespan":
            await self._handle_lifespan(receive, send)
        else:  # pragma: no cover - unknown scope types
            raise RuntimeError(f"unsupported ASGI scope type {scope_type!r}")

    # -- HTTP --------------------------------------------------------------------------

    async def _handle_http(self, scope: Scope, receive: Receive, send: Send) -> None:
        method = str(scope.get("method", "GET")).upper()
        path = str(scope.get("path", "/"))
        route, params, seen_path = self._match(method, path)
        body = await _read_body(receive)
        if route is None:
            response = Response.error(
                "method not allowed" if seen_path else "not found",
                405 if seen_path else 404,
            )
            label = "*"
        else:
            headers = {
                key.decode("latin-1").lower(): value.decode("latin-1")
                for key, value in scope.get("headers", [])
            }
            request = Request(
                method=method,
                path=path,
                params=params,
                query_string=scope.get("query_string", b"").decode("latin-1"),
                headers=headers,
                body=body,
            )
            label = route.name
            loop = asyncio.get_running_loop()
            started = loop.time()
            try:
                response = await route.handler(self, request)
            except codec.PayloadError as error:
                response = Response.error(str(error), 422)
            except (KeyError, FileNotFoundError) as error:
                response = Response.error(str(error) or "not found", 404)
            except (ValueError, CheckpointError) as error:
                response = Response.error(str(error), 400)
            except RuntimeError as error:
                response = Response.error(str(error), 409)
            self._store.observe_latency(label, (loop.time() - started) * 1000.0)
        self._store.increment("http_requests", f"{label}|{response.status}")
        await _send_response(send, response)

    def _match(
        self, method: str, path: str
    ) -> Tuple[Optional[Route], Dict[str, str], bool]:
        seen_path = False
        for route in _ROUTES:
            match = route.pattern.match(path)
            if match is None:
                continue
            seen_path = True
            if route.method == method:
                return route, dict(match.groupdict()), True
        return None, {}, seen_path

    async def _run(self, fn: Callable[[], Any]) -> Any:
        """Run an engine-touching callable on a worker thread, serialised."""

        def locked() -> Any:
            with self._engine_lock:
                return fn()

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, locked)

    # -- WebSocket ---------------------------------------------------------------------

    async def _handle_websocket(
        self, scope: Scope, receive: Receive, send: Send
    ) -> None:
        path = str(scope.get("path", ""))
        match = re.match(r"^/ws/queries/(?P<query_id>[^/]+)$", path)
        message = await receive()
        if message.get("type") != "websocket.connect":  # pragma: no cover
            return
        if match is None:
            await send({"type": "websocket.close", "code": 4400})
            return
        query_id = match.group("query_id")
        await send({"type": "websocket.accept"})
        with self._engine_lock:
            service = self._service()
            registered = query_id in service.registry
            snapshot = service.result(query_id) if registered else None
        if not registered:
            await _send_json(send, {
                "type": "error",
                "error": f"no standing query {query_id!r}",
            })
            await send({"type": "websocket.close", "code": WS_CLOSE_UNKNOWN_QUERY})
            self._store.increment("ws_rejects")
            return

        loop = asyncio.get_running_loop()
        subscription = self._hub.subscribe(query_id, loop)
        session_id = self._store.ws_session_opened(query_id)
        self._store.increment("ws_connects")
        delivered = 0
        try:
            await _send_json(send, {
                "type": "snapshot",
                "query_id": query_id,
                "result": (
                    None if snapshot is None
                    else codec.standing_result_to_json(snapshot)
                ),
            })
            receiver = asyncio.ensure_future(receive())
            getter = asyncio.ensure_future(subscription.queue.get())
            try:
                while True:
                    done, _ = await asyncio.wait(
                        {receiver, getter}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if receiver in done:
                        incoming = receiver.result()
                        if incoming.get("type") == "websocket.disconnect":
                            break
                        # Client text frames are treated as keepalives.
                        receiver = asyncio.ensure_future(receive())
                    if getter in done:
                        payload = getter.result()
                        await _send_json(send, payload)
                        delivered += 1
                        if payload.get("type") in ("expired", "unregistered"):
                            await send({"type": "websocket.close", "code": 1000})
                            break
                        getter = asyncio.ensure_future(subscription.queue.get())
            finally:
                receiver.cancel()
                getter.cancel()
        except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
            pass
        finally:
            self._hub.unsubscribe(subscription)
            self._store.increment("ws_pushes", by=delivered)
            self._store.ws_session_closed(session_id, delivered)

    # -- lifespan ----------------------------------------------------------------------

    async def _handle_lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            kind = message.get("type")
            if kind == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif kind == "lifespan.shutdown":
                self._store.flush()
                await send({"type": "lifespan.shutdown.complete"})
                return


# -- handlers --------------------------------------------------------------------------


async def _health(server: KSIRServer, request: Request) -> Response:
    engine = server.engine
    return Response.json({
        "status": "ok",
        "backend": engine.backend_name,
        "buckets_processed": engine.buckets_processed,
        "standing_queries": len(server._service().registry),
    })


async def _healthz(server: KSIRServer, request: Request) -> Response:
    # Pure liveness: if this handler runs, the process serves.  No engine
    # access, no lock — safe as a container liveness probe even while a
    # checkpoint load or recovery holds the engine lock.
    return Response.json({"status": "alive"})


async def _readyz(server: KSIRServer, request: Request) -> Response:
    if server._closed:
        return Response.json({"status": "closed"}, status=503)
    supervisor = server.supervisor
    if supervisor is not None:
        status = supervisor.status()
        if not status.get("healthy", False):
            dead = [
                shard["shard_id"]
                for shard in status.get("shards", ())
                if not shard.get("alive", True)
            ]
            return Response.json(
                {"status": "degraded", "dead_shards": dead}, status=503
            )
    try:
        backend = server.engine.backend_name
    except RuntimeError:
        return Response.json({"status": "engine closed"}, status=503)
    return Response.json({"status": "ready", "backend": backend})


async def _stats(server: KSIRServer, request: Request) -> Response:
    stats = await server._run(lambda: server.engine.stats())
    return Response.json({"stats": stats})


async def _list_queries(server: KSIRServer, request: Request) -> Response:
    def collect() -> List[Dict[str, Any]]:
        service = server._service()
        entries = []
        for standing in service.registry:
            entry = codec.standing_to_json(standing)
            result = service.result(standing.query_id)
            entry["has_result"] = result is not None
            entry["subscribers"] = server.hub.subscriber_count(standing.query_id)
            entries.append(entry)
        return entries

    queries = await server._run(collect)
    return Response.json({"queries": queries, "count": len(queries)})


async def _register_query(server: KSIRServer, request: Request) -> Response:
    options = codec.parse_registration(request.json())

    def register() -> Dict[str, Any]:
        engine = server.engine
        if options["vector"] is not None:
            query: Any = KSIRQuery(k=options["k"], vector=options["vector"])
            standing = engine.register(
                query,
                query_id=options["query_id"],
                algorithm=options["algorithm"],
                epsilon=options["epsilon"],
                ttl_buckets=options["ttl_buckets"],
            )
        else:
            standing = engine.register(
                options["keywords"],
                k=options["k"],
                query_id=options["query_id"],
                algorithm=options["algorithm"],
                epsilon=options["epsilon"],
                ttl_buckets=options["ttl_buckets"],
            )
        return codec.standing_to_json(standing)

    registered = await server._run(register)
    return Response.json({"query": registered}, status=201)


async def _get_query(server: KSIRServer, request: Request) -> Response:
    query_id = request.params["query_id"]

    def fetch() -> Optional[Dict[str, Any]]:
        service = server._service()
        if query_id not in service.registry:
            return None
        entry = codec.standing_to_json(service.registry.get(query_id))
        result = service.result(query_id)
        entry["result"] = (
            None if result is None else codec.standing_result_to_json(result)
        )
        entry["subscribers"] = server.hub.subscriber_count(query_id)
        return entry

    entry = await server._run(fetch)
    if entry is None:
        return Response.error(f"no standing query {query_id!r}", 404)
    return Response.json({"query": entry})


async def _delete_query(server: KSIRServer, request: Request) -> Response:
    query_id = request.params["query_id"]
    removed = await server._run(lambda: server.engine.unregister(query_id))
    if not removed:
        return Response.error(f"no standing query {query_id!r}", 404)
    server.hub.close_query(query_id)
    return Response.json({"removed": True, "query_id": query_id})


async def _get_result(server: KSIRServer, request: Request) -> Response:
    query_id = request.params["query_id"]

    def fetch() -> Tuple[bool, Optional[Dict[str, Any]]]:
        service = server._service()
        if query_id not in service.registry:
            return False, None
        result = service.result(query_id)
        return True, (
            None if result is None else codec.standing_result_to_json(result)
        )

    registered, result = await server._run(fetch)
    if not registered:
        return Response.error(f"no standing query {query_id!r}", 404)
    return Response.json({"query_id": query_id, "result": result})


async def _ad_hoc_query(server: KSIRServer, request: Request) -> Response:
    payload = request.json()
    keywords, vector, k = codec.parse_query_spec(payload)
    algorithm = payload.get("algorithm")
    epsilon = payload.get("epsilon")
    if epsilon is not None:
        epsilon = float(epsilon)

    def run() -> Dict[str, Any]:
        engine = server.engine
        if keywords is not None:
            result = engine.query_keywords(
                keywords, k=k, algorithm=algorithm, epsilon=epsilon
            )
        else:
            query = KSIRQuery(k=k, vector=vector or [])
            result = engine.query(query, algorithm=algorithm, epsilon=epsilon)
        return codec.result_to_json(result)

    result_json = await server._run(run)
    return Response.json({"result": result_json})


async def _ingest_bucket(server: KSIRServer, request: Request) -> Response:
    elements, end_time = codec.parse_ingest(request.json())

    def ingest() -> Dict[str, Any]:
        engine = server.engine
        server._last_update = None
        engine.ingest_bucket(elements, end_time)
        update = server._last_update
        return {
            "ingested": len(elements),
            "bucket": engine.buckets_processed,
            "time": engine.current_time,
            "updated": sorted(update.updated) if update is not None else [],
            "expired": sorted(update.expired) if update is not None else [],
        }

    summary = await server._run(ingest)
    server.store.increment("elements_ingested", by=int(summary["ingested"]))
    return Response.json(summary)


async def _ingest_events(server: KSIRServer, request: Request) -> Response:
    events, flush = codec.parse_events(request.json())

    def ingest() -> Dict[str, Any]:
        engine = server.engine
        sealed = engine.ingest(events)
        if flush:
            sealed += engine.ingest_flush()
        metrics = engine.stream_metrics()
        return {
            "accepted": len(events),
            "buckets_sealed": sealed,
            "time": engine.current_time,
            "streams": metrics.to_dict(),
        }

    summary = await server._run(ingest)
    server.store.increment("elements_ingested", by=int(summary["accepted"]))
    return Response.json(summary)


async def _checkpoint_save(server: KSIRServer, request: Request) -> Response:
    payload = request.json()
    path = payload.get("path")
    if not isinstance(path, str) or not path:
        raise codec.PayloadError("'path' must be a non-empty string")
    written = await server._run(lambda: server.engine.save(path))
    return Response.json({"saved": True, "path": str(written)})


async def _checkpoint_load(server: KSIRServer, request: Request) -> Response:
    payload = request.json()
    path = payload.get("path")
    if not isinstance(path, str) or not path:
        raise codec.PayloadError("'path' must be a non-empty string")

    def load() -> Dict[str, Any]:
        restored = KSIREngine.load(path)
        if restored.service_engine is None:
            restored.close()
            raise codec.PayloadError(
                "checkpoint does not hold a 'service' backend engine"
            )
        previous = server._engine
        server._engine = restored
        server._wire_listeners(restored.service_engine)
        server.hub.reset()
        previous.close()
        return {
            "restored": True,
            "path": path,
            "buckets_processed": restored.buckets_processed,
            "standing_queries": len(restored.service_engine.registry),
        }

    summary = await server._run(load)
    return Response.json(summary)


def _engine_view(
    server: KSIRServer,
) -> Tuple[Dict[str, Any], Dict[str, object], Dict[str, object]]:
    return (
        dict(server.engine.stats()),
        server._service().metrics.to_dict(),
        server.engine.stream_metrics().to_dict(),
    )


async def _metrics(server: KSIRServer, request: Request) -> Response:
    stats, service_metrics, stream_metrics = await server._run(
        partial(_engine_view, server)
    )
    text = render_prometheus(
        server.store,
        stats,
        service_metrics,
        server.hub.subscriber_count(),
        stream_metrics,
    )
    return Response.text(text, content_type="text/plain; version=0.0.4; charset=utf-8")


async def _telemetry(server: KSIRServer, request: Request) -> Response:
    stats, service_metrics, stream_metrics = await server._run(
        partial(_engine_view, server)
    )
    supervisor = server.supervisor
    return Response.json({
        "engine": stats,
        "service": service_metrics,
        "streams": stream_metrics,
        "push": {
            "subscribers": server.hub.subscriber_count(),
            "pushes": server.hub.pushes,
        },
        "runtime": server.store.snapshot(),
        "supervisor": None if supervisor is None else supervisor.status(),
    })


_ROUTES: Tuple[Route, ...] = (
    _route("GET", "/health", _health),
    _route("GET", "/healthz", _healthz),
    _route("GET", "/readyz", _readyz),
    _route("GET", "/stats", _stats),
    _route("GET", "/queries", _list_queries),
    _route("POST", "/queries", _register_query),
    _route("GET", "/queries/{query_id}", _get_query),
    _route("DELETE", "/queries/{query_id}", _delete_query),
    _route("GET", "/queries/{query_id}/result", _get_result),
    _route("POST", "/query", _ad_hoc_query),
    _route("POST", "/ingest", _ingest_events),
    _route("POST", "/ingest/bucket", _ingest_bucket),
    _route("POST", "/checkpoint/save", _checkpoint_save),
    _route("POST", "/checkpoint/load", _checkpoint_load),
    _route("GET", "/metrics", _metrics),
    _route("GET", "/telemetry", _telemetry),
)


def create_app(
    engine: KSIREngine,
    store: Optional[RuntimeStore] = None,
    max_workers: int = 8,
    push_queue_size: int = 256,
    supervisor: Optional[Any] = None,
) -> KSIRServer:
    """Build the ASGI application over an engine (the public constructor).

    ``store`` defaults to an ephemeral in-memory runtime store; pass a
    file-backed :class:`RuntimeStore` so telemetry survives restarts.
    ``supervisor`` attaches a :class:`repro.ha.ClusterSupervisor` whose
    shard health gates ``/readyz`` and is exported under ``/telemetry``.
    The returned object is both the application state and the ASGI
    callable.
    """
    return KSIRServer(
        engine,
        store=store,
        max_workers=max_workers,
        push_queue_size=push_queue_size,
        supervisor=supervisor,
    )


# -- ASGI plumbing ---------------------------------------------------------------------


async def _read_body(receive: Receive) -> bytes:
    chunks: List[bytes] = []
    while True:
        message = await receive()
        kind = message.get("type")
        if kind == "http.request":
            chunks.append(bytes(message.get("body", b"")))
            if not message.get("more_body", False):
                break
        elif kind == "http.disconnect":  # pragma: no cover - client hangup
            break
    return b"".join(chunks)


async def _send_response(send: Send, response: Response) -> None:
    headers = [
        (b"content-type", response.content_type.encode("latin-1")),
        (b"content-length", str(len(response.body)).encode("latin-1")),
    ]
    headers.extend(
        (key.encode("latin-1"), value.encode("latin-1"))
        for key, value in response.headers
    )
    await send({
        "type": "http.response.start",
        "status": response.status,
        "headers": headers,
    })
    await send({"type": "http.response.body", "body": response.body})


async def _send_json(send: Send, payload: Mapping[str, Any]) -> None:
    await send({"type": "websocket.send", "text": json.dumps(payload)})
