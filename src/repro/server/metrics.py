"""Prometheus text-format rendering of the serving tier's telemetry.

Exposition format 0.0.4: ``# HELP``/``# TYPE`` headers, histogram buckets
with *cumulative* counts per ``le`` bound (the store keeps per-bucket
counts, so the renderer cumulates), and every engine/service counter the
runtime exposes flattened into ``ksir_*`` gauges.  No client library — the
format is a few lines of text and this tier keeps zero hard dependencies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.server.runtime_store import LATENCY_BUCKETS_MS, RuntimeStore


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sanitise(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _emit_numeric(
    lines: List[str], prefix: str, payload: Mapping[str, Any]
) -> None:
    """Flatten numeric (possibly nested) mapping entries into gauges."""
    for key, value in sorted(payload.items()):
        metric = f"{prefix}_{_sanitise(str(key))}"
        if isinstance(value, bool):
            lines.append(f"{metric} {int(value)}")
        elif isinstance(value, (int, float)):
            lines.append(f"{metric} {value}")
        elif isinstance(value, Mapping):
            _emit_numeric(lines, metric, value)


def render_prometheus(
    store: RuntimeStore,
    engine_stats: Mapping[str, Any],
    service_metrics: Mapping[str, Any],
    ws_subscribers: int,
    stream_metrics: Optional[Mapping[str, Any]] = None,
) -> str:
    """The ``/metrics`` document."""
    lines: List[str] = []

    counters = store.counters()
    lines.append(
        "# HELP ksir_http_requests_total Requests served, by endpoint and status."
    )
    lines.append("# TYPE ksir_http_requests_total counter")
    for label, value in sorted(counters.get("http_requests", {}).items()):
        endpoint, _, status = label.partition("|")
        lines.append(
            "ksir_http_requests_total"
            f'{{endpoint="{_escape_label(endpoint)}",status="{status or "?"}"}}'
            f" {value}"
        )

    lines.append(
        "# HELP ksir_http_request_duration_ms Request latency histogram "
        "per endpoint."
    )
    lines.append("# TYPE ksir_http_request_duration_ms histogram")
    bounds: Tuple[float, ...] = LATENCY_BUCKETS_MS + (float("inf"),)
    for endpoint, histogram in sorted(store.histograms().items()):
        buckets: Dict[str, int] = dict(histogram["buckets"])  # type: ignore[arg-type]
        tag = _escape_label(endpoint)
        cumulative = 0
        for bound in bounds:
            label = "+Inf" if bound == float("inf") else f"{bound:g}"
            cumulative += int(buckets.get(label, 0))
            lines.append(
                "ksir_http_request_duration_ms_bucket"
                f'{{endpoint="{tag}",le="{label}"}} {cumulative}'
            )
        lines.append(
            f'ksir_http_request_duration_ms_sum{{endpoint="{tag}"}} '
            f'{histogram["total_ms"]}'
        )
        lines.append(
            f'ksir_http_request_duration_ms_count{{endpoint="{tag}"}} '
            f'{histogram["count"]}'
        )

    ws = store.ws_stats()
    lines.append(
        "# HELP ksir_ws_sessions_total WebSocket sessions opened "
        "(all restarts)."
    )
    lines.append("# TYPE ksir_ws_sessions_total counter")
    lines.append(f"ksir_ws_sessions_total {ws['sessions_total']}")
    lines.append("# HELP ksir_ws_pushes_total Deltas pushed to subscribers.")
    lines.append("# TYPE ksir_ws_pushes_total counter")
    lines.append(f"ksir_ws_pushes_total {ws['pushes_total']}")
    lines.append("# HELP ksir_ws_subscribers Live WebSocket subscriptions.")
    lines.append("# TYPE ksir_ws_subscribers gauge")
    lines.append(f"ksir_ws_subscribers {ws_subscribers}")

    for name, labelled in sorted(counters.items()):
        if name == "http_requests":
            continue
        metric = f"ksir_runtime_{_sanitise(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        for label, value in sorted(labelled.items()):
            if label:
                lines.append(
                    f'{metric}{{label="{_escape_label(label)}"}} {value}'
                )
            else:
                lines.append(f"{metric} {value}")

    # The kernel layer gets its own ``ksir_kernel_*`` namespace (labelled
    # per kernel) instead of being flattened into the engine gauges.
    kernel_stats = engine_stats.get("kernels")
    engine_stats = {
        key: value for key, value in engine_stats.items() if key != "kernels"
    }

    engine_lines: List[str] = []
    _emit_numeric(engine_lines, "ksir_engine", engine_stats)
    if engine_lines:
        lines.append("# HELP ksir_engine_* Engine backend counters.")
        lines.extend(engine_lines)

    if isinstance(kernel_stats, Mapping):
        per_kernel = kernel_stats.get("per_kernel")
        backend = str(kernel_stats.get("backend", "numpy"))
        lines.append(
            "# HELP ksir_kernel_backend The active hot-path kernel backend "
            "(1 = in use)."
        )
        lines.append("# TYPE ksir_kernel_backend gauge")
        lines.append(
            f'ksir_kernel_backend{{backend="{_escape_label(backend)}"}} 1'
        )
        if isinstance(per_kernel, Mapping):
            lines.append(
                "# HELP ksir_kernel_calls_total Calls per hot-path kernel."
            )
            lines.append("# TYPE ksir_kernel_calls_total counter")
            lines.append(
                "# HELP ksir_kernel_time_ns_total Cumulative nanoseconds "
                "per hot-path kernel."
            )
            lines.append("# TYPE ksir_kernel_time_ns_total counter")
            for name, counters in sorted(per_kernel.items()):
                if not isinstance(counters, Mapping):
                    continue
                tag = _escape_label(_sanitise(str(name)))
                lines.append(
                    f'ksir_kernel_calls_total{{kernel="{tag}"}} '
                    f'{int(counters.get("calls", 0))}'
                )
                lines.append(
                    f'ksir_kernel_time_ns_total{{kernel="{tag}"}} '
                    f'{int(counters.get("total_ns", 0))}'
                )

    service_lines: List[str] = []
    _emit_numeric(service_lines, "ksir_service", service_metrics)
    if service_lines:
        lines.append("# HELP ksir_service_* Incremental-serving metrics.")
        lines.extend(service_lines)

    if stream_metrics is not None:
        stream_lines: List[str] = []
        _emit_numeric(stream_lines, "ksir_streams", stream_metrics)
        if stream_lines:
            lines.append(
                "# HELP ksir_streams_* Event-time ingest lateness/watermark "
                "gauges."
            )
            lines.extend(stream_lines)

    return "\n".join(lines) + "\n"
