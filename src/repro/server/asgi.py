"""A stdlib asyncio HTTP/1.1 + WebSocket server driving any ASGI app.

Production deployments install the ``server`` extra and run uvicorn; this
module is the zero-dependency fallback that makes the serving tier, its
tests and its load benchmark work on a bare Python install.  It implements
the slice of HTTP/1.1 the tier needs — request line, headers,
``Content-Length`` bodies, keep-alive — and upgrades to RFC 6455
WebSockets using the shared framing in :mod:`repro.server.ws_frames`.

The bridge follows the ASGI 3.0 connection scopes (``http``,
``websocket``), so the same application object is served here and under
uvicorn unchanged.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, List, MutableMapping, Optional, Tuple

from repro.server import ws_frames

ASGIApp = Callable[
    [MutableMapping[str, Any], Callable[[], Awaitable[Any]], Callable[[Any], Awaitable[None]]],
    Awaitable[None],
]

#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024
#: Upper bound on a request body.
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 411: "Length Required", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
    501: "Not Implemented",
}


class ServerHandle:
    """A started server: address, graceful stop, async context manager."""

    def __init__(self, server: asyncio.AbstractServer, host: str) -> None:
        self._server = server
        self.host = host
        sockets = server.sockets or []
        self.port = int(sockets[0].getsockname()[1]) if sockets else 0

    @property
    def url(self) -> str:
        """The HTTP base URL of the bound socket."""
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        """Stop accepting connections and wait for the listener to close."""
        self._server.close()
        await self._server.wait_closed()

    async def __aenter__(self) -> "ServerHandle":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()


async def serve(app: ASGIApp, host: str = "127.0.0.1", port: int = 0) -> ServerHandle:
    """Start serving ``app``; ``port=0`` binds an ephemeral port."""

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await _handle_connection(app, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:  # noqa: BLE001 - a broken connection must not kill the server
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 # pragma: no cover
                pass

    server = await asyncio.start_server(on_connection, host=host, port=port)
    return ServerHandle(server, host)


def run(app: ASGIApp, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Serve ``app`` until interrupted (the CLI's blocking entry point)."""

    async def main() -> None:
        async with _Lifespan(app) as _:
            handle = await serve(app, host=host, port=port)
            print(f"serving on {handle.url} (stdlib asgi server)")
            try:
                await asyncio.Event().wait()
            finally:
                await handle.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class _Lifespan:
    """Drives the ASGI lifespan protocol around a serving run."""

    def __init__(self, app: ASGIApp) -> None:
        self._app = app
        self._to_app: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self._startup = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._task: Optional["asyncio.Task[None]"] = None

    async def __aenter__(self) -> "_Lifespan":
        scope = {"type": "lifespan", "asgi": {"version": "3.0"}}

        async def receive() -> Dict[str, Any]:
            return await self._to_app.get()

        async def send(message: Any) -> None:
            kind = message.get("type", "")
            if kind.startswith("lifespan.startup"):
                self._startup.set()
            elif kind.startswith("lifespan.shutdown"):
                self._shutdown.set()

        self._task = asyncio.ensure_future(self._app(scope, receive, send))
        await self._to_app.put({"type": "lifespan.startup"})
        await self._startup.wait()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self._to_app.put({"type": "lifespan.shutdown"})
        await self._shutdown.wait()
        if self._task is not None:
            await self._task


async def _handle_connection(
    app: ASGIApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    while True:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return
        except asyncio.LimitOverrunError:
            await _write_simple(writer, 413, "request head too large")
            return
        if len(head) > MAX_HEAD_BYTES:
            await _write_simple(writer, 413, "request head too large")
            return
        try:
            method, target, headers = _parse_head(head)
        except ValueError as error:
            await _write_simple(writer, 400, str(error))
            return

        if headers.get("upgrade", "").lower() == "websocket":
            await _serve_websocket(app, reader, writer, method, target, headers)
            return

        if "transfer-encoding" in headers:
            await _write_simple(writer, 501, "chunked bodies are not supported")
            return
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            await _write_simple(writer, 400, "bad Content-Length")
            return
        if length > MAX_BODY_BYTES:
            await _write_simple(writer, 413, "request body too large")
            return
        body = await reader.readexactly(length) if length else b""

        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        await _serve_http(app, writer, method, target, headers, body, keep_alive)
        if not keep_alive:
            return


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ValueError("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError("malformed header line")
        headers[name.strip().lower()] = value.strip()
    return method, target, headers


def _split_target(target: str) -> Tuple[str, bytes]:
    path, _, query = target.partition("?")
    return path, query.encode("latin-1")


async def _serve_http(
    app: ASGIApp,
    writer: asyncio.StreamWriter,
    method: str,
    target: str,
    headers: Dict[str, str],
    body: bytes,
    keep_alive: bool,
) -> None:
    path, query_string = _split_target(target)
    scope: Dict[str, Any] = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method,
        "path": path,
        "raw_path": target.encode("latin-1"),
        "query_string": query_string,
        "headers": [
            (name.encode("latin-1"), value.encode("latin-1"))
            for name, value in headers.items()
        ],
    }
    messages = iter([
        {"type": "http.request", "body": body, "more_body": False},
        {"type": "http.disconnect"},
    ])

    async def receive() -> Dict[str, Any]:
        return next(messages, {"type": "http.disconnect"})

    state: Dict[str, Any] = {"status": 500, "headers": [], "chunks": []}

    async def send(message: Any) -> None:
        kind = message.get("type")
        if kind == "http.response.start":
            state["status"] = int(message.get("status", 200))
            state["headers"] = list(message.get("headers", []))
        elif kind == "http.response.body":
            state["chunks"].append(bytes(message.get("body", b"")))

    try:
        await app(scope, receive, send)
        payload = b"".join(state["chunks"])
        response_headers = list(state["headers"])
        status = state["status"]
    except Exception:  # noqa: BLE001 - app errors become a 500, connection survives
        payload = json.dumps({"error": "internal server error"}).encode("utf-8")
        response_headers = [(b"content-type", b"application/json")]
        status = 500
    names = {name.lower() for name, _ in response_headers}
    if b"content-length" not in names:
        response_headers.append(
            (b"content-length", str(len(payload)).encode("latin-1"))
        )
    response_headers.append(
        (b"connection", b"keep-alive" if keep_alive else b"close")
    )
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {phrase}".encode("latin-1")]
    head.extend(name + b": " + value for name, value in response_headers)
    writer.write(b"\r\n".join(head) + b"\r\n\r\n" + payload)
    await writer.drain()


async def _serve_websocket(
    app: ASGIApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    target: str,
    headers: Dict[str, str],
) -> None:
    key = headers.get("sec-websocket-key")
    if method != "GET" or key is None:
        await _write_simple(writer, 400, "malformed WebSocket handshake")
        return
    path, query_string = _split_target(target)
    scope: Dict[str, Any] = {
        "type": "websocket",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "scheme": "ws",
        "path": path,
        "raw_path": target.encode("latin-1"),
        "query_string": query_string,
        "headers": [
            (name.encode("latin-1"), value.encode("latin-1"))
            for name, value in headers.items()
        ],
        "subprotocols": [],
    }
    accepted = False
    closed = False
    first_receive: List[bool] = [True]

    async def receive() -> Dict[str, Any]:
        if first_receive[0]:
            first_receive[0] = False
            return {"type": "websocket.connect"}
        while True:
            try:
                frame = await ws_frames.read_message(reader)
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                ws_frames.WebSocketProtocolError,
            ):
                return {"type": "websocket.disconnect", "code": 1006}
            if frame.opcode == ws_frames.OP_PING:
                writer.write(ws_frames.encode_frame(ws_frames.OP_PONG, frame.payload))
                await writer.drain()
                continue
            if frame.opcode == ws_frames.OP_PONG:
                continue
            if frame.opcode == ws_frames.OP_CLOSE:
                if not closed:
                    try:
                        writer.write(
                            ws_frames.encode_close(ws_frames.close_code(frame))
                        )
                        await writer.drain()
                    except ConnectionError:  # pragma: no cover
                        pass
                return {
                    "type": "websocket.disconnect",
                    "code": ws_frames.close_code(frame),
                }
            if frame.opcode == ws_frames.OP_TEXT:
                return {
                    "type": "websocket.receive",
                    "text": frame.payload.decode("utf-8", "replace"),
                }
            return {"type": "websocket.receive", "bytes": frame.payload}

    async def send(message: Any) -> None:
        nonlocal accepted, closed
        kind = message.get("type")
        if kind == "websocket.accept":
            accepted = True
            response = (
                b"HTTP/1.1 101 Switching Protocols\r\n"
                b"Upgrade: websocket\r\n"
                b"Connection: Upgrade\r\n"
                b"Sec-WebSocket-Accept: "
                + ws_frames.accept_key(key).encode("ascii")
                + b"\r\n\r\n"
            )
            writer.write(response)
            await writer.drain()
        elif kind == "websocket.send":
            if "text" in message and message["text"] is not None:
                writer.write(ws_frames.encode_text(str(message["text"])))
            else:
                writer.write(
                    ws_frames.encode_frame(
                        ws_frames.OP_BINARY, bytes(message.get("bytes", b""))
                    )
                )
            await writer.drain()
        elif kind == "websocket.close":
            if not accepted:
                await _write_simple(writer, 403, "websocket rejected")
            elif not closed:
                writer.write(
                    ws_frames.encode_close(int(message.get("code", 1000)))
                )
                await writer.drain()
            closed = True

    await app(scope, receive, send)
    if accepted and not closed:
        try:
            writer.write(ws_frames.encode_close(1000))
            await writer.drain()
        except ConnectionError:  # pragma: no cover
            pass


async def _write_simple(
    writer: asyncio.StreamWriter, status: int, message: str
) -> None:
    payload = json.dumps({"error": message}).encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    writer.write(
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1") + payload
    )
    await writer.drain()
