"""WebSocket push fan-out for standing-query result deltas.

The :class:`PushHub` sits between the synchronous serving engine and the
asynchronous WebSocket sessions.  It subscribes to
:meth:`~repro.service.engine.ServiceEngine.add_update_listener`, so a push
fires exactly when the incremental scheduler re-evaluated a standing query
on an ingested bucket — the dirty-topic epochs decide, never a poll — and
is dropped for every query the scheduler proved unchanged.

Engine callbacks arrive on whatever worker thread ran the ingest; each
subscription therefore carries the event loop of its WebSocket session and
messages cross the boundary with ``loop.call_soon_threadsafe`` into a
bounded per-session queue.  A session that cannot keep up loses oldest
messages first (push channels advertise the *latest* answer; history is
the REST surface's job) and the drop is counted.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.service.engine import ServiceUpdate, StandingResult


@dataclass(eq=False)
class Subscription:
    """One WebSocket session's subscription to one standing query.

    Identity-hashed (``eq=False``) so sessions live in the hub's per-query
    sets.
    """

    query_id: str
    queue: "asyncio.Queue[Dict[str, object]]"
    loop: asyncio.AbstractEventLoop
    delivered: int = 0
    dropped: int = 0

    def deliver(self, message: Dict[str, object]) -> None:
        """Enqueue from any thread, dropping the oldest message when full."""

        def _put() -> None:
            while True:
                try:
                    self.queue.put_nowait(message)
                    self.delivered += 1
                    return
                except asyncio.QueueFull:
                    try:
                        self.queue.get_nowait()
                        self.dropped += 1
                    except asyncio.QueueEmpty:  # pragma: no cover - race window
                        pass

        self.loop.call_soon_threadsafe(_put)


@dataclass
class _QueryChannel:
    """The subscriptions and last-pushed answer of one standing query."""

    subscriptions: Set[Subscription] = field(default_factory=set)
    last_ids: Optional[Tuple[int, ...]] = None
    last_score: Optional[float] = None


class PushHub:
    """Fans standing-query updates out to subscribed WebSocket sessions."""

    def __init__(self, queue_size: int = 256) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        self._queue_size = queue_size
        self._lock = threading.Lock()
        self._channels: Dict[str, _QueryChannel] = {}
        self._pushes = 0

    @property
    def pushes(self) -> int:
        """Messages fanned out so far (one per subscription per update)."""
        with self._lock:
            return self._pushes

    def subscriber_count(self, query_id: Optional[str] = None) -> int:
        """Active subscriptions, for one query or in total."""
        with self._lock:
            if query_id is not None:
                channel = self._channels.get(query_id)
                return len(channel.subscriptions) if channel is not None else 0
            return sum(len(c.subscriptions) for c in self._channels.values())

    # -- session side ------------------------------------------------------------------

    def subscribe(
        self, query_id: str, loop: asyncio.AbstractEventLoop
    ) -> Subscription:
        """Register a session; must be paired with :meth:`unsubscribe`."""
        subscription = Subscription(
            query_id=query_id,
            queue=asyncio.Queue(maxsize=self._queue_size),
            loop=loop,
        )
        with self._lock:
            self._channels.setdefault(query_id, _QueryChannel()).subscriptions.add(
                subscription
            )
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop a session's subscription (idempotent)."""
        with self._lock:
            channel = self._channels.get(subscription.query_id)
            if channel is None:
                return
            channel.subscriptions.discard(subscription)
            if not channel.subscriptions and channel.last_ids is None:
                del self._channels[subscription.query_id]

    # -- engine side -------------------------------------------------------------------

    def on_update(self, update: ServiceUpdate) -> None:
        """The :class:`~repro.service.engine.ServiceEngine` update listener.

        Computes a per-query delta against the last pushed answer and fans
        it out; queries without a live subscription still advance their
        delta anchor so a later subscriber's first push is a true delta.
        """
        with self._lock:
            targets: List[Tuple[Subscription, Dict[str, object]]] = []
            for query_id, standing in update.updated.items():
                channel = self._channels.get(query_id)
                if channel is None:
                    channel = self._channels[query_id] = _QueryChannel()
                message = self._delta_message_locked(channel, update, standing)
                for subscription in channel.subscriptions:
                    targets.append((subscription, message))
                    self._pushes += 1
            for query_id in update.expired:
                channel = self._channels.pop(query_id, None)
                if channel is None:
                    continue
                farewell: Dict[str, object] = {
                    "type": "expired",
                    "query_id": query_id,
                    "bucket": update.bucket,
                    "time": update.time,
                }
                for subscription in channel.subscriptions:
                    targets.append((subscription, farewell))
                    self._pushes += 1
        for subscription, message in targets:
            subscription.deliver(message)

    def close_query(self, query_id: str, reason: str = "unregistered") -> None:
        """Notify and detach every subscriber of an unregistered query."""
        with self._lock:
            channel = self._channels.pop(query_id, None)
            if channel is None:
                return
            subscriptions = tuple(channel.subscriptions)
        message: Dict[str, object] = {"type": reason, "query_id": query_id}
        for subscription in subscriptions:
            subscription.deliver(message)

    def reset(self) -> None:
        """Forget every delta anchor (after a checkpoint restore swap)."""
        with self._lock:
            for channel in self._channels.values():
                channel.last_ids = None
                channel.last_score = None

    # -- internals ---------------------------------------------------------------------

    def _delta_message_locked(
        self,
        channel: _QueryChannel,
        update: ServiceUpdate,
        standing: StandingResult,
    ) -> Dict[str, object]:
        result = standing.result
        new_ids: Tuple[int, ...] = tuple(int(i) for i in result.element_ids)
        previous = channel.last_ids
        if previous is None:
            added: Tuple[int, ...] = new_ids
            removed: Tuple[int, ...] = ()
        else:
            previous_set = set(previous)
            new_set = set(new_ids)
            added = tuple(i for i in new_ids if i not in previous_set)
            removed = tuple(i for i in previous if i not in new_set)
        changed = previous != new_ids or channel.last_score != result.score
        channel.last_ids = new_ids
        channel.last_score = result.score
        return {
            "type": "delta",
            "query_id": standing.query_id,
            "bucket": update.bucket,
            "time": update.time,
            "changed": changed,
            "element_ids": list(new_ids),
            "added": list(added),
            "removed": list(removed),
            "score": float(result.score),
            "algorithm": result.algorithm,
            "evaluations": standing.evaluations,
        }
