"""An in-process test client for the ASGI serving tier.

``TestClient`` drives the application through the ASGI interface directly
(no sockets, no HTTP parsing) from synchronous test code, the shape
httpx's ``ASGITransport`` client offers.  A dedicated background event
loop thread hosts the application, so WebSocket sessions stay live while
the test thread issues further HTTP requests — exactly the push-on-ingest
scenario the serving tier exists for.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.server.asgi import ASGIApp

_DEFAULT_TIMEOUT = 30.0


class TestResponse:
    """One response captured from the application."""

    __test__ = False  # not a pytest collection target

    def __init__(self, status: int, headers: List[Any], body: bytes) -> None:
        self.status = status
        self.headers = {
            bytes(name).decode("latin-1"): bytes(value).decode("latin-1")
            for name, value in headers
        }
        self.body = body

    def json(self) -> Any:
        """The body decoded as JSON."""
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TestResponse(status={self.status}, body={self.body[:120]!r})"


class TestClient:
    """Synchronous ASGI client over a background event loop."""

    __test__ = False  # not a pytest collection target

    def __init__(self, app: ASGIApp, timeout: float = _DEFAULT_TIMEOUT) -> None:
        self._app = app
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="ksir-test-loop", daemon=True
        )
        self._thread.start()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The background loop (exposed for advanced orchestration)."""
        return self._loop

    def close(self) -> None:
        """Stop the background loop (idempotent)."""
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "TestClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- HTTP --------------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> TestResponse:
        """Run one HTTP request through the application."""
        future = asyncio.run_coroutine_threadsafe(
            self._request(method, path, payload), self._loop
        )
        return future.result(timeout=self._timeout)

    def get(self, path: str) -> TestResponse:
        """``GET path``."""
        return self.request("GET", path)

    def post(
        self, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> TestResponse:
        """``POST path`` with a JSON body."""
        return self.request("POST", path, payload=payload or {})

    def delete(self, path: str) -> TestResponse:
        """``DELETE path``."""
        return self.request("DELETE", path)

    async def _request(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]]
    ) -> TestResponse:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        raw_path, _, query = path.partition("?")
        scope: Dict[str, Any] = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": raw_path,
            "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": [(b"content-type", b"application/json")],
        }
        incoming = iter([
            {"type": "http.request", "body": body, "more_body": False},
            {"type": "http.disconnect"},
        ])

        async def receive() -> Dict[str, Any]:
            return next(incoming, {"type": "http.disconnect"})

        state: Dict[str, Any] = {"status": 500, "headers": [], "chunks": []}

        async def send(message: Any) -> None:
            kind = message.get("type")
            if kind == "http.response.start":
                state["status"] = int(message.get("status", 200))
                state["headers"] = list(message.get("headers", []))
            elif kind == "http.response.body":
                state["chunks"].append(bytes(message.get("body", b"")))

        await self._app(scope, receive, send)
        return TestResponse(
            state["status"], state["headers"], b"".join(state["chunks"])
        )

    # -- WebSocket ---------------------------------------------------------------------

    def websocket(self, path: str) -> "TestWebSocket":
        """Open a WebSocket session; use as a context manager."""
        return TestWebSocket(self, path)


class TestWebSocket:
    """One in-process WebSocket session driven from the test thread."""

    __test__ = False  # not a pytest collection target

    def __init__(self, client: TestClient, path: str) -> None:
        self._client = client
        self._path = path
        self._to_app: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self._from_app: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        self._task: Optional["asyncio.Task[None]"] = None
        self.accepted = False
        self.close_code: Optional[int] = None

    def __enter__(self) -> "TestWebSocket":
        loop = self._client.loop
        asyncio.run_coroutine_threadsafe(self._start(), loop).result(timeout=5)
        first = self._next_raw(timeout=self._client._timeout)
        if first.get("type") == "websocket.accept":
            self.accepted = True
        elif first.get("type") == "websocket.close":
            self.close_code = int(first.get("code", 1006))
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    async def _start(self) -> None:
        raw_path, _, query = self._path.partition("?")
        scope: Dict[str, Any] = {
            "type": "websocket",
            "asgi": {"version": "3.0"},
            "scheme": "ws",
            "path": raw_path,
            "raw_path": self._path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": [],
            "subprotocols": [],
        }
        await self._to_app.put({"type": "websocket.connect"})

        async def receive() -> Dict[str, Any]:
            return await self._to_app.get()

        async def send(message: Any) -> None:
            await self._from_app.put(dict(message))

        self._task = asyncio.ensure_future(
            self._client._app(scope, receive, send)
        )

    def _next_raw(self, timeout: float) -> Dict[str, Any]:
        future = asyncio.run_coroutine_threadsafe(
            asyncio.wait_for(self._from_app.get(), timeout), self._client.loop
        )
        return future.result(timeout=timeout + 5)

    def receive_json(self, timeout: float = 10.0) -> Optional[Any]:
        """The next pushed JSON message, or ``None`` once the app closed.

        Raises :class:`TimeoutError` when nothing arrives in ``timeout``
        seconds.
        """
        while True:
            try:
                message = self._next_raw(timeout)
            except asyncio.TimeoutError:
                raise TimeoutError(
                    f"no WebSocket message within {timeout}s"
                ) from None
            kind = message.get("type")
            if kind == "websocket.send":
                if message.get("text") is not None:
                    return json.loads(str(message["text"]))
                return json.loads(bytes(message.get("bytes", b"{}")).decode())
            if kind == "websocket.close":
                self.close_code = int(message.get("code", 1000))
                return None
            if kind == "websocket.accept":  # pragma: no cover - already consumed
                continue

    def expect_nothing(self, timeout: float = 0.5) -> bool:
        """True when no message arrives within ``timeout`` seconds."""
        try:
            self._next_raw(timeout)
        except asyncio.TimeoutError:
            return True
        return False

    def send_text(self, text: str) -> None:
        """Deliver a client text frame to the application."""
        asyncio.run_coroutine_threadsafe(
            self._to_app.put({"type": "websocket.receive", "text": text}),
            self._client.loop,
        ).result(timeout=5)

    def close(self) -> None:
        """Disconnect the session and wait for the app handler to finish."""
        if self._task is None:
            return
        asyncio.run_coroutine_threadsafe(
            self._to_app.put({"type": "websocket.disconnect", "code": 1000}),
            self._client.loop,
        ).result(timeout=5)
        task = self._task
        self._task = None

        async def _await_task() -> None:
            try:
                await asyncio.wait_for(asyncio.shield(task), timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                task.cancel()

        asyncio.run_coroutine_threadsafe(
            _await_task(), self._client.loop
        ).result(timeout=10)
