"""The persistent runtime-telemetry store of the serving tier.

A small SQLite database in WAL mode holding what an operator wants to
survive a restart: request counters per endpoint and status, per-endpoint
latency histograms (fixed log-spaced buckets, Prometheus-compatible), and
WebSocket session statistics.  ``/metrics`` renders the same state in
Prometheus text format and ``/telemetry`` as JSON.

Writes are buffered in memory and flushed in one transaction every
:attr:`RuntimeStore.FLUSH_EVERY` observations (and on every read and on
close), so the hot request path never waits on fsync while the store stays
bounded-staleness durable.  All methods are thread-safe: the ASGI app calls
in from executor threads and the event loop alike.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Histogram bucket upper bounds in milliseconds (log-spaced; +Inf implied).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT NOT NULL,
    label TEXT NOT NULL,
    value INTEGER NOT NULL,
    PRIMARY KEY (name, label)
);
CREATE TABLE IF NOT EXISTS latency_buckets (
    endpoint TEXT NOT NULL,
    le_ms    REAL NOT NULL,
    count    INTEGER NOT NULL,
    PRIMARY KEY (endpoint, le_ms)
);
CREATE TABLE IF NOT EXISTS latency_totals (
    endpoint TEXT PRIMARY KEY,
    total_ms REAL NOT NULL,
    count    INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS ws_sessions (
    session_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    query_id          TEXT NOT NULL,
    connected_unix    REAL NOT NULL,
    disconnected_unix REAL,
    pushes            INTEGER NOT NULL DEFAULT 0
);
"""


class RuntimeStore:
    """Restart-surviving request/latency/WebSocket telemetry (SQLite WAL)."""

    #: Buffered observations are flushed after this many updates.
    FLUSH_EVERY = 256

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self._path = str(path)
        if self._path != ":memory:":
            Path(self._path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(self._path, check_same_thread=False)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.executescript(_SCHEMA)
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES ('created_unix', ?) "
            "ON CONFLICT(key) DO NOTHING",
            (repr(time.time()),),
        )
        self._connection.execute(
            "INSERT INTO counters (name, label, value) VALUES ('restarts', '', 1) "
            "ON CONFLICT(name, label) DO UPDATE SET value = value + 1"
        )
        self._connection.commit()
        # Pending (unflushed) deltas, merged into SQLite in one transaction.
        self._pending_counters: Dict[Tuple[str, str], int] = {}
        self._pending_buckets: Dict[Tuple[str, float], int] = {}
        self._pending_totals: Dict[str, Tuple[float, int]] = {}
        self._pending_ops = 0
        self._closed = False

    @property
    def path(self) -> str:
        """The database path (``:memory:`` for the ephemeral store)."""
        return self._path

    # -- writes ------------------------------------------------------------------------

    def increment(self, name: str, label: str = "", by: int = 1) -> None:
        """Add ``by`` to the counter ``name{label}``."""
        with self._lock:
            key = (name, label)
            self._pending_counters[key] = self._pending_counters.get(key, 0) + by
            self._bump_locked()

    def observe_latency(self, endpoint: str, milliseconds: float) -> None:
        """Record one request latency into the endpoint's histogram."""
        value = float(milliseconds)
        with self._lock:
            for bound in LATENCY_BUCKETS_MS:
                if value <= bound:
                    key = (endpoint, bound)
                    self._pending_buckets[key] = self._pending_buckets.get(key, 0) + 1
                    break
            else:
                key = (endpoint, float("inf"))
                self._pending_buckets[key] = self._pending_buckets.get(key, 0) + 1
            total_ms, count = self._pending_totals.get(endpoint, (0.0, 0))
            self._pending_totals[endpoint] = (total_ms + value, count + 1)
            self._bump_locked()

    def ws_session_opened(self, query_id: str) -> int:
        """Record a new WebSocket session; returns its session id."""
        with self._lock:
            self._flush_locked()
            cursor = self._connection.execute(
                "INSERT INTO ws_sessions (query_id, connected_unix) VALUES (?, ?)",
                (query_id, time.time()),
            )
            self._connection.commit()
            return int(cursor.lastrowid or 0)

    def ws_session_closed(self, session_id: int, pushes: int) -> None:
        """Close a WebSocket session record with its delivered-push count."""
        with self._lock:
            self._flush_locked()
            self._connection.execute(
                "UPDATE ws_sessions SET disconnected_unix = ?, pushes = ? "
                "WHERE session_id = ?",
                (time.time(), int(pushes), int(session_id)),
            )
            self._connection.commit()

    def flush(self) -> None:
        """Write every buffered observation to SQLite in one transaction."""
        with self._lock:
            self._flush_locked()

    # -- reads -------------------------------------------------------------------------

    def counters(self) -> Dict[str, Dict[str, int]]:
        """``{counter name: {label: value}}`` including buffered deltas."""
        with self._lock:
            self._flush_locked()
            result: Dict[str, Dict[str, int]] = {}
            for name, label, value in self._connection.execute(
                "SELECT name, label, value FROM counters ORDER BY name, label"
            ):
                result.setdefault(str(name), {})[str(label)] = int(value)
            return result

    def histograms(self) -> Dict[str, Dict[str, object]]:
        """Per-endpoint latency histograms with totals and estimated percentiles."""
        with self._lock:
            self._flush_locked()
            buckets: Dict[str, List[Tuple[float, int]]] = {}
            for endpoint, le_ms, count in self._connection.execute(
                "SELECT endpoint, le_ms, count FROM latency_buckets "
                "ORDER BY endpoint, le_ms"
            ):
                buckets.setdefault(str(endpoint), []).append((float(le_ms), int(count)))
            totals: Dict[str, Tuple[float, int]] = {}
            for endpoint, total_ms, count in self._connection.execute(
                "SELECT endpoint, total_ms, count FROM latency_totals"
            ):
                totals[str(endpoint)] = (float(total_ms), int(count))
        result: Dict[str, Dict[str, object]] = {}
        for endpoint, rows in buckets.items():
            total_ms, count = totals.get(endpoint, (0.0, 0))
            result[endpoint] = {
                "buckets": {_le_label(le): n for le, n in rows},
                "total_ms": total_ms,
                "count": count,
                "mean_ms": total_ms / count if count else 0.0,
                "p50_ms": _estimate_percentile(rows, 0.50),
                "p95_ms": _estimate_percentile(rows, 0.95),
            }
        return result

    def ws_stats(self) -> Dict[str, object]:
        """Aggregate WebSocket session statistics (all restarts included)."""
        with self._lock:
            self._flush_locked()
            row = self._connection.execute(
                "SELECT COUNT(*), COUNT(disconnected_unix), "
                "COALESCE(SUM(pushes), 0), "
                "COALESCE(AVG(disconnected_unix - connected_unix), 0.0) "
                "FROM ws_sessions"
            ).fetchone()
        total, closed, pushes, mean_duration = row
        return {
            "sessions_total": int(total),
            "sessions_closed": int(closed),
            "sessions_active": int(total) - int(closed),
            "pushes_total": int(pushes),
            "mean_session_seconds": float(mean_duration),
        }

    def snapshot(self) -> Dict[str, object]:
        """The full telemetry document served by ``/telemetry``."""
        with self._lock:
            self._flush_locked()
            meta = {
                str(key): str(value)
                for key, value in self._connection.execute(
                    "SELECT key, value FROM meta"
                )
            }
        return {
            "meta": meta,
            "counters": self.counters(),
            "latency": self.histograms(),
            "websocket": self.ws_stats(),
        }

    def render_json(self) -> str:
        """The ``/telemetry`` document as a JSON string."""
        return json.dumps(self.snapshot(), sort_keys=True)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Flush pending observations and close the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._connection.close()
            self._closed = True

    def __enter__(self) -> "RuntimeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------------

    def _bump_locked(self) -> None:
        self._pending_ops += 1
        if self._pending_ops >= self.FLUSH_EVERY:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._pending_ops == 0 or self._closed:
            return
        self._connection.executemany(
            "INSERT INTO counters (name, label, value) VALUES (?, ?, ?) "
            "ON CONFLICT(name, label) DO UPDATE SET value = value + excluded.value",
            [(name, label, value) for (name, label), value in
             self._pending_counters.items()],
        )
        self._connection.executemany(
            "INSERT INTO latency_buckets (endpoint, le_ms, count) VALUES (?, ?, ?) "
            "ON CONFLICT(endpoint, le_ms) DO UPDATE SET count = count + excluded.count",
            [(endpoint, le, count) for (endpoint, le), count in
             self._pending_buckets.items()],
        )
        self._connection.executemany(
            "INSERT INTO latency_totals (endpoint, total_ms, count) VALUES (?, ?, ?) "
            "ON CONFLICT(endpoint) DO UPDATE SET "
            "total_ms = total_ms + excluded.total_ms, count = count + excluded.count",
            [(endpoint, total_ms, count) for endpoint, (total_ms, count) in
             self._pending_totals.items()],
        )
        self._connection.commit()
        self._pending_counters.clear()
        self._pending_buckets.clear()
        self._pending_totals.clear()
        self._pending_ops = 0


def _le_label(le_ms: float) -> str:
    """The Prometheus ``le`` label of one bucket bound."""
    if le_ms == float("inf"):
        return "+Inf"
    return f"{le_ms:g}"


def _estimate_percentile(rows: List[Tuple[float, int]], fraction: float) -> float:
    """Percentile estimate from cumulative-free bucket counts.

    Linear interpolation inside the winning bucket (the Prometheus
    convention); the +Inf bucket reports its lower bound.
    """
    total = sum(count for _, count in rows)
    if total == 0:
        return 0.0
    target = fraction * total
    cumulative = 0
    previous_bound = 0.0
    for le_ms, count in rows:
        if count == 0:
            previous_bound = le_ms if le_ms != float("inf") else previous_bound
            continue
        if cumulative + count >= target:
            if le_ms == float("inf"):
                return previous_bound
            fraction_in_bucket = (target - cumulative) / count
            return previous_bound + (le_ms - previous_bound) * fraction_in_bucket
        cumulative += count
        previous_bound = le_ms
    return previous_bound
