"""repro.server — the HTTP + WebSocket serving tier over :class:`~repro.api.engine.KSIREngine`.

The serving tier turns the library into a deployable network service: a
standard **ASGI** application (:func:`create_app`) exposing standing-query
CRUD, on-demand top-k queries, batched stream ingest, engine
checkpoint/restore, Prometheus ``/metrics`` and a persistent ``/telemetry``
surface, plus a WebSocket channel (``/ws/queries/{id}``) that pushes a
result delta whenever the incremental scheduler marks a standing query
dirty — pushes ride the existing dirty-topic epochs through
:meth:`~repro.service.engine.ServiceEngine.add_update_listener`, never
polling.

The application is framework-free (pure ASGI on the stdlib), so the core
library gains **zero hard dependencies**:

* under ``uvicorn`` (or any ASGI server, installed via the ``server``
  extra) it deploys like any FastAPI-style app:
  ``uvicorn --factory your_module:build_app``;
* without it, :func:`serve` / :class:`ServerHandle` run the bundled
  asyncio HTTP/1.1 + WebSocket server (:mod:`repro.server.asgi`) — the
  same code path the tests, the CI smoke job and the
  ``bench_server_load`` load generator exercise.

Everything is exported lazily: importing :mod:`repro` or building engines
never touches the serving modules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.server.app import KSIRServer, create_app
    from repro.server.asgi import ServerHandle, serve
    from repro.server.hub import PushHub
    from repro.server.runtime_store import RuntimeStore
    from repro.server.testing import TestClient

__all__: Tuple[str, ...] = (
    "KSIRServer",
    "PushHub",
    "RuntimeStore",
    "ServerHandle",
    "TestClient",
    "create_app",
    "serve",
)

_EXPORTS = {
    "KSIRServer": ("repro.server.app", "KSIRServer"),
    "create_app": ("repro.server.app", "create_app"),
    "ServerHandle": ("repro.server.asgi", "ServerHandle"),
    "serve": ("repro.server.asgi", "serve"),
    "PushHub": ("repro.server.hub", "PushHub"),
    "RuntimeStore": ("repro.server.runtime_store", "RuntimeStore"),
    "TestClient": ("repro.server.testing", "TestClient"),
}


def __getattr__(name: str) -> object:
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
