"""Seeded random-number helpers.

Every stochastic component in the library (topic model training, synthetic
stream generation, query workload generation, simulated evaluators) accepts
either an integer seed or a ready-made :class:`numpy.random.Generator`.
Centralising the conversion here keeps experiments reproducible and makes it
trivial to derive independent child streams from a single master seed.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(master_seed: Optional[int], *labels: str) -> int:
    """Derive a deterministic child seed from ``master_seed`` and labels.

    The labels identify the consumer (e.g. ``("dataset", "twitter")``), so
    two components never share a stream even if they draw the same number of
    variates.  When ``master_seed`` is ``None`` a fixed default is used so the
    derivation stays deterministic.
    """
    base = 0 if master_seed is None else int(master_seed)
    digest = hashlib.sha256()
    digest.update(str(base).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % (2**63 - 1)


def spawn_rng(master_seed: Optional[int], *labels: str) -> np.random.Generator:
    """Convenience wrapper: derive a child seed and build a generator."""
    return make_rng(derive_seed(master_seed, *labels))
