"""A descending sorted list keyed by score, used by the per-topic ranked lists.

The ranked list of Algorithm 1 in the paper needs four operations:

* insert a ``(key, score)`` entry,
* change the score of an existing key (when an element gains a reference),
* delete an entry (when an element expires from the active window),
* traverse entries in descending score order while supporting concurrent
  inserts at positions *before* the cursor (the query algorithms only ever
  traverse a frozen snapshot, so the cursor lives in
  :class:`repro.core.ranked_list.RankedListCursor`; here we only provide the
  ordered container).

A bisect-backed parallel-array implementation is simple, cache friendly and —
for the window sizes a single machine handles — faster in practice than a
balanced tree written in pure Python.  Ties are broken by key so iteration
order is deterministic.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.kernels import get_kernel

#: The ranked-list merge-order kernel (score descending, key ascending);
#: see :mod:`repro.kernels`.  Engaged by :meth:`DescendingSortedList.bulk_insert`
#: when every key is a plain ``int`` (the element-id hot path).
_RANKED_MERGE = get_kernel("ranked_merge")


class DescendingSortedList:
    """A mapping from keys to scores, iterable in descending score order.

    Internally entries are stored ascending by ``(-score, key)`` so plain
    ``bisect`` keeps them ordered; iteration yields the highest scores first.
    """

    def __init__(self) -> None:
        # Sorted ascending by (-score, key).
        self._entries: List[Tuple[float, Hashable]] = []
        self._scores: Dict[Hashable, float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._scores

    def __iter__(self) -> Iterator[Tuple[Hashable, float]]:
        """Yield ``(key, score)`` pairs in descending score order."""
        for neg_score, key in self._entries:
            yield key, -neg_score

    def score(self, key: Hashable) -> float:
        """Return the score stored for ``key`` (KeyError when absent)."""
        return self._scores[key]

    def get(self, key: Hashable, default: Optional[float] = None) -> Optional[float]:
        """Return the score for ``key`` or ``default`` when absent."""
        return self._scores.get(key, default)

    def insert(self, key: Hashable, score: float) -> None:
        """Insert ``key`` with ``score``; replaces any previous entry."""
        if key in self._scores:
            self._remove_entry(key, self._scores[key])
        insort(self._entries, (-float(score), key))
        self._scores[key] = float(score)

    def update(self, key: Hashable, score: float) -> None:
        """Change the score of an existing key (inserting when absent)."""
        self.insert(key, score)

    def bulk_insert(self, items: Iterable[Tuple[Hashable, float]]) -> None:
        """Insert many ``(key, score)`` pairs at once (last score wins per key).

        Replaces any previous entries of the given keys.  For batches that
        are large relative to the list this stages the new entries, drops the
        superseded ones in a single filtering pass and merges two sorted runs
        — ``O(n + m log m)`` instead of ``m`` bisect-insertions at ``O(n)``
        each.  Small batches fall back to plain :meth:`insert`.
        """
        staged: Dict[Hashable, float] = {key: float(score) for key, score in items}
        if not staged:
            return
        if len(staged) < 8 or len(staged) * 4 < len(self._entries):
            for key, score in staged.items():
                self.insert(key, score)
            return
        superseded = {key for key in staged if key in self._scores}
        if superseded:
            self._entries = [
                entry for entry in self._entries if entry[1] not in superseded
            ]
        entries = self._entries
        entries.extend((-score, key) for key, score in staged.items())
        order = None
        if all(type(key) is int for _neg, key in entries):
            # Element-id hot path: the merge order comes from the
            # ``ranked_merge`` kernel (lexsort reference, compiled stable
            # sorts under Numba).  The original tuples are re-indexed by
            # the returned permutation, so key objects are preserved.
            try:
                keys = np.fromiter(
                    (key for _neg, key in entries),
                    dtype=np.int64,
                    count=len(entries),
                )
            except OverflowError:
                keys = None
            if keys is not None:
                neg_scores = np.fromiter(
                    (neg for neg, _key in entries),
                    dtype=np.float64,
                    count=len(entries),
                )
                order = _RANKED_MERGE(-neg_scores, keys)
        if order is not None:
            self._entries = [entries[index] for index in order.tolist()]
        else:
            # Timsort merges the existing sorted run and the appended batch
            # at C speed, which beats a Python-level two-way merge.
            entries.sort()
        self._scores.update(staged)

    def bulk_discard(self, keys: Iterable[Hashable]) -> List[Hashable]:
        """Remove every present key of ``keys``; returns the ones removed.

        Duplicates in ``keys`` are tolerated (removed once).
        """
        present = list(dict.fromkeys(key for key in keys if key in self._scores))
        if not present:
            return present
        if len(present) < 8 or len(present) * 16 < len(self._entries):
            for key in present:
                self.remove(key)
            return present
        drop = set(present)
        self._entries = [entry for entry in self._entries if entry[1] not in drop]
        for key in present:
            del self._scores[key]
        return present

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises ``KeyError`` when absent."""
        score = self._scores.pop(key)
        self._remove_entry_raw(key, score)

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` when present, do nothing otherwise."""
        if key in self._scores:
            self.remove(key)

    def peek(self) -> Tuple[Hashable, float]:
        """Return the ``(key, score)`` pair with the maximum score."""
        if not self._entries:
            raise IndexError("peek from an empty DescendingSortedList")
        neg_score, key = self._entries[0]
        return key, -neg_score

    def at(self, rank: int) -> Tuple[Hashable, float]:
        """Return the ``(key, score)`` pair at descending rank ``rank``."""
        neg_score, key = self._entries[rank]
        return key, -neg_score

    def keys(self) -> List[Hashable]:
        """All keys in descending score order."""
        return [key for _neg, key in self._entries]

    def items(self) -> List[Tuple[Hashable, float]]:
        """All ``(key, score)`` pairs in descending score order."""
        return [(key, -neg) for neg, key in self._entries]

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()
        self._scores.clear()

    # -- internal helpers -------------------------------------------------

    def _remove_entry(self, key: Hashable, score: float) -> None:
        del self._scores[key]
        self._remove_entry_raw(key, score)

    def _remove_entry_raw(self, key: Hashable, score: float) -> None:
        probe = (-float(score), key)
        idx = bisect_left(self._entries, probe)
        # The probe is unique because keys are unique within the list.
        if idx < len(self._entries) and self._entries[idx] == probe:
            del self._entries[idx]
            return
        raise KeyError(f"entry for key {key!r} with score {score!r} not found")

    def validate(self) -> bool:
        """Check internal invariants (used by tests); returns True if OK."""
        if len(self._entries) != len(self._scores):
            return False
        previous = None
        for neg_score, key in self._entries:
            if self._scores.get(key) != -neg_score:
                return False
            if previous is not None and (neg_score, key) < previous:
                return False
            previous = (neg_score, key)
        return True
