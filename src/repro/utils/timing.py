"""Wall-clock measurement helpers used by the experiment harness.

The paper reports average CPU time per query (Figures 7, 9, 12, 13) and per
stream update (Figure 14).  :class:`StopWatch` measures a single interval and
:class:`TimingStats` accumulates many intervals and exposes the summary
statistics the reports print.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class StopWatch:
    """A minimal context-manager stopwatch with millisecond readouts."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "StopWatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed time in seconds."""
        if self._start is None:
            raise RuntimeError("StopWatch.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def seconds(self) -> float:
        """Elapsed time of the last completed interval, in seconds."""
        return self._elapsed

    @property
    def milliseconds(self) -> float:
        """Elapsed time of the last completed interval, in milliseconds."""
        return self._elapsed * 1000.0


@dataclass
class TimingStats:
    """Accumulates a series of timing samples (stored in milliseconds)."""

    name: str = "timer"
    samples_ms: List[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        """Record one interval measured in seconds."""
        self.samples_ms.append(seconds * 1000.0)

    def add_ms(self, milliseconds: float) -> None:
        """Record one interval measured in milliseconds."""
        self.samples_ms.append(float(milliseconds))

    def extend(self, other: "TimingStats") -> None:
        """Merge the samples of ``other`` into this accumulator."""
        self.samples_ms.extend(other.samples_ms)

    def measure(self) -> "_TimingContext":
        """Return a context manager that records its duration on exit."""
        return _TimingContext(self)

    def __len__(self) -> int:
        return len(self.samples_ms)

    def __iter__(self) -> Iterator[float]:
        return iter(self.samples_ms)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples_ms)

    @property
    def total_ms(self) -> float:
        """Sum of all samples in milliseconds."""
        return float(sum(self.samples_ms))

    @property
    def mean_ms(self) -> float:
        """Average sample in milliseconds (0.0 when empty)."""
        if not self.samples_ms:
            return 0.0
        return self.total_ms / len(self.samples_ms)

    @property
    def median_ms(self) -> float:
        """Median sample in milliseconds (0.0 when empty)."""
        if not self.samples_ms:
            return 0.0
        ordered = sorted(self.samples_ms)
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def stdev_ms(self) -> float:
        """Population standard deviation in milliseconds (0.0 when < 2)."""
        if len(self.samples_ms) < 2:
            return 0.0
        mean = self.mean_ms
        variance = sum((s - mean) ** 2 for s in self.samples_ms) / len(self.samples_ms)
        return math.sqrt(variance)

    @property
    def max_ms(self) -> float:
        """Maximum sample in milliseconds (0.0 when empty)."""
        return max(self.samples_ms) if self.samples_ms else 0.0

    @property
    def min_ms(self) -> float:
        """Minimum sample in milliseconds (0.0 when empty)."""
        return min(self.samples_ms) if self.samples_ms else 0.0

    def summary(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"{self.name}: n={self.count} mean={self.mean_ms:.3f}ms "
            f"median={self.median_ms:.3f}ms max={self.max_ms:.3f}ms"
        )


class _TimingContext:
    """Context manager produced by :meth:`TimingStats.measure`."""

    def __init__(self, stats: TimingStats) -> None:
        self._stats = stats
        self._watch = StopWatch()

    def __enter__(self) -> "_TimingContext":
        self._watch.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stats.add(self._watch.stop())
