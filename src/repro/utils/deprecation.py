"""Construction guards for the pre-facade entry points.

PR 4 introduced :class:`repro.api.KSIREngine` as the single public entry
point and deprecated constructing
:class:`~repro.core.processor.KSIRProcessor` or
:class:`~repro.service.engine.ServiceEngine` directly; this PR completes
the cycle and the old constructions are now a hard :class:`TypeError`
carrying the migration target.  The library itself still builds those
objects all the time (shard workers, execution-backend adapters, the
experiment harness), so the error must only fire for *user* construction:
internal call sites wrap their constructions in
:func:`library_managed_construction`, which disarms the guard for the
dynamic extent of the ``with`` block.

A :class:`contextvars.ContextVar` carries the suppression depth, so the
guard is re-entrant and safe under the thread pools the cluster and
service layers use (each thread sees its own context).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

_SUPPRESSION_DEPTH: ContextVar[int] = ContextVar(
    "repro_library_managed_construction", default=0
)


@contextmanager
def library_managed_construction() -> Iterator[None]:
    """Disarm the deprecated-construction guard for internal call sites."""
    token = _SUPPRESSION_DEPTH.set(_SUPPRESSION_DEPTH.get() + 1)
    try:
        yield
    finally:
        _SUPPRESSION_DEPTH.reset(token)


def construction_warnings_suppressed() -> bool:
    """Whether the caller is inside :func:`library_managed_construction`."""
    return _SUPPRESSION_DEPTH.get() > 0


def warn_deprecated_construction(
    old: str, replacement: str, stacklevel: int = 3
) -> None:
    """Raise :class:`TypeError` unless the library built the object.

    ``old`` names the removed entry point, ``replacement`` the facade call
    that supersedes it.  Through PR 4's deprecation cycle this emitted a
    :class:`DeprecationWarning`; the cycle is complete and direct
    construction is now an error.  (``stacklevel`` is retained for
    signature compatibility; exceptions carry their own traceback.)
    """
    if construction_warnings_suppressed():
        return
    raise TypeError(
        f"{old} is no longer supported; use {replacement} instead. "
        "The repro.api facade owns engine construction: it wires the "
        "store, execution backend, cluster transport and serving tier "
        "consistently and is the only supported entry point since the "
        "PR 4 deprecation cycle completed."
    )
