"""Deprecation shims for the pre-facade construction surface.

PR 4 introduced :class:`repro.api.KSIREngine` as the single public entry
point; constructing :class:`~repro.core.processor.KSIRProcessor` or
:class:`~repro.service.engine.ServiceEngine` directly still works but is
deprecated.  The library itself builds those objects all the time (shard
workers, execution-backend adapters, the experiment harness), so the
warning must only fire for *user* construction: internal call sites wrap
their constructions in :func:`library_managed_construction`, which
suppresses the warning for the dynamic extent of the ``with`` block.

A :class:`contextvars.ContextVar` carries the suppression depth, so the
guard is re-entrant and safe under the thread pools the cluster and
service layers use (each thread sees its own context).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

_SUPPRESSION_DEPTH: ContextVar[int] = ContextVar(
    "repro_library_managed_construction", default=0
)


@contextmanager
def library_managed_construction() -> Iterator[None]:
    """Suppress deprecated-construction warnings for internal call sites."""
    token = _SUPPRESSION_DEPTH.set(_SUPPRESSION_DEPTH.get() + 1)
    try:
        yield
    finally:
        _SUPPRESSION_DEPTH.reset(token)


def construction_warnings_suppressed() -> bool:
    """Whether the caller is inside :func:`library_managed_construction`."""
    return _SUPPRESSION_DEPTH.get() > 0


def warn_deprecated_construction(
    old: str, replacement: str, stacklevel: int = 3
) -> None:
    """Emit a :class:`DeprecationWarning` unless the library built the object.

    ``old`` names the deprecated entry point, ``replacement`` the facade
    call that supersedes it.  ``stacklevel`` defaults to 3 so the warning
    points at the user's construction site (caller → ``__init__`` → here).
    """
    if construction_warnings_suppressed():
        return
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead "
        "(the old construction path keeps working and stays equivalent, "
        "but new code should go through the repro.api facade)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
