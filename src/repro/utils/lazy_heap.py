"""A lazy max-heap with stale-entry invalidation.

CELF-style lazy greedy and MTTD's candidate buffer both need a priority
queue keyed by an *upper bound* on the marginal gain of each element: the
stored priority may be stale (too large), and the consumer re-evaluates the
popped element before trusting it.  Python's :mod:`heapq` is a min-heap of
immutable entries, so we store negated priorities and version counters and
skip entries whose version no longer matches.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, Iterator, List, Optional, Tuple


class LazyMaxHeap:
    """Max-heap over hashable keys with updatable (lazily removed) priorities."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._priority: Dict[Hashable, float] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._priority)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._priority

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._priority)

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` or update its priority to ``priority``."""
        self._priority[key] = float(priority)
        heapq.heappush(self._heap, (-float(priority), next(self._counter), key))

    def priority(self, key: Hashable) -> float:
        """Current priority of ``key`` (KeyError when absent)."""
        return self._priority[key]

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` lazily (its heap entries become stale)."""
        del self._priority[key]

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` when present, do nothing otherwise."""
        self._priority.pop(key, None)

    def peek(self) -> Tuple[Hashable, float]:
        """Return (key, priority) of the current maximum without removing it."""
        self._drop_stale()
        if not self._heap:
            raise IndexError("peek from an empty LazyMaxHeap")
        neg_priority, _count, key = self._heap[0]
        return key, -neg_priority

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return (key, priority) of the current maximum."""
        self._drop_stale()
        if not self._heap:
            raise IndexError("pop from an empty LazyMaxHeap")
        neg_priority, _count, key = heapq.heappop(self._heap)
        del self._priority[key]
        return key, -neg_priority

    def max_priority(self) -> Optional[float]:
        """The maximum priority, or ``None`` when empty."""
        if not self._priority:
            return None
        return self.peek()[1]

    def _drop_stale(self) -> None:
        while self._heap:
            neg_priority, _count, key = self._heap[0]
            current = self._priority.get(key)
            if current is not None and current == -neg_priority:
                return
            heapq.heappop(self._heap)
