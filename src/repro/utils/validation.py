"""Argument-validation helpers shared by the public API.

The k-SIR public entry points validate user-facing parameters eagerly so that
misconfiguration surfaces as a clear ``ValueError`` at call time rather than
as a silent quality loss deep in an algorithm.
"""

from __future__ import annotations

from numbers import Real
from typing import Optional


def require_positive(value: Real, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: Real, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_probability(value: Real, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed unit interval."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def require_in_range(
    value: Real,
    name: str,
    low: Optional[Real] = None,
    high: Optional[Real] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the requested interval."""
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
