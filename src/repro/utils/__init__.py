"""Shared utilities used across the k-SIR reproduction.

The helpers in this package are deliberately small and dependency-free:

* :mod:`repro.utils.rng` — seeded random-number helpers so every experiment
  is reproducible end to end.
* :mod:`repro.utils.timing` — wall-clock accumulators used by the
  experiment harness to report per-query and per-update CPU time.
* :mod:`repro.utils.sorted_list` — the bisect-backed descending sorted list
  that backs each per-topic ranked list.
* :mod:`repro.utils.lazy_heap` — a lazy max-heap with stale-entry
  invalidation (used by CELF and MTTD's candidate buffer).
* :mod:`repro.utils.validation` — argument validation helpers shared by the
  public API.
"""

from repro.utils.lazy_heap import LazyMaxHeap
from repro.utils.rng import derive_seed, make_rng
from repro.utils.sorted_list import DescendingSortedList
from repro.utils.timing import StopWatch, TimingStats
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "DescendingSortedList",
    "LazyMaxHeap",
    "StopWatch",
    "TimingStats",
    "derive_seed",
    "make_rng",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
