"""Core k-SIR machinery: data model, objective, indices and algorithms.

This package contains the paper's primary contribution:

* :mod:`repro.core.element` / :mod:`repro.core.stream` — the social element
  and social stream data model (Section 3.1).
* :mod:`repro.core.window` — the time-based sliding window, the active set
  ``A_t`` and the per-window follower (reference) view.
* :mod:`repro.core.scoring` — semantic, influence and combined
  representativeness scoring with incremental marginal-gain state
  (Section 3.2).
* :mod:`repro.core.ranked_list` — per-topic ranked lists and their
  maintenance over the stream (Section 4.1, Algorithm 1).
* :mod:`repro.core.algorithms` — MTTS, MTTD and the baselines used in the
  paper's efficiency study (Sections 4.2–4.3).
* :mod:`repro.core.processor` — the full query-processing architecture of
  Figure 4 tying everything together.
"""

from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery, QueryResult
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import ElementProfile, KSIRObjective, ScoringConfig, ScoringContext
from repro.core.stream import SocialStream
from repro.core.window import ActiveWindow

__all__ = [
    "ActiveWindow",
    "ElementProfile",
    "KSIRObjective",
    "KSIRProcessor",
    "KSIRQuery",
    "ProcessorConfig",
    "QueryResult",
    "RankedListIndex",
    "ScoringConfig",
    "ScoringContext",
    "SocialElement",
    "SocialStream",
]
