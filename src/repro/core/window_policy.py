"""Window policies: the expiry-cutoff seam behind the StateView protocol.

Both window implementations (:class:`repro.core.window.ActiveWindow` and
:class:`repro.store.window.ColumnarWindow`) drive *all* expiry decisions
off one number — the ``window_start`` cutoff: window members posted before
it leave ``W_t`` and elements whose last activity predates it leave
``A_t`` (Algorithm 1).  That makes the cutoff computation the natural seam
for alternative window shapes:

``sliding``
    The paper's window: the cutoff trails the current time by exactly
    ``T − 1``, so ``W_t`` covers ``[t − T + 1, t]``.  This is the default
    and is bit-identical to the historical behaviour.
``tumbling``
    Fixed consecutive spans of length ``T`` aligned to the epoch: at time
    ``t`` the cutoff is the start of the span containing ``t``, so the
    window covers ``((n − 1)·T, n·T]`` and empties out each time a span
    boundary is crossed.
``session``
    Gap-based: the window covers the current *session* — the run of
    elements with no silence longer than ``session_gap`` between
    consecutive events.  A silence longer than the gap closes the session
    and expires everything; ``T`` still bounds the maximum session extent
    so state stays bounded.

A policy is described by the frozen :class:`WindowPolicy` value (which
travels inside :class:`~repro.core.processor.ProcessorConfig`) and
realised by a per-window :class:`CutoffTracker`, the only stateful part
(session windows must remember where the current session started).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: Canonical window-policy names.
WINDOW_POLICY_CHOICES: Tuple[str, ...] = ("sliding", "tumbling", "session")


class CutoffTracker:
    """Computes the expiry cutoff for one window (base = sliding).

    The window calls :meth:`observe` for every inserted element (only
    when the policy is stateful — see :attr:`WindowPolicy.stateful`) and
    :meth:`cutoff` on every :meth:`advance_to`.  The sliding tracker is
    stateless: the cutoff is ``t − T + 1`` regardless of the elements.
    """

    kind: str = "sliding"

    def __init__(self, window_length: int) -> None:
        self._window_length = int(window_length)

    @property
    def window_length(self) -> int:
        """The configured maximum window extent ``T``."""
        return self._window_length

    def observe(self, timestamp: int) -> None:
        """Note one inserted element (no-op for stateless policies)."""

    def observe_many(self, timestamps: Iterable[int]) -> None:
        """Note a bucket of inserted elements, in arrival order."""
        for timestamp in timestamps:
            self.observe(timestamp)

    def cutoff(self, current_time: int) -> int:
        """The expiry cutoff at ``current_time``.

        Elements with ``timestamp < cutoff`` are outside the window;
        actives with ``last_activity < cutoff`` leave ``A_t``.
        """
        return current_time - self._window_length + 1

    def state_dict(self) -> Dict[str, Any]:
        """Serialisable tracker state (empty for stateless policies)."""
        return {}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output (no-op when stateless)."""


class TumblingCutoff(CutoffTracker):
    """Epoch-aligned fixed windows ``((n − 1)·T, n·T]``."""

    kind = "tumbling"

    def cutoff(self, current_time: int) -> int:
        span = self._window_length
        return ((current_time - 1) // span) * span + 1


class SessionCutoff(CutoffTracker):
    """Gap-based session windows bounded by the maximum extent ``T``."""

    kind = "session"

    def __init__(self, window_length: int, session_gap: int) -> None:
        super().__init__(window_length)
        if session_gap <= 0:
            raise ValueError("session_gap must be positive")
        self._gap = int(session_gap)
        self._session_start: Optional[int] = None
        self._last_event: Optional[int] = None

    @property
    def session_gap(self) -> int:
        """The maximum silence between two events of one session."""
        return self._gap

    def observe(self, timestamp: int) -> None:
        if self._last_event is None or timestamp - self._last_event > self._gap:
            self._session_start = timestamp
        if self._last_event is None or timestamp > self._last_event:
            self._last_event = timestamp

    def cutoff(self, current_time: int) -> int:
        floor = current_time - self._window_length + 1
        if self._last_event is None:
            return floor
        if current_time - self._last_event > self._gap:
            # The session closed during silence: everything expires.
            return current_time + 1
        assert self._session_start is not None
        return max(self._session_start, floor)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "session_start": self._session_start,
            "last_event": self._last_event,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        session_start = state.get("session_start")
        last_event = state.get("last_event")
        self._session_start = None if session_start is None else int(session_start)
        self._last_event = None if last_event is None else int(last_event)


@dataclass(frozen=True)
class WindowPolicy:
    """One window shape: the policy name plus its parameters.

    ``session_gap`` is required for (and exclusive to) the ``session``
    policy, in stream time units.
    """

    kind: str = "sliding"
    session_gap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_POLICY_CHOICES:
            raise ValueError(
                f"unknown window policy {self.kind!r}; available: "
                + ", ".join(WINDOW_POLICY_CHOICES)
            )
        if self.kind == "session":
            if self.session_gap is None or self.session_gap <= 0:
                raise ValueError("session windows require a positive session_gap")
        elif self.session_gap is not None:
            raise ValueError("session_gap is only valid with the 'session' policy")

    @property
    def stateful(self) -> bool:
        """Whether the tracker needs to observe inserted elements."""
        return self.kind == "session"

    def tracker(self, window_length: int) -> CutoffTracker:
        """Build the per-window cutoff tracker realising this policy."""
        if self.kind == "tumbling":
            return TumblingCutoff(window_length)
        if self.kind == "session":
            assert self.session_gap is not None
            return SessionCutoff(window_length, self.session_gap)
        return CutoffTracker(window_length)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (inverse of :meth:`from_dict`)."""
        return {"kind": self.kind, "session_gap": self.session_gap}

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "WindowPolicy":
        """Rebuild from :meth:`to_dict` output (``None`` = sliding)."""
        if payload is None:
            return cls()
        unknown = sorted(set(payload) - {"kind", "session_gap"})
        if unknown:
            raise ValueError(f"unknown window-policy keys: {', '.join(unknown)}")
        session_gap = payload.get("session_gap")
        return cls(
            kind=str(payload.get("kind", "sliding")),
            session_gap=None if session_gap is None else int(session_gap),
        )
