"""The full k-SIR query-processing architecture (Figure 4 of the paper).

The :class:`KSIRProcessor` ties everything together:

* it consumes a social stream in buckets of length ``L``, inferring topic
  vectors for new elements when they do not carry one;
* it maintains the **active window** (``W_t``, ``A_t`` and the in-window
  follower sets), the per-element **profiles** used by the scoring functions,
  and the per-topic **ranked lists** (Algorithm 1);
* it answers ad-hoc k-SIR queries with any registered algorithm, producing
  :class:`repro.core.query.QueryResult` objects with timing and evaluation
  statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.algorithms import KSIRAlgorithm, resolve_algorithm
from repro.core.element import SocialElement
from repro.core.query import KSIRQuery, QueryResult
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import (
    ElementProfile,
    KSIRObjective,
    ProfileBuilder,
    ScoringConfig,
    ScoringContext,
)
from repro.core.stream import SocialStream, replay_stream
from repro.core.window import ActiveWindow
from repro.core.window_policy import WINDOW_POLICY_CHOICES, WindowPolicy
from repro.kernels import get_kernel
from repro.store import STORE_CHOICES, ColumnarWindow, ElementStore, StateView
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel
from repro.utils.deprecation import warn_deprecated_construction
from repro.utils.timing import StopWatch, TimingStats
from repro.utils.validation import require_positive

#: The touched-parent δ-recompute kernel (gather + segmented reduce over
#: the store's ``P[rows, z]`` matrix); see :mod:`repro.kernels`.
_DELTA_TOPIC_SUMS = get_kernel("delta_topic_sums")


@dataclass(frozen=True)
class ProcessorConfig:
    """Configuration of the stream processor.

    Parameters
    ----------
    window_length:
        The sliding-window length ``T`` in stream time units (the paper's
        default is 24 hours).
    bucket_length:
        The batch-update period ``L`` (the paper fixes 15 minutes).
    scoring:
        The representativeness scoring parameters (``λ``, ``η``, topic
        threshold).
    default_algorithm:
        Algorithm used by :meth:`KSIRProcessor.query` when none is named.
    default_epsilon:
        ``ε`` used when instantiating ε-parameterised algorithms by name.
    batched_ingest:
        When true (the default), :meth:`KSIRProcessor.process_bucket` uses
        the batched fast path: bulk profile construction, one follower
        resolution and ranked-list refresh per touched parent per bucket,
        and per-topic grouped ranked-list maintenance.  The element-by-
        element path is kept for comparison benchmarks and equivalence
        tests; both produce the same ranked-list contents.
    store:
        The state-store representation: ``"columnar"`` (the default) keeps
        the hot window state — timestamps, last activity, membership,
        follower adjacency and the topic-profile matrix — on contiguous
        NumPy arrays (:class:`repro.store.ElementStore`), enabling
        vectorised expiry scans and one-matrix-op score recomputation;
        ``"objects"`` keeps the historical dict/set representation for one
        release.  Both produce query results equal within 1e-9.
    archive_windows:
        How many window lengths of recently seen elements the archive
        retains for reference re-activation (the active-window archive
        horizon is ``archive_windows × window_length``).
    window_policy:
        The window shape driving expiry: ``"sliding"`` (the paper's
        window, the default), ``"tumbling"`` (epoch-aligned fixed spans
        of length ``window_length``) or ``"session"`` (gap-based, closed
        by silence longer than ``session_gap``).  See
        :mod:`repro.core.window_policy`.
    session_gap:
        Maximum silence between two events of one session, in stream
        time units; required by (and exclusive to) the ``session``
        policy.
    """

    window_length: int = 24 * 3600
    bucket_length: int = 15 * 60
    scoring: ScoringConfig = ScoringConfig()
    default_algorithm: str = "mttd"
    default_epsilon: float = 0.1
    batched_ingest: bool = True
    store: str = "columnar"
    archive_windows: int = 8
    window_policy: str = "sliding"
    session_gap: Optional[int] = None

    def __post_init__(self) -> None:
        require_positive(self.window_length, "window_length")
        require_positive(self.bucket_length, "bucket_length")
        if self.bucket_length > self.window_length:
            raise ValueError("bucket_length must not exceed window_length")
        if self.store not in STORE_CHOICES:
            raise ValueError(
                f"unknown store {self.store!r}; available: "
                + ", ".join(STORE_CHOICES)
            )
        require_positive(self.archive_windows, "archive_windows")
        if self.window_policy not in WINDOW_POLICY_CHOICES:
            raise ValueError(
                f"unknown window policy {self.window_policy!r}; available: "
                + ", ".join(WINDOW_POLICY_CHOICES)
            )
        # Delegate the gap/policy coupling rules to the policy constructor.
        self.build_window_policy()

    def build_window_policy(self) -> WindowPolicy:
        """The :class:`WindowPolicy` value this configuration describes."""
        return WindowPolicy(kind=self.window_policy, session_gap=self.session_gap)

    def resolve_algorithm(
        self,
        algorithm: Union[str, KSIRAlgorithm, None],
        epsilon: Optional[float] = None,
    ) -> KSIRAlgorithm:
        """Resolve an algorithm against this configuration's defaults.

        Every execution backend (processor, cluster coordinator, serving
        engine) resolves through here so the default-algorithm and
        default-ε fallbacks stay identical.
        """
        return resolve_algorithm(
            algorithm,
            default_name=self.default_algorithm,
            epsilon=self.default_epsilon if epsilon is None else epsilon,
        )


class KSIRProcessor:
    """Maintains the active window and ranked lists; answers k-SIR queries."""

    def __init__(
        self,
        topic_model: TopicModel,
        config: Optional[ProcessorConfig] = None,
        inferencer: Optional[TopicInferencer] = None,
        home_filter: Optional[Callable[[int], bool]] = None,
        store_factory: Optional[Callable[[], ElementStore]] = None,
    ) -> None:
        warn_deprecated_construction(
            "Constructing KSIRProcessor directly",
            'repro.api.KSIREngine(topic_model, EngineConfig(backend="local"))',
        )
        self._model = topic_model
        self._config = config or ProcessorConfig()
        self._inferencer = inferencer or TopicInferencer(topic_model)
        # Partition hook used by the sharded execution layer (repro.cluster):
        # elements whose id fails the filter are *foreign* — they are kept in
        # the window and profiled (so the influence scores of home elements
        # stay exact), but they never enter this processor's ranked lists and
        # therefore never surface as candidates from this partition.  The
        # filter must be stable per element id.  ``None`` means every element
        # is home (the single-node behaviour).
        self._home_filter = home_filter
        self._builder = ProfileBuilder(topic_model, self._config.scoring)
        # The window state lives behind the StateView protocol: the
        # columnar store keeps it on contiguous arrays, the objects store
        # keeps the historical dict/set representation.  Everything below
        # (ranked lists, snapshots, export) only sees the protocol.
        self._window: StateView
        window_policy = self._config.build_window_policy()
        if self._config.store == "columnar":
            # ``store_factory`` lets the execution layer supply the store —
            # the shared-memory cluster transport backs its columns with
            # coordinator-owned segments so shard state is readable
            # zero-copy from the coordinator process.
            self._store: Optional[ElementStore] = (
                store_factory()
                if store_factory is not None
                else ElementStore(topic_model.num_topics)
            )
            self._window = ColumnarWindow(
                self._config.window_length,
                archive_windows=self._config.archive_windows,
                store=self._store,
                policy=window_policy,
            )
        else:
            self._store = None
            self._window = ActiveWindow(
                self._config.window_length,
                archive_windows=self._config.archive_windows,
                policy=window_policy,
            )
        self._index = RankedListIndex(
            topic_model.num_topics, self._config.scoring, epoch_sink=self._store
        )
        self._profiles: Dict[int, ElementProfile] = {}
        self._elements_processed = 0
        self._buckets_processed = 0
        self._ingest_timer = TimingStats(name="bucket-ingest")
        # Scoring snapshot memoised per ingested bucket: (buckets_processed
        # at build time, context).  Repeated queries against an unchanged
        # window share one frozen context instead of rebuilding it per call.
        self._snapshot_cache: Optional[Tuple[int, ScoringContext]] = None

    # -- metadata -----------------------------------------------------------------

    @property
    def config(self) -> ProcessorConfig:
        """The processor configuration."""
        return self._config

    @property
    def topic_model(self) -> TopicModel:
        """The topic-model oracle in use."""
        return self._model

    @property
    def window(self) -> StateView:
        """The live active window (read-mostly; mutate via the processor)."""
        return self._window

    @property
    def store(self) -> Optional[ElementStore]:
        """The columnar state store (None on the ``objects`` store)."""
        return self._store

    @property
    def ranked_lists(self) -> RankedListIndex:
        """The per-topic ranked-list index."""
        return self._index

    @property
    def current_time(self) -> Optional[int]:
        """The time of the last processed bucket."""
        return self._window.current_time

    @property
    def active_count(self) -> int:
        """``n_t``: number of currently active elements."""
        return self._window.active_count

    @property
    def elements_processed(self) -> int:
        """Total number of stream elements ingested so far."""
        return self._elements_processed

    @property
    def buckets_processed(self) -> int:
        """Number of buckets ingested so far."""
        return self._buckets_processed

    @property
    def home_count(self) -> int:
        """Active elements owned by this processor's partition.

        Equal to :attr:`active_count` for an unpartitioned (single-node)
        processor; for a sharded processor it excludes the foreign replicas
        kept only for exact influence accounting.
        """
        return self._index.element_count

    def is_home(self, element_id: int) -> bool:
        """Whether the element belongs to this processor's partition."""
        return self._home_filter is None or self._home_filter(element_id)

    def profile(self, element_id: int) -> ElementProfile:
        """The cached profile of an active element (KeyError when absent)."""
        return self._profiles[element_id]

    def follower_profiles(self, element_id: int) -> Dict[int, ElementProfile]:
        """Profiles of the in-window followers of an active element."""
        return self._follower_profiles(element_id)

    @property
    def ingest_timer(self) -> TimingStats:
        """Per-bucket ingestion times."""
        return self._ingest_timer

    @property
    def update_timer(self) -> TimingStats:
        """Per-element ranked-list maintenance times (Figure 14)."""
        return self._index.update_timer

    # -- stream ingestion ----------------------------------------------------------------

    def process_bucket(self, elements: Sequence[SocialElement], end_time: int) -> None:
        """Ingest one bucket ``B_t`` ending at ``end_time`` (Algorithm 1).

        Elements without a topic distribution are run through topic
        inference first; then the active window, per-element profiles and
        ranked lists are updated and expired elements are evicted.
        Dispatches to the batched fast path unless the configuration opts
        into the element-by-element reference path; both paths leave the
        window and ranked lists in the same state.
        """
        if self._config.batched_ingest:
            self._process_bucket_batched(elements, end_time)
        else:
            self._process_bucket_sequential(elements, end_time)

    def _process_bucket_sequential(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """The element-by-element reference implementation of Algorithm 1."""
        with self._ingest_timer.measure():
            for element in elements:
                prepared = element
                if prepared.topic_distribution is None:
                    prepared = prepared.with_topic_distribution(
                        self._inferencer.infer(prepared.tokens)
                    )
                profile = self._builder.build(prepared)
                touched_parents = self._window.insert(prepared)
                self._register_profile(prepared.element_id, profile)
                if self.is_home(prepared.element_id):
                    self._index.insert(profile, activity_time=prepared.timestamp)
                    if self._window.follower_count(prepared.element_id):
                        # A re-post of an element that already has in-window
                        # followers: the fresh tuples must keep the influence
                        # component, not reset to the semantic-only score.
                        self._index.refresh(
                            profile,
                            self._follower_profiles(prepared.element_id),
                            activity_time=self._window.last_activity(
                                prepared.element_id
                            ),
                        )
                for parent_id in touched_parents:
                    if not self.is_home(parent_id):
                        # A foreign parent's ranked-list tuples live on its
                        # owning partition (where this follower is also
                        # routed), so there is nothing to maintain here.
                        continue
                    parent_profile = self._profiles.get(parent_id)
                    if parent_profile is None:
                        # The parent expired earlier and was re-activated by
                        # this reference: rebuild its profile from the window
                        # archive and re-insert its ranked-list tuples.
                        parent_element = self._window.get(parent_id)
                        if parent_element.topic_distribution is None:
                            parent_element = parent_element.with_topic_distribution(
                                self._inferencer.infer(parent_element.tokens)
                            )
                        parent_profile = self._builder.build(parent_element)
                        self._register_profile(parent_id, parent_profile)
                        self._index.insert(
                            parent_profile, activity_time=prepared.timestamp
                        )
                    followers = self._follower_profiles(parent_id)
                    self._index.refresh(
                        parent_profile, followers, activity_time=prepared.timestamp
                    )
                self._elements_processed += 1

            removed = self._window.advance_to(end_time)
            for element_id in removed:
                self._profiles.pop(element_id, None)
                if self.is_home(element_id):
                    self._index.remove(element_id)
            # Elements that lost followers to expiry keep ranked-list tuples,
            # but their influence components are stale: re-score them so the
            # stored δ_i(e) always equals f_i({e}) at query time.
            for element_id in self._window.take_touched_by_expiry():
                if not self.is_home(element_id):
                    continue
                profile = self._profiles.get(element_id)
                if profile is None:
                    continue
                self._index.refresh(
                    profile,
                    self._follower_profiles(element_id),
                    activity_time=self._window.last_activity(element_id),
                )
            self._buckets_processed += 1

    def _process_bucket_batched(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """The batched ingest fast path.

        Equivalent to :meth:`_process_bucket_sequential` but restructured
        around bucket-level batching:

        * profiles of all new elements are built in one
          :meth:`ProfileBuilder.build_many` call (vectorised weights);
        * each parent touched by the bucket has its follower profiles
          resolved and its tuples re-scored **once**, against the bucket's
          final follower sets, instead of once per touching follower;
        * ranked-list maintenance is applied through
          :meth:`RankedListIndex.bulk_update`, which groups score
          insertions per topic before list maintenance.

        The sequential path converges to the same final state because a
        parent's last refresh in a bucket already sees every follower the
        bucket added, and activity times combine via ``max``.
        """
        with self._ingest_timer.measure():
            prepared: list = []
            for element in elements:
                if element.topic_distribution is None:
                    element = element.with_topic_distribution(
                        self._inferencer.infer(element.tokens)
                    )
                prepared.append(element)
            profiles = self._builder.build_many(prepared)

            home_filter = self._home_filter
            profile_map = self._profiles
            store = self._store
            inserts = []
            touched: Dict[int, int] = {}
            if store is not None:
                # Columnar: one bulk row allocation for the bucket, one
                # fancy-indexed write for the bucket's profile rows.
                window = self._window
                assert isinstance(window, ColumnarWindow)
                touched_lists, rows = window.insert_many(prepared)
                store.set_profiles_bulk(
                    rows, [profile.topic_probabilities for profile in profiles]
                )
            else:
                window_insert = self._window.insert
                touched_lists = [window_insert(element) for element in prepared]
            for element, profile, touched_parents in zip(
                prepared, profiles, touched_lists
            ):
                element_id = element.element_id
                timestamp = element.timestamp
                profile_map[element_id] = profile
                if home_filter is None or home_filter(element_id):
                    inserts.append((profile, timestamp))
                    if self._window.follower_count(element_id):
                        # Re-posted element with live followers: schedule a
                        # refresh so its tuples keep the influence component
                        # (mirrors the sequential path's insert-then-refresh).
                        previous = touched.get(element_id)
                        if previous is None or previous < timestamp:
                            touched[element_id] = timestamp
                for parent_id in touched_parents:
                    if home_filter is not None and not home_filter(parent_id):
                        continue
                    previous = touched.get(parent_id)
                    if previous is None or previous < timestamp:
                        touched[parent_id] = timestamp
            self._elements_processed += len(prepared)

            # Parents re-activated from the archive by a reference need their
            # profiles rebuilt before they can be re-scored.
            missing = [pid for pid in touched if pid not in self._profiles]
            if missing:
                missing_elements = []
                for parent_id in missing:
                    parent_element = self._window.get(parent_id)
                    if parent_element.topic_distribution is None:
                        parent_element = parent_element.with_topic_distribution(
                            self._inferencer.infer(parent_element.tokens)
                        )
                    missing_elements.append(parent_element)
                for parent_id, parent_profile in zip(
                    missing, self._builder.build_many(missing_elements)
                ):
                    self._register_profile(parent_id, parent_profile)

            if self._store is not None:
                # Columnar fast path: influence sums of every touched
                # parent come out of one gather + reduceat over the
                # store's profile matrix instead of per-follower dict
                # accumulation.
                self._index.bulk_update(
                    inserts=inserts,
                    scored_refreshes=self._columnar_refresh_entries(touched),
                )
            else:
                followers_of = self._window.followers_of
                profile_get = profile_map.get
                refreshes = []
                for parent_id, time in touched.items():
                    followers = {}
                    for follower_id in followers_of(parent_id):
                        follower_profile = profile_get(follower_id)
                        if follower_profile is not None:
                            followers[follower_id] = follower_profile
                    refreshes.append((profile_map[parent_id], followers, time))
                self._index.bulk_update(inserts=inserts, refreshes=refreshes)

            removed = self._window.advance_to(end_time)
            removes = []
            for element_id in removed:
                profile_map.pop(element_id, None)
                if home_filter is None or home_filter(element_id):
                    removes.append(element_id)
            expiry_touched = {
                element_id: self._window.last_activity(element_id)
                for element_id in self._window.take_touched_by_expiry()
                if (home_filter is None or home_filter(element_id))
                and element_id in profile_map
            }
            if self._store is not None:
                if removes or expiry_touched:
                    self._index.bulk_update(
                        scored_refreshes=self._columnar_refresh_entries(expiry_touched),
                        removes=removes,
                    )
            else:
                profile_get = profile_map.get
                expiry_refreshes = []
                for element_id, activity in expiry_touched.items():
                    expiry_refreshes.append(
                        (
                            profile_map[element_id],
                            self._follower_profiles(element_id),
                            activity,
                        )
                    )
                if removes or expiry_refreshes:
                    self._index.bulk_update(
                        refreshes=expiry_refreshes, removes=removes
                    )
            self._buckets_processed += 1

    def process_stream(
        self,
        stream: Union[SocialStream, Iterable[SocialElement]],
        until: Optional[int] = None,
    ) -> None:
        """Replay a whole stream (or until time ``until``) through the processor."""
        replay_stream(stream, self._config.bucket_length, self.process_bucket, until)

    def _follower_profiles(self, element_id: int) -> Dict[int, ElementProfile]:
        """Profiles of the in-window followers of an active element."""
        followers: Dict[int, ElementProfile] = {}
        for follower_id in self._window.followers_of(element_id):
            profile = self._profiles.get(follower_id)
            if profile is not None:
                followers[follower_id] = profile
        return followers

    def _register_profile(self, element_id: int, profile: ElementProfile) -> None:
        """Cache a profile and mirror its probabilities into the store."""
        self._profiles[element_id] = profile
        store = self._store
        if store is not None:
            row = store.get_row(element_id)
            if row is not None:
                store.set_profile(row, profile.topic_probabilities)

    def _columnar_refresh_entries(
        self, touched: Mapping[int, int]
    ) -> list:
        """Batched ``δ_i`` recomputation over the store's profile matrix.

        For every touched parent, the per-topic follower-probability sums
        ``Σ_{e ∈ I_t(parent)} p_i(e)`` come out of the ``delta_topic_sums``
        kernel — one gather + segmented reduce over the store's
        ``P[rows, z]`` matrix, compiled when Numba is active; the sparse
        per-topic score maps are then assembled in the same topic order
        the object path uses, so scores agree within float re-association
        noise (≤ 1e-9 on realistic windows).  Returns
        ``(element_id, topic → δ_i(e), activity_time)`` triples for
        :meth:`RankedListIndex.bulk_update`'s ``scored_refreshes``.
        """
        if not touched:
            return []
        store = self._store
        assert store is not None
        parent_ids = list(touched)
        rows = store.rows_of(parent_ids)
        indices, counts = store.followers_concat(rows)
        sums = _DELTA_TOPIC_SUMS(store.profile_matrix, indices, counts)
        scoring = self._config.scoring
        lambda_weight = scoring.lambda_weight
        influence_weight = scoring.influence_weight
        entries = []
        for position, parent_id in enumerate(parent_ids):
            profile = self._profiles[parent_id]
            row_sums = sums[position]
            probabilities = profile.topic_probabilities
            scores = {
                topic: lambda_weight * semantic
                + influence_weight * (probabilities[topic] * float(row_sums[topic]))
                for topic, semantic in profile.semantic_scores.items()
            }
            entries.append((parent_id, scores, touched[parent_id]))
        return entries

    # -- query processing ----------------------------------------------------------------------

    def snapshot(self) -> ScoringContext:
        """A frozen scoring snapshot of the current active window.

        The snapshot is memoised on :attr:`buckets_processed`: as long as no
        further bucket is ingested, every query shares the same frozen
        context (a :class:`ScoringContext` is immutable by contract, so
        sharing is safe).  Ingesting a bucket invalidates the cache.
        """
        cached = self._snapshot_cache
        if cached is not None and cached[0] == self._buckets_processed:
            return cached[1]
        context = self._build_snapshot()
        self._snapshot_cache = (self._buckets_processed, context)
        return context

    def _build_snapshot(self) -> ScoringContext:
        """Materialise a fresh scoring snapshot (bypasses the cache).

        The follower view comes from the window's bulk snapshot (one CSR
        slice on the columnar store) instead of one call per element.
        """
        followers = self._window.followers_snapshot()
        profiles = {
            element_id: self._profiles[element_id]
            for element_id in self._window.active_ids()
            if element_id in self._profiles
        }
        return ScoringContext(
            profiles=profiles,
            followers=followers,
            config=self._config.scoring,
            time=self._window.current_time,
        )

    def objective(self, query_vector: np.ndarray) -> KSIRObjective:
        """A k-SIR objective bound to the current window and ``query_vector``."""
        return KSIRObjective(self.snapshot(), query_vector)

    def query(
        self,
        query: Union[KSIRQuery, np.ndarray, Sequence[float]],
        k: Optional[int] = None,
        algorithm: Union[str, KSIRAlgorithm, None] = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer a k-SIR query against the current window.

        ``query`` may be a :class:`KSIRQuery` or a raw query vector (in which
        case ``k`` must be given).  ``algorithm`` is an algorithm instance or
        a registry name ("mttd", "mtts", "celf", "sieve", "topk", "greedy").
        """
        ksir_query = KSIRQuery.coerce(query, k)
        solver = self._config.resolve_algorithm(algorithm, epsilon)
        objective = self.objective(ksir_query.vector)

        watch = StopWatch()
        watch.start()
        outcome = solver.select(
            objective,
            ksir_query.k,
            index=self._index if solver.requires_index else None,
        )
        elapsed = watch.stop()

        return QueryResult(
            element_ids=outcome.element_ids,
            score=outcome.value,
            algorithm=solver.name,
            elapsed_ms=elapsed * 1000.0,
            evaluated_elements=outcome.evaluated_elements,
            active_elements=objective.context.active_count,
            extras=dict(outcome.extras),
        )

    def result_elements(self, result: QueryResult) -> Sequence[SocialElement]:
        """Materialise the :class:`SocialElement` objects of a query result."""
        return tuple(self._window.get(element_id) for element_id in result.element_ids)

    # -- checkpoint state --------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot sufficient to resume ingest mid-stream.

        Captures the active window (elements included — they carry their
        inferred topic distributions) and the ranked lists verbatim, plus
        the stream counters.  Element profiles are *not* serialised: they
        are a pure function of the archived elements, the topic model and
        the scoring configuration, so :meth:`restore_state` rebuilds them
        bit-exactly through the profile builder.  Timing statistics are
        ephemeral measurement state and start fresh after a restore.
        """
        return {
            "elements_processed": self._elements_processed,
            "buckets_processed": self._buckets_processed,
            "window": self._window.state_dict(),
            "ranked_lists": self._index.state_dict(arrays=self._store is not None),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this processor.

        The processor must have been constructed with an equivalent
        configuration and topic model (the checkpoint layer persists both
        alongside the state).  Home filters are intentionally *not* part of
        the state: a sharded restore re-installs them at construction.
        """
        self._elements_processed = int(state["elements_processed"])
        self._buckets_processed = int(state["buckets_processed"])
        self._window.restore_state(state["window"])
        self._index.restore_state(state["ranked_lists"])
        self._snapshot_cache = None
        active = [self._window.get(eid) for eid in sorted(self._window.active_ids())]
        self._profiles = {}
        for element, profile in zip(active, self._builder.build_many(active)):
            self._register_profile(element.element_id, profile)
