"""The social stream: a timestamp-ordered sequence of social elements.

Section 3.1: a social stream is a sequence of elements ordered by timestamp
(ties arrive in arbitrary order).  The stream processor consumes the stream
in *buckets* of equal time length ``L`` (Section 4), so this module also
provides the bucketing iterator.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.element import SocialElement


def replay_stream(
    stream: Union["SocialStream", Iterable[SocialElement]],
    bucket_length: int,
    process_bucket: Callable[[Sequence[SocialElement], int], object],
    until: Optional[int] = None,
) -> None:
    """Drive ``process_bucket`` over a whole stream (or until time ``until``).

    Shared by every execution backend (single-node processor, cluster
    coordinator, serving engine) so the bucket-iteration semantics — empty
    buckets included, ``until`` compared against bucket end times — cannot
    drift between them.
    """
    if not isinstance(stream, SocialStream):
        stream = SocialStream(stream)
    if len(stream) == 0:
        return
    for bucket in stream.buckets(bucket_length):
        if until is not None and bucket.end_time > until:
            break
        process_bucket(bucket.elements, bucket.end_time)


class SocialStream:
    """An in-memory social stream with bucketed replay.

    Elements are stored sorted by ``(timestamp, element_id)``.  The class
    is append-friendly and the tolerance for out-of-order appends is a
    contract, not a best effort:

    * an append whose ``(timestamp, element_id)`` key is >= the current
      maximum is O(1);
    * an out-of-order append is re-inserted at its sorted position (O(n)
      for the key scan), so the resulting stream is *identical* to one
      built from the same elements in timestamp order;
    * timestamp **ties** order by ``element_id`` — deterministically,
      regardless of arrival order — so two streams holding the same
      elements always iterate identically;
    * duplicate element ids are rejected with :class:`ValueError` at
      append time, never silently replaced.

    This is what lets synthetic generators and the event-time ingestion
    layer (:mod:`repro.streams`) treat ``SocialStream`` as the canonical
    in-order view of any element set.  Arrival-order feeds live in
    :class:`repro.streams.StreamSource`, not here.
    """

    def __init__(self, elements: Optional[Iterable[SocialElement]] = None) -> None:
        self._elements: List[SocialElement] = []
        self._by_id: Dict[int, SocialElement] = {}
        if elements is not None:
            self.extend(elements)

    # -- construction ---------------------------------------------------------

    def append(self, element: SocialElement) -> None:
        """Add one element, keeping the stream ordered by timestamp."""
        if element.element_id in self._by_id:
            raise ValueError(f"duplicate element id {element.element_id!r}")
        self._by_id[element.element_id] = element
        if not self._elements or self._sort_key(element) >= self._sort_key(self._elements[-1]):
            self._elements.append(element)
            return
        keys = [self._sort_key(existing) for existing in self._elements]
        position = bisect_right(keys, self._sort_key(element))
        self._elements.insert(position, element)

    def extend(self, elements: Iterable[SocialElement]) -> None:
        """Append many elements."""
        for element in elements:
            self.append(element)

    @staticmethod
    def _sort_key(element: SocialElement) -> tuple:
        return (element.timestamp, element.element_id)

    # -- views ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[SocialElement]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> SocialElement:
        return self._elements[index]

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._by_id

    def get(self, element_id: int) -> SocialElement:
        """Return the element with the given id (KeyError when absent)."""
        return self._by_id[element_id]

    @property
    def elements(self) -> Sequence[SocialElement]:
        """The ordered elements (read-only view)."""
        return tuple(self._elements)

    @property
    def start_time(self) -> int:
        """Timestamp of the earliest element (ValueError when empty)."""
        if not self._elements:
            raise ValueError("the stream is empty")
        return self._elements[0].timestamp

    @property
    def end_time(self) -> int:
        """Timestamp of the latest element (ValueError when empty)."""
        if not self._elements:
            raise ValueError("the stream is empty")
        return self._elements[-1].timestamp

    def elements_between(self, start: int, end: int) -> List[SocialElement]:
        """Elements with ``start <= ts <= end`` (inclusive on both sides)."""
        timestamps = [element.timestamp for element in self._elements]
        lo = bisect_left(timestamps, start)
        hi = bisect_right(timestamps, end)
        return self._elements[lo:hi]

    # -- bucketed replay ---------------------------------------------------------

    def buckets(
        self, bucket_length: int, start_time: Optional[int] = None
    ) -> Iterator["StreamBucket"]:
        """Yield the stream as consecutive buckets of length ``bucket_length``.

        Buckets cover ``(t - L, t]`` for ``t = start + L, start + 2L, ...``
        following the paper's discrete update times; empty buckets are still
        yielded so that window expiry happens even during silent periods.

        ``start_time`` anchors the grid explicitly (default: the first
        element's timestamp).  The first bucket ends at
        ``start_time + L - 1`` and absorbs **every** element at or before
        that end — including elements stamped before ``start_time``; an
        anchor past the last element therefore folds the whole stream
        into one bucket.  An empty stream yields no buckets regardless of
        the anchor.
        """
        if bucket_length <= 0:
            raise ValueError("bucket_length must be positive")
        if not self._elements:
            return
        first = self.start_time if start_time is None else start_time
        last = self.end_time
        bucket_end = first + bucket_length - 1
        index = 0
        total = len(self._elements)
        while True:
            members: List[SocialElement] = []
            while index < total and self._elements[index].timestamp <= bucket_end:
                members.append(self._elements[index])
                index += 1
            yield StreamBucket(end_time=bucket_end, elements=tuple(members))
            if bucket_end >= last and index >= total:
                break
            bucket_end += bucket_length


class StreamBucket:
    """One bucket ``B_t``: the elements with timestamps in ``(t − L, t]``."""

    __slots__ = ("end_time", "elements")

    def __init__(self, end_time: int, elements: Sequence[SocialElement]) -> None:
        self.end_time = int(end_time)
        self.elements = tuple(elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[SocialElement]:
        return iter(self.elements)

    def __repr__(self) -> str:
        return f"StreamBucket(end_time={self.end_time}, size={len(self.elements)})"
