"""Per-topic ranked lists and their maintenance over the stream (Algorithm 1).

For every topic ``θ_i`` the index keeps a list of tuples ``⟨δ_i(e), t_e⟩`` for
the active elements with ``p_i(e) > 0``, sorted in descending order of the
topic-wise representativeness score ``δ_i(e) = f_i({e})``.  The stream
processor drives three kinds of updates:

* **insert** — a new element arrives; its tuples are inserted into the lists
  of its topics with ``δ_i(e) = λ·R_i(e)`` (no followers observed yet).
* **refresh** — an active element gains a follower; its influence component
  changed, so its tuples are re-scored and repositioned.
* **expire** — an element left the active set; its tuples are removed.

Query algorithms traverse the lists in descending score order through
:class:`RankedListTraversal`, which merges the per-topic cursors (weighted by
the query vector) and implements the paper's rule that once an element has
been retrieved from one list its tuples in the other lists are skipped.

The index additionally records which topics had tuples inserted, re-scored
or removed since the last drain (:meth:`RankedListIndex.take_dirty_topics`).
The serving layer's incremental scheduler uses this dirty-topic set to
re-evaluate only the standing queries whose topic support actually changed.
The set is bounded by the number of topics, so consumers that never drain it
(ad-hoc query users) pay at most ``O(z)`` memory.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.scoring import ElementProfile, ScoringConfig
from repro.store.codec import decode_id_list
from repro.store.view import TopicEpochSink
from repro.utils.sorted_list import DescendingSortedList
from repro.utils.timing import StopWatch, TimingStats


class RankedListIndex:
    """The collection of per-topic ranked lists ``RL_1, ..., RL_z``."""

    def __init__(
        self,
        num_topics: int,
        config: ScoringConfig,
        epoch_sink: Optional[TopicEpochSink] = None,
    ) -> None:
        if num_topics <= 0:
            raise ValueError("num_topics must be positive")
        self._num_topics = int(num_topics)
        self._config = config
        self._lists: List[DescendingSortedList] = [
            DescendingSortedList() for _ in range(self._num_topics)
        ]
        # element id -> last-activity timestamp t_e (shared across its lists).
        self._last_activity: Dict[int, int] = {}
        # Topics whose lists changed since the last drain (bounded by z).
        self._dirty_topics: Set[int] = set()
        # Optional columnar-store epoch stamping: every dirty marking is
        # mirrored as a topic-epoch stamp, which the serving layer's
        # incremental scheduler reads instead of draining the set.
        self._epoch_sink = epoch_sink
        self._update_timer = TimingStats(name="ranked-list-update")

    def _mark_dirty(self, topics: Iterable[int]) -> None:
        """Mark topics dirty and mirror the change onto the epoch sink."""
        topic_list = list(topics)
        if not topic_list:
            return
        self._dirty_topics.update(topic_list)
        if self._epoch_sink is not None:
            self._epoch_sink.mark_topics_dirty(topic_list)

    # -- metadata ----------------------------------------------------------------

    @property
    def num_topics(self) -> int:
        """Number of ranked lists (= number of topics ``z``)."""
        return self._num_topics

    @property
    def config(self) -> ScoringConfig:
        """The scoring configuration used to compute ``δ_i(e)``."""
        return self._config

    @property
    def update_timer(self) -> TimingStats:
        """Accumulated per-element maintenance times (Figure 14)."""
        return self._update_timer

    @property
    def element_count(self) -> int:
        """Number of distinct elements with tuples (or an activity record)."""
        return len(self._last_activity)

    def list_size(self, topic: int) -> int:
        """Number of tuples currently on topic ``topic``'s list."""
        return len(self._lists[topic])

    def total_tuples(self) -> int:
        """Total number of tuples across every list."""
        return sum(len(lst) for lst in self._lists)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._last_activity

    def score(self, topic: int, element_id: int) -> float:
        """``δ_i(e)`` as currently stored (KeyError when absent)."""
        return self._lists[topic].score(element_id)

    def scores_of(self, element_id: int) -> Dict[int, float]:
        """All stored topic-wise scores of an element."""
        scores: Dict[int, float] = {}
        for topic, ranked in enumerate(self._lists):
            value = ranked.get(element_id)
            if value is not None:
                scores[topic] = value
        return scores

    def last_activity(self, element_id: int) -> int:
        """``t_e``: the element's last post/reference time (KeyError when absent)."""
        return self._last_activity[element_id]

    def items(self, topic: int) -> List[Tuple[int, float]]:
        """The ``(element_id, δ_i(e))`` tuples of one list, best first."""
        return self._lists[topic].items()

    # -- dirty-topic tracking ---------------------------------------------------------

    @property
    def dirty_topic_count(self) -> int:
        """Number of topics with un-drained changes."""
        return len(self._dirty_topics)

    def peek_dirty_topics(self) -> Tuple[int, ...]:
        """The currently dirty topics, without draining them."""
        return tuple(sorted(self._dirty_topics))

    def take_dirty_topics(self) -> Tuple[int, ...]:
        """Drain and return the dirty-topic set.

        The result holds every topic whose list had tuples inserted,
        re-scored or removed since the previous drain.  Consumers (the
        serving layer's incremental scheduler) call this once per ingested
        bucket.
        """
        dirty = tuple(sorted(self._dirty_topics))
        self._dirty_topics.clear()
        return dirty

    # -- scoring helper -------------------------------------------------------------

    def _singleton_topic_score(
        self,
        profile: ElementProfile,
        topic: int,
        follower_probabilities: Sequence[float],
    ) -> float:
        probability = profile.topic_probability(topic)
        semantic = profile.semantic_score(topic)
        influence = probability * float(sum(follower_probabilities))
        return (
            self._config.lambda_weight * semantic
            + self._config.influence_weight * influence
        )

    def _rescore(
        self,
        profile: ElementProfile,
        followers: Mapping[int, ElementProfile],
    ) -> Dict[int, float]:
        """Compute ``δ_i(e)`` for every topic of the element."""
        scores: Dict[int, float] = {}
        for topic in profile.topics:
            follower_probabilities = [
                follower.topic_probability(topic) for follower in followers.values()
            ]
            scores[topic] = self._singleton_topic_score(
                profile, topic, follower_probabilities
            )
        return scores

    # -- maintenance ---------------------------------------------------------------------

    def insert(self, profile: ElementProfile, activity_time: Optional[int] = None) -> None:
        """Insert a new element's tuples (no followers observed yet)."""
        with self._update_timer.measure():
            time = profile.timestamp if activity_time is None else activity_time
            self._last_activity[profile.element_id] = time
            for topic in profile.topics:
                score = self._config.lambda_weight * profile.semantic_score(topic)
                self._lists[topic].insert(profile.element_id, score)
            self._mark_dirty(profile.topics)

    def refresh(
        self,
        profile: ElementProfile,
        followers: Mapping[int, ElementProfile],
        activity_time: int,
    ) -> None:
        """Re-score an element after its in-window follower set changed."""
        with self._update_timer.measure():
            self._last_activity[profile.element_id] = max(
                self._last_activity.get(profile.element_id, profile.timestamp),
                activity_time,
            )
            scores = self._rescore(profile, followers)
            for topic, score in scores.items():
                self._lists[topic].update(profile.element_id, score)
            self._mark_dirty(scores)

    def remove(self, element_id: int) -> None:
        """Remove every tuple of an expired element."""
        with self._update_timer.measure():
            self._last_activity.pop(element_id, None)
            touched = []
            for topic, ranked in enumerate(self._lists):
                if ranked.get(element_id) is not None:
                    ranked.discard(element_id)
                    touched.append(topic)
            self._mark_dirty(touched)

    def bulk_update(
        self,
        inserts: Sequence[Tuple[ElementProfile, int]] = (),
        refreshes: Sequence[Tuple[ElementProfile, Mapping[int, ElementProfile], int]] = (),
        removes: Sequence[int] = (),
        scored_refreshes: Sequence[Tuple[int, Mapping[int, float], int]] = (),
    ) -> None:
        """Apply a bucket's worth of maintenance in one grouped pass.

        ``inserts`` are ``(profile, activity_time)`` pairs of newly arrived
        elements (scored with no followers, like :meth:`insert`);
        ``refreshes`` are ``(profile, follower_profiles, activity_time)``
        triples re-scored like :meth:`refresh`; ``removes`` are expired
        element ids.  Removals are applied first, then the insert/refresh
        scores are grouped **per topic** and loaded into each ranked list
        with one :meth:`DescendingSortedList.bulk_insert` merge instead of
        one bisect-insertion per tuple.  When the same element appears as
        both an insert and a refresh, the refresh score wins (matching the
        sequential insert-then-refresh outcome).  Activity times combine via
        ``max`` with any stored value, which is what the sequential
        discipline converges to over a bucket.

        ``scored_refreshes`` are ``(element_id, topic → δ_i(e),
        activity_time)`` triples whose scores were already computed by the
        caller — the columnar fast path derives them in one matrix
        operation over the store's profile rows — and are staged exactly
        like ``refreshes`` (they supersede earlier stores per element).

        The update timer keeps its per-element meaning (Figure 14): the
        bucket-level span is split evenly across the applied operations, so
        one sample is recorded per insert/refresh/remove, exactly as many
        as the sequential path would record.
        """
        watch = StopWatch()
        watch.start()

        if removes:
            removal_topics = []
            for element_id in removes:
                self._last_activity.pop(element_id, None)
            for topic, ranked in enumerate(self._lists):
                if ranked.bulk_discard(removes):
                    removal_topics.append(topic)
            self._mark_dirty(removal_topics)

        lambda_weight = self._config.lambda_weight
        influence_weight = self._config.influence_weight
        last_activity = self._last_activity
        # topic -> {element_id: score}; later stores supersede earlier
        # ones per element, matching the sequential apply order.
        per_topic: Dict[int, Dict[int, float]] = defaultdict(dict)
        for profile, activity_time in inserts:
            element_id = profile.element_id
            time = profile.timestamp if activity_time is None else activity_time
            previous = last_activity.get(element_id)
            last_activity[element_id] = time if previous is None else max(previous, time)
            for topic, semantic in profile.semantic_scores.items():
                per_topic[topic][element_id] = lambda_weight * semantic
        for profile, followers, activity_time in refreshes:
            element_id = profile.element_id
            time = profile.timestamp if activity_time is None else activity_time
            previous = last_activity.get(element_id)
            last_activity[element_id] = time if previous is None else max(previous, time)
            probabilities = profile.topic_probabilities
            # Follower-major accumulation of Σ p_i(follower): followers
            # are sparse over topics, so walking each follower's topic
            # map once beats one pass over all followers per topic.
            # Adding an exact 0.0 is the identity, so skipping absent
            # topics reproduces _rescore's sums bit-for-bit.
            sums = dict.fromkeys(probabilities, 0.0)
            for follower in followers.values():
                for topic, probability in follower.topic_probabilities.items():
                    if topic in sums:
                        sums[topic] += probability
            for topic, semantic in profile.semantic_scores.items():
                per_topic[topic][element_id] = lambda_weight * semantic + (
                    influence_weight * (probabilities[topic] * sums[topic])
                )
        for element_id, scores, activity_time in scored_refreshes:
            time = activity_time
            previous = last_activity.get(element_id)
            last_activity[element_id] = time if previous is None else max(previous, time)
            for topic, score in scores.items():
                per_topic[topic][element_id] = score

        for topic, entries in per_topic.items():
            self._lists[topic].bulk_insert(entries.items())
        self._mark_dirty(per_topic)

        elapsed = watch.stop()
        operations = len(inserts) + len(refreshes) + len(removes) + len(scored_refreshes)
        if operations:
            per_operation_ms = (elapsed * 1000.0) / operations
            self._update_timer.samples_ms.extend([per_operation_ms] * operations)

    def insert_scores(
        self,
        element_id: int,
        scores: Mapping[int, float],
        activity_time: int,
    ) -> None:
        """Load pre-computed ``⟨topic → δ_i(e)⟩`` tuples verbatim.

        This is the raw loader used by the sharded execution layer
        (:mod:`repro.cluster`) when it assembles a merged candidate index
        from per-shard exports: the stored scores were already maintained by
        the owning shard, so re-deriving them from profiles would only risk
        drift.  Replaces any previous tuples of the element.
        """
        with self._update_timer.measure():
            self._last_activity[element_id] = int(activity_time)
            for topic, score in scores.items():
                self._lists[topic].insert(element_id, float(score))
            self._mark_dirty(scores)

    def clear(self) -> None:
        """Drop every tuple (used when rebuilding the index)."""
        touched = []
        for topic, ranked in enumerate(self._lists):
            if len(ranked) > 0:
                touched.append(topic)
            ranked.clear()
        self._mark_dirty(touched)
        self._last_activity.clear()

    # -- checkpoint state -------------------------------------------------------------

    def state_dict(self, arrays: bool = False) -> Dict[str, object]:
        """A serialisable snapshot of every stored tuple.

        Scores are persisted verbatim (one entry per element: its activity
        time plus its ``topic → δ_i(e)`` map) rather than re-derived from
        profiles at restore time, so a restored index is bit-identical to
        the saved one.  The dirty-topic set is saved too, because it is the
        serving layer's incremental-scheduling state.

        With ``arrays=True`` (the columnar store path) the entries are
        emitted as one CSR slice — id/activity vectors plus flat
        topic/score arrays — which the v2 checkpoint stores in its
        ``.npz`` member instead of JSON.  :meth:`restore_state` accepts
        both shapes.
        """
        ordered = sorted(self._last_activity)
        if arrays:
            indptr = np.zeros(len(ordered) + 1, dtype=np.int64)
            flat_topics: List[int] = []
            flat_scores: List[float] = []
            for position, element_id in enumerate(ordered):
                scores = sorted(self.scores_of(element_id).items())
                flat_topics.extend(topic for topic, _ in scores)
                flat_scores.extend(score for _, score in scores)
                indptr[position + 1] = indptr[position] + len(scores)
            return {
                "num_topics": self._num_topics,
                "entries": {
                    "ids": np.asarray(ordered, dtype=np.int64),
                    "activity": np.asarray(
                        [self._last_activity[eid] for eid in ordered], dtype=np.int64
                    ),
                    "indptr": indptr,
                    "topics": np.asarray(flat_topics, dtype=np.int64),
                    "scores": np.asarray(flat_scores, dtype=np.float64),
                },
                "dirty_topics": sorted(self._dirty_topics),
            }
        entries = []
        for element_id in ordered:
            scores = self.scores_of(element_id)
            entries.append(
                [
                    element_id,
                    self._last_activity[element_id],
                    sorted(scores.items()),
                ]
            )
        return {
            "num_topics": self._num_topics,
            "entries": entries,
            "dirty_topics": sorted(self._dirty_topics),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Replace the index contents with a :meth:`state_dict` snapshot.

        Accepts both the JSON-list entry form and the CSR array form, so
        either index configuration loads either checkpoint vintage.
        """
        if int(state["num_topics"]) != self._num_topics:
            raise ValueError(
                f"checkpoint has {state['num_topics']} topics, the index is "
                f"configured for {self._num_topics}"
            )
        self.clear()
        entries = state["entries"]
        if isinstance(entries, Mapping):
            ids = np.asarray(entries["ids"], dtype=np.int64).tolist()
            activity = np.asarray(entries["activity"], dtype=np.int64).tolist()
            indptr = np.asarray(entries["indptr"], dtype=np.int64)
            topics = np.asarray(entries["topics"], dtype=np.int64).tolist()
            scores = np.asarray(entries["scores"], dtype=np.float64).tolist()
            for position, element_id in enumerate(ids):
                start, stop = int(indptr[position]), int(indptr[position + 1])
                self.insert_scores(
                    int(element_id),
                    {
                        int(topics[offset]): float(scores[offset])
                        for offset in range(start, stop)
                    },
                    activity_time=int(activity[position]),
                )
        else:
            for element_id, activity_time, score_pairs in entries:
                self.insert_scores(
                    int(element_id),
                    {int(topic): float(score) for topic, score in score_pairs},
                    activity_time=int(activity_time),
                )
        # insert_scores marked everything dirty; restore the saved set so
        # the serving layer's scheduler resumes exactly where it left off.
        # (The epoch sink keeps its over-approximate stamps: epochs only
        # ever err towards re-evaluating more standing queries.)
        saved_dirty = decode_id_list(state["dirty_topics"])
        self._dirty_topics = set(saved_dirty)
        if self._epoch_sink is not None:
            self._epoch_sink.mark_topics_dirty(saved_dirty)

    # -- traversal ----------------------------------------------------------------------------

    def traversal(self, query_vector: np.ndarray) -> "RankedListTraversal":
        """A fresh descending traversal for the given query vector."""
        return RankedListTraversal(self, query_vector)

    def top_candidates(
        self, query_vector: np.ndarray, budget: Optional[int] = None
    ) -> List[int]:
        """Element ids in descending ``x_i · δ_i`` retrieval order.

        Walks the merged per-topic traversal (the same first/next discipline
        the query algorithms use) and returns up to ``budget`` distinct
        element ids; ``None`` drains every list with positive query weight.
        This is the candidate-export primitive of the scatter-gather layer:
        each shard bounds its pool here, and the coordinator runs the final
        submodular selection over the merged union.
        """
        if budget is not None and budget <= 0:
            raise ValueError("budget must be positive (or None for no bound)")
        traversal = self.traversal(query_vector)
        candidates: List[int] = []
        while budget is None or len(candidates) < budget:
            item = traversal.pop()
            if item is None:
                break
            candidates.append(item[0])
        return candidates

    def validate(self) -> bool:
        """Check the sorted-list invariants of every list (used by tests)."""
        return all(ranked.validate() for ranked in self._lists)


class RankedListTraversal:
    """Merged descending traversal of the ranked lists for one query.

    Exposes the two operations of Section 4.1 — ``first``/``next`` per list —
    through a combined interface:

    * :meth:`upper_bound` — ``UB(x) = Σ_i x_i · δ_i(e^(i))`` where ``e^(i)``
      is the current unvisited front of list ``i`` (0 contribution for
      exhausted lists);
    * :meth:`pop` — retrieve the element maximising ``x_i · δ_i(e^(i))``,
      mark it visited in every list, advance that list's cursor and return
      ``(element_id, δ(e, x))`` where ``δ(e, x)`` is assembled from the
      stored topic-wise scores.
    """

    def __init__(self, index: RankedListIndex, query_vector: np.ndarray) -> None:
        vector = np.asarray(query_vector, dtype=float)
        if vector.shape != (index.num_topics,):
            raise ValueError(
                f"query vector has shape {vector.shape}, expected ({index.num_topics},)"
            )
        self._index = index
        self._vector = vector
        self._topics: List[int] = [
            topic for topic, weight in enumerate(vector) if weight > 0.0
        ]
        self._cursors: Dict[int, int] = {topic: 0 for topic in self._topics}
        self._visited: Set[int] = set()
        self._retrieved = 0

    @property
    def retrieved_count(self) -> int:
        """Number of elements retrieved (popped) so far."""
        return self._retrieved

    @property
    def visited(self) -> Set[int]:
        """The ids retrieved so far (shared-visited rule of Section 4.1)."""
        return set(self._visited)

    # -- cursor helpers ---------------------------------------------------------------

    def _front(self, topic: int) -> Optional[Tuple[int, float]]:
        """The current unvisited ``(element_id, δ_i)`` of one list."""
        ranked = self._index._lists[topic]
        cursor = self._cursors[topic]
        size = len(ranked)
        while cursor < size:
            element_id, score = ranked.at(cursor)
            if element_id not in self._visited:
                self._cursors[topic] = cursor
                return element_id, score
            cursor += 1
        self._cursors[topic] = cursor
        return None

    def upper_bound(self) -> float:
        """``UB(x)``: an upper bound on ``δ(e, x)`` of any unretrieved element."""
        total = 0.0
        for topic in self._topics:
            front = self._front(topic)
            if front is not None:
                total += float(self._vector[topic]) * front[1]
        return total

    def exhausted(self) -> bool:
        """Whether every list has been fully traversed."""
        return all(self._front(topic) is None for topic in self._topics)

    def pop(self) -> Optional[Tuple[int, float]]:
        """Retrieve the next element in descending ``x_i · δ_i`` order.

        Returns ``(element_id, δ(e, x))`` or ``None`` when every list is
        exhausted.
        """
        best_topic: Optional[int] = None
        best_value = -1.0
        best_element: Optional[int] = None
        for topic in self._topics:
            front = self._front(topic)
            if front is None:
                continue
            value = float(self._vector[topic]) * front[1]
            if value > best_value:
                best_value = value
                best_topic = topic
                best_element = front[0]
        if best_topic is None or best_element is None:
            return None

        self._visited.add(best_element)
        self._cursors[best_topic] += 1
        self._retrieved += 1
        return best_element, self.stored_score(best_element)

    def stored_score(self, element_id: int) -> float:
        """``δ(e, x)`` assembled from the stored topic-wise scores."""
        total = 0.0
        for topic in self._topics:
            score = self._index._lists[topic].get(element_id)
            if score is not None:
                total += float(self._vector[topic]) * score
        return total

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        while True:
            item = self.pop()
            if item is None:
                return
            yield item
