"""The time-based sliding window and the active element set ``A_t``.

Section 3.1: given window length ``T``, the window ``W_t`` holds elements with
``ts ∈ [t − T + 1, t]`` and the *active set* ``A_t`` additionally keeps every
element referred to by some window element.  The influence score only counts
references observed inside the window, so the window also maintains, for each
active element, the set of its *followers in the window*
(``I_t(e') = {e ∈ W_t : e' ∈ e.ref}``).

Eviction follows Algorithm 1: an element stays active as long as its last
activity (its own post time, or the latest time it was referenced) is within
the window.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.element import SocialElement
from repro.core.window_policy import WindowPolicy
from repro.store.codec import decode_followers, decode_id_list, decode_pairs


class ActiveWindow:
    """Maintains ``W_t``, ``A_t`` and the in-window follower sets.

    The window is advanced by inserting buckets of elements with
    :meth:`insert` and then calling :meth:`advance_to` with the new time,
    which expires stale window members and inactive referenced elements.
    The expiry cutoff is computed by the configured
    :class:`~repro.core.window_policy.WindowPolicy` (sliding by default;
    tumbling and session windows share every other code path).
    """

    def __init__(
        self,
        window_length: int,
        archive_windows: int = 8,
        policy: Optional[WindowPolicy] = None,
    ) -> None:
        if window_length <= 0:
            raise ValueError("window_length must be positive")
        if archive_windows < 1:
            raise ValueError("archive_windows must be at least 1")
        self._policy = policy if policy is not None else WindowPolicy()
        self._tracker = self._policy.tracker(int(window_length))
        self._window_length = int(window_length)
        self._archive_horizon = int(archive_windows) * self._window_length
        self._current_time: Optional[int] = None
        # Every active element (window members and referenced precedents).
        self._elements: Dict[int, SocialElement] = {}
        # Last time the element was posted or referenced (t_e in Algorithm 1).
        self._last_activity: Dict[int, int] = {}
        # Followers *inside the window* for each active element.
        self._followers: Dict[int, Set[int]] = {}
        # Window membership, needed to retire follower edges on expiry.
        self._window_members: Dict[int, SocialElement] = {}
        # Recently seen elements kept so a reference can re-activate an
        # already-expired precedent (A_t is defined over W_t's references,
        # regardless of when the referenced element was posted).  The archive
        # plays the role of the platform's backing store and is bounded to
        # the last ``archive_windows`` windows of stream time.
        self._archive: Dict[int, SocialElement] = {}
        # Still-active elements whose in-window follower set shrank during the
        # latest advance; their influence scores are stale until re-scored.
        self._touched_by_expiry: Set[int] = set()

    # -- configuration ----------------------------------------------------------

    @property
    def window_length(self) -> int:
        """The window length ``T``."""
        return self._window_length

    @property
    def current_time(self) -> Optional[int]:
        """The time of the last :meth:`advance_to` call (None before any)."""
        return self._current_time

    @property
    def policy(self) -> WindowPolicy:
        """The window policy governing the expiry cutoff."""
        return self._policy

    @property
    def window_start(self) -> Optional[int]:
        """The earliest in-window timestamp (``t − T + 1`` when sliding)."""
        if self._current_time is None:
            return None
        return self._tracker.cutoff(self._current_time)

    # -- updates -----------------------------------------------------------------

    def insert(self, element: SocialElement) -> Tuple[int, ...]:
        """Insert a newly arrived element into the window.

        Returns the ids of the referenced elements that are active after the
        insertion (their influence scores changed, so their ranked-list
        tuples need to be refreshed — the caller forwards them to the
        ranked-list index).  A referenced element that had already expired is
        re-activated from the archive, because ``A_t`` contains every element
        referred to by a window member regardless of its own age.
        """
        element_id = element.element_id
        if self._policy.stateful:
            self._tracker.observe(element.timestamp)
        # A re-posted window member replaces its previous version: edges the
        # old version created and the new one no longer claims must retire
        # now (I_t(e') is defined over current references), otherwise they
        # would dangle past the element's expiry.  The affected parents are
        # re-scored through the touched-by-expiry channel.
        previous = self._window_members.get(element_id)
        if previous is not None:
            for parent_id in previous.references:
                followers = self._followers.get(parent_id)
                if followers is not None and element_id in followers:
                    followers.discard(element_id)
                    self._touched_by_expiry.add(parent_id)
        self._elements[element_id] = element
        self._window_members[element_id] = element
        self._archive[element_id] = element
        self._last_activity[element_id] = max(
            element.timestamp, self._last_activity.get(element_id, element.timestamp)
        )
        self._followers.setdefault(element_id, set())

        touched: List[int] = []
        for parent_id in element.references:
            parent = self._elements.get(parent_id)
            if parent is None:
                parent = self._archive.get(parent_id)
                if parent is None:
                    # The parent was never observed (posted before the replay
                    # started or already dropped from the archive); dangling
                    # references are ignored, as a deployment would.
                    continue
                # Re-activate the expired precedent.
                self._elements[parent_id] = parent
                self._followers.setdefault(parent_id, set())
            self._followers.setdefault(parent_id, set()).add(element_id)
            self._last_activity[parent_id] = max(
                self._last_activity.get(parent_id, parent.timestamp), element.timestamp
            )
            touched.append(parent_id)
        return tuple(touched)

    def insert_bucket(self, elements: Iterable[SocialElement]) -> Dict[int, Tuple[int, ...]]:
        """Insert a bucket; returns ``{element_id: touched_parent_ids}``."""
        return {element.element_id: self.insert(element) for element in elements}

    def advance_to(self, time: int) -> Tuple[int, ...]:
        """Advance the window to time ``time`` and expire stale elements.

        Returns the ids of elements removed from the active set (the caller
        removes their ranked-list tuples).
        """
        if self._current_time is not None and time < self._current_time:
            raise ValueError(
                f"cannot move the window backwards (from {self._current_time} to {time})"
            )
        self._current_time = int(time)
        window_start = self.window_start
        assert window_start is not None

        # 1. Window members posted before the window start leave W_t; their
        #    follower edges disappear with them and the affected parents are
        #    remembered so the caller can refresh their ranked-list scores.
        expired_members = [
            element_id
            for element_id, element in self._window_members.items()
            if element.timestamp < window_start
        ]
        for element_id in expired_members:
            element = self._window_members.pop(element_id)
            for parent_id in element.references:
                followers = self._followers.get(parent_id)
                if followers is not None and element_id in followers:
                    followers.discard(element_id)
                    self._touched_by_expiry.add(parent_id)

        # 2. Elements whose last activity predates the window start are no
        #    longer active at all.
        removed = [
            element_id
            for element_id, last_activity in self._last_activity.items()
            if last_activity < window_start
        ]
        for element_id in removed:
            self._elements.pop(element_id, None)
            self._last_activity.pop(element_id, None)
            self._followers.pop(element_id, None)
            self._window_members.pop(element_id, None)
            self._touched_by_expiry.discard(element_id)

        # 3. Trim the archive so memory stays bounded by the archive horizon.
        archive_cutoff = self._current_time - self._archive_horizon
        if archive_cutoff > 0:
            stale = [
                element_id
                for element_id, element in self._archive.items()
                if element.timestamp < archive_cutoff and element_id not in self._elements
            ]
            for element_id in stale:
                del self._archive[element_id]
        return tuple(removed)

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._elements

    def __iter__(self) -> Iterator[SocialElement]:
        return iter(self._elements.values())

    def get(self, element_id: int) -> SocialElement:
        """Return the active element with the given id (KeyError when absent)."""
        return self._elements[element_id]

    def active_ids(self) -> Tuple[int, ...]:
        """Ids of every active element (``A_t``)."""
        return tuple(self._elements.keys())

    def active_elements(self) -> Tuple[SocialElement, ...]:
        """Every active element (``A_t``)."""
        return tuple(self._elements.values())

    def window_ids(self) -> Tuple[int, ...]:
        """Ids of the elements inside the sliding window (``W_t``)."""
        return tuple(self._window_members.keys())

    def in_window(self, element_id: int) -> bool:
        """Whether the element is currently a member of ``W_t``."""
        return element_id in self._window_members

    def take_touched_by_expiry(self) -> Tuple[int, ...]:
        """Active elements whose follower set shrank since the last call.

        Their stored topic-wise scores are stale (they still include expired
        followers); the stream processor re-scores them after every window
        advance so the ranked lists always equal ``f_i({e})`` at query time
        (this is what makes Figure 5's tuple values exact).  The set is
        cleared by the call.
        """
        touched = tuple(eid for eid in self._touched_by_expiry if eid in self._elements)
        self._touched_by_expiry.clear()
        return touched

    def followers_of(self, element_id: int) -> Tuple[int, ...]:
        """``I_t(e)``: ids of in-window elements referencing ``element_id``."""
        return tuple(self._followers.get(element_id, ()))

    def followers_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """``I_t(e)`` for every active element, in one bulk pass."""
        followers = self._followers
        return {
            element_id: tuple(followers.get(element_id, ()))
            for element_id in self._elements
        }

    def follower_count(self, element_id: int) -> int:
        """``|I_t(e)|`` without materialising the tuple."""
        return len(self._followers.get(element_id, ()))

    def last_activity(self, element_id: int) -> int:
        """Last post/reference time of the element (KeyError when inactive)."""
        return self._last_activity[element_id]

    @property
    def active_count(self) -> int:
        """``n_t = |A_t|``."""
        return len(self._elements)

    @property
    def window_count(self) -> int:
        """``|W_t|``."""
        return len(self._window_members)

    # -- checkpoint state --------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot of the full window state.

        The archive is the superset of every live element (actives are
        always archived first), so elements are serialised once, from the
        archive, and the active/window/member structure is stored as id
        lists.  Integer-keyed maps are stored as pair lists because JSON
        object keys are strings.  :meth:`restore_state` is the inverse.
        """
        state: Dict[str, object] = {
            "window_length": self._window_length,
            "archive_horizon": self._archive_horizon,
            "current_time": self._current_time,
            "archive": [element.to_dict() for element in self._archive.values()],
            "active_ids": sorted(self._elements),
            "window_member_ids": sorted(self._window_members),
            "last_activity": sorted(self._last_activity.items()),
            "followers": [
                [element_id, sorted(follower_ids)]
                for element_id, follower_ids in sorted(self._followers.items())
            ],
            "touched_by_expiry": sorted(self._touched_by_expiry),
        }
        # Non-sliding policies carry their identity and tracker state; the
        # sliding default writes neither so its checkpoints stay identical
        # to every earlier release.
        if self._policy.kind != "sliding":
            state["window_policy"] = self._policy.to_dict()
            state["window_tracker"] = self._tracker.state_dict()
        return state

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Replace the window contents with a :meth:`state_dict` snapshot.

        The receiving window must have been constructed with the same
        ``window_length`` (the expiry semantics depend on it); a mismatch
        raises ``ValueError`` instead of silently changing behaviour.
        Accepts both snapshot shapes — the JSON-list form this class
        writes and the array/CSR form the columnar window writes — so
        either state representation restores either checkpoint vintage.
        The loaded archive is pruned to *this* window's configured
        horizon, so a checkpoint written with a longer horizon does not
        carry stale history into a tighter configuration.
        """
        if int(state["window_length"]) != self._window_length:
            raise ValueError(
                f"checkpoint window_length {state['window_length']} does not match "
                f"the configured window_length {self._window_length}"
            )
        persisted_policy = WindowPolicy.from_dict(state.get("window_policy"))
        if persisted_policy.kind != self._policy.kind:
            raise ValueError(
                f"checkpoint window policy {persisted_policy.kind!r} does not "
                f"match the configured policy {self._policy.kind!r}"
            )
        tracker_state = state.get("window_tracker")
        if tracker_state is not None:
            self._tracker.restore_state(tracker_state)
        archive = {
            int(payload["element_id"]): SocialElement.from_dict(payload)
            for payload in state["archive"]
        }
        current_time = state["current_time"]
        self._current_time = None if current_time is None else int(current_time)
        self._elements = {
            eid: archive[eid] for eid in decode_id_list(state["active_ids"])
        }
        self._window_members = {
            eid: archive[eid] for eid in decode_id_list(state["window_member_ids"])
        }
        self._last_activity = dict(decode_pairs(state["last_activity"]))
        self._followers = decode_followers(state["followers"])
        self._touched_by_expiry = set(decode_id_list(state["touched_by_expiry"]))
        if self._current_time is not None:
            cutoff = self._current_time - self._archive_horizon
            if cutoff > 0:
                archive = {
                    element_id: element
                    for element_id, element in archive.items()
                    if element.timestamp >= cutoff or element_id in self._elements
                }
        self._archive = archive

    def validate(self) -> bool:
        """Check internal invariants (used by property-based tests)."""
        window_start = self.window_start
        for element_id, element in self._window_members.items():
            if element_id not in self._elements:
                return False
            if window_start is not None and element.timestamp < window_start:
                return False
        for element_id, followers in self._followers.items():
            if element_id not in self._elements:
                return False
            for follower_id in followers:
                follower = self._window_members.get(follower_id)
                if follower is None or element_id not in follower.references:
                    return False
        for element_id in self._elements:
            if element_id not in self._last_activity:
                return False
        return True
