"""The social element data model.

Section 3.1 of the paper: a social element is a triple ``⟨ts, doc, ref⟩`` —
the posting timestamp, the textual content as a bag of words, and the set of
elements it refers to (retweets, citations, comment parents...).  The
reference relation ``e' ∈ e.ref`` means *e' influences e* (``e' ⇝ e``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SocialElement:
    """An immutable social element ``⟨ts, doc, ref⟩``.

    Parameters
    ----------
    element_id:
        A unique identifier within its stream.  Integer ids keep the indices
        compact, but any hashable value works.
    timestamp:
        The posting time ``e.ts``.  Timestamps are integers in stream time
        units (the paper uses seconds; the synthetic generator uses seconds
        as well).
    tokens:
        ``e.doc`` after preprocessing: the bag of words as an ordered tuple
        (duplicates preserved — word frequency ``γ(w, e)`` matters for the
        semantic weights).
    references:
        ``e.ref``: ids of the elements this element refers to.  Empty for
        original content.
    topic_distribution:
        Optional topic vector ``(p_1(e), ..., p_z(e))``.  When absent, the
        stream processor infers it with the configured topic model at
        ingestion time.
    text:
        Optional raw text, retained for display in examples and reports.
    author:
        Optional author identifier (unused by the objective, handy for
        datasets and baselines such as Sumblr's author PageRank variant).
    """

    element_id: int
    timestamp: int
    tokens: Tuple[str, ...]
    references: Tuple[int, ...] = ()
    topic_distribution: Optional[np.ndarray] = None
    text: Optional[str] = None
    author: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tokens", tuple(self.tokens))
        object.__setattr__(self, "references", tuple(self.references))
        if self.topic_distribution is not None:
            vector = np.asarray(self.topic_distribution, dtype=float)
            object.__setattr__(self, "topic_distribution", vector)

    # -- derived views -------------------------------------------------------

    @property
    def distinct_words(self) -> Tuple[str, ...]:
        """``V_e``: the distinct words of the document, in first-seen order."""
        seen: Dict[str, None] = {}
        for token in self.tokens:
            seen.setdefault(token, None)
        return tuple(seen)

    @property
    def word_frequencies(self) -> Dict[str, int]:
        """``γ(w, e)`` for every distinct word ``w`` of the document."""
        frequencies: Dict[str, int] = {}
        for token in self.tokens:
            frequencies[token] = frequencies.get(token, 0) + 1
        return frequencies

    @property
    def is_original(self) -> bool:
        """Whether the element refers to nothing (``e.ref = ∅``)."""
        return not self.references

    def with_topic_distribution(self, distribution: np.ndarray) -> "SocialElement":
        """Return a copy carrying the given topic distribution."""
        return SocialElement(
            element_id=self.element_id,
            timestamp=self.timestamp,
            tokens=self.tokens,
            references=self.references,
            topic_distribution=np.asarray(distribution, dtype=float),
            text=self.text,
            author=self.author,
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dictionary (used by the dataset loaders)."""
        payload: Dict[str, object] = {
            "element_id": self.element_id,
            "timestamp": self.timestamp,
            "tokens": list(self.tokens),
            "references": list(self.references),
        }
        if self.topic_distribution is not None:
            payload["topic_distribution"] = [float(v) for v in self.topic_distribution]
        if self.text is not None:
            payload["text"] = self.text
        if self.author is not None:
            payload["author"] = self.author
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SocialElement":
        """Inverse of :meth:`to_dict`."""
        distribution = payload.get("topic_distribution")
        return cls(
            element_id=int(payload["element_id"]),
            timestamp=int(payload["timestamp"]),
            tokens=tuple(payload.get("tokens", ())),
            references=tuple(int(r) for r in payload.get("references", ())),
            topic_distribution=(
                np.asarray(distribution, dtype=float) if distribution is not None else None
            ),
            text=payload.get("text"),
            author=payload.get("author"),
        )
