"""MTTD — Multi-Topic ThresholdDescend (Algorithm 3 of the paper).

MTTD improves on MTTS in two ways: it maintains a *single* candidate ``S``
(so fewer marginal-gain evaluations per element), and it keeps the elements
retrieved from the ranked lists in a buffer so they can be re-considered in
later rounds, which is what lifts the guarantee to ``(1 − 1/e − ε)``.

The algorithm runs rounds with geometrically decreasing thresholds
``τ, (1−ε)τ, (1−ε)²τ, ...`` starting from the upper bound of any active
element's score.  In the round with threshold ``τ`` it first *retrieves*
every element whose score could reach ``τ`` from the ranked lists (the same
merged descending traversal as MTTS) into the buffer, then repeatedly takes
the buffered element with the largest cached gain, recomputes its true
marginal gain and admits it when the gain is at least ``τ``.  The run stops
when ``S`` reaches ``k`` elements or ``τ`` drops below the termination
threshold ``τ' = ε · f(S, x) / k``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.ranked_list import RankedListIndex, RankedListTraversal
from repro.core.scoring import KSIRObjective
from repro.utils.lazy_heap import LazyMaxHeap
from repro.utils.validation import require_in_range


class MTTD(KSIRAlgorithm):
    """Multi-Topic ThresholdDescend.

    Parameters
    ----------
    epsilon:
        The threshold decay rate ``ε ∈ (0, 1)``; smaller values tighten the
        ``(1 − 1/e − ε)`` guarantee but add more descend rounds.
    """

    name = "mttd"
    requires_index = True

    def __init__(self, epsilon: float = 0.1) -> None:
        require_in_range(epsilon, "epsilon", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
        self.epsilon = float(epsilon)

    def __repr__(self) -> str:
        return f"MTTD(epsilon={self.epsilon})"

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _retrieve(
        traversal: RankedListTraversal,
        objective: KSIRObjective,
        buffer: LazyMaxHeap,
        tau: float,
    ) -> int:
        """Pull every element whose score may reach ``tau`` into the buffer.

        Returns the number of elements retrieved.  Buffer priorities are the
        cached gain upper bounds ``Δ_e`` (initially the singleton score).
        """
        count = 0
        while traversal.upper_bound() >= tau:
            item = traversal.pop()
            if item is None:
                break
            element_id, _stored_score = item
            score = objective.singleton_score(element_id)
            count += 1
            if score > 0.0:
                # Zero-score elements can never clear a positive threshold;
                # keeping them out of the buffer guarantees termination.
                buffer.push(element_id, score)
        return count

    # -- main loop ---------------------------------------------------------------------

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        assert index is not None  # guaranteed by KSIRAlgorithm.select
        traversal = index.traversal(objective.query_vector)
        buffer = LazyMaxHeap()
        state = objective.new_state()

        tau = traversal.upper_bound()
        termination = 0.0
        rounds = 0
        retrieved = 0

        while tau >= termination and tau > 0.0:
            rounds += 1
            retrieved += self._retrieve(traversal, objective, buffer, tau)

            # Evaluation phase: keep admitting buffered elements while some
            # cached gain still reaches the round threshold.
            while len(buffer) > 0:
                element_id, cached_gain = buffer.peek()
                if cached_gain < tau:
                    break
                buffer.pop()
                gain = objective.marginal_gain(element_id, state)
                if gain >= tau:
                    objective.add(element_id, state)
                    if len(state.selected) >= k:
                        return self._outcome(objective, state, rounds, retrieved, buffer)
                elif gain > 0.0:
                    # Keep it around with the refreshed (smaller) bound; it may
                    # clear a later, lower threshold.  Zero gains are dropped —
                    # they can never clear a positive threshold.
                    buffer.push(element_id, gain)

            termination = state.value * self.epsilon / k
            tau *= 1.0 - self.epsilon
            if traversal.exhausted() and len(buffer) == 0:
                break

        return self._outcome(objective, state, rounds, retrieved, buffer)

    def _outcome(
        self,
        objective: KSIRObjective,
        state,
        rounds: int,
        retrieved: int,
        buffer: LazyMaxHeap,
    ) -> SelectionOutcome:
        return SelectionOutcome(
            element_ids=tuple(state.selected),
            value=state.value,
            evaluated_elements=objective.evaluated_elements,
            extras={
                "rounds": float(rounds),
                "retrieved": float(retrieved),
                "buffered": float(len(buffer)),
            },
        )
