"""CELF: lazy greedy submodular maximisation (Leskovec et al., KDD 2007).

The paper uses CELF as the main batch baseline: it returns the same
``(1 − 1/e)``-approximate result as plain greedy but exploits submodularity
to skip most re-evaluations.  Each element keeps an upper bound on its
marginal gain (initially its singleton score); at every step the element with
the largest bound is popped, its true marginal gain w.r.t. the current
selection is recomputed, and it is either selected (if it is still the best)
or pushed back with the refreshed bound.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective
from repro.utils.lazy_heap import LazyMaxHeap


class CELF(KSIRAlgorithm):
    """Lazy greedy (CELF) selection."""

    name = "celf"
    requires_index = False

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        state = objective.new_state()
        heap = LazyMaxHeap()
        for element_id in objective.context.active_ids:
            heap.push(element_id, objective.singleton_score(element_id))

        reevaluations = 0
        while len(state.selected) < k and len(heap) > 0:
            element_id, cached_gain = heap.pop()
            if cached_gain <= 0.0:
                # Monotone objective: nothing left can improve the score.
                break
            if not state.selected:
                # Singleton scores are exact marginal gains for the empty set.
                objective.add(element_id, state)
                continue
            gain = objective.marginal_gain(element_id, state)
            reevaluations += 1
            current_best = heap.max_priority()
            if current_best is None or gain >= current_best:
                objective.add(element_id, state)
            else:
                heap.push(element_id, gain)
        return SelectionOutcome(
            element_ids=tuple(state.selected),
            value=state.value,
            evaluated_elements=objective.evaluated_elements,
            extras={"lazy_reevaluations": float(reevaluations)},
        )
