"""k-SIR processing algorithms.

* :class:`repro.core.algorithms.mtts.MTTS` and
  :class:`repro.core.algorithms.mttd.MTTD` — the paper's contributions
  (Algorithms 2 and 3), both driven by the per-topic ranked lists.
* :class:`repro.core.algorithms.celf.CELF`,
  :class:`repro.core.algorithms.sieve.SieveStreaming`,
  :class:`repro.core.algorithms.greedy.GreedySelection` and
  :class:`repro.core.algorithms.topk_representative.TopKRepresentative` —
  the baselines of the efficiency study (Section 5.3).

All algorithms implement the :class:`repro.core.algorithms.base.KSIRAlgorithm`
interface: given a bound objective (a scoring snapshot + query vector), a
result size ``k`` and, for index-based algorithms, the ranked-list index,
they return a :class:`repro.core.algorithms.base.SelectionOutcome`.
"""

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.algorithms.celf import CELF
from repro.core.algorithms.greedy import GreedySelection
from repro.core.algorithms.mttd import MTTD
from repro.core.algorithms.mtts import MTTS
from repro.core.algorithms.sieve import SieveStreaming
from repro.core.algorithms.topk_representative import TopKRepresentative

ALGORITHM_REGISTRY = {
    "greedy": GreedySelection,
    "celf": CELF,
    "sieve": SieveStreaming,
    "sievestreaming": SieveStreaming,
    "topk": TopKRepresentative,
    "top-k": TopKRepresentative,
    "mtts": MTTS,
    "mttd": MTTD,
}
"""Maps user-facing algorithm names to their classes."""


def make_algorithm(name: str, **kwargs) -> KSIRAlgorithm:
    """Instantiate an algorithm by (case-insensitive) name.

    ``kwargs`` are forwarded to the constructor; unknown names raise a
    ``ValueError`` listing the available choices.
    """
    key = name.strip().lower()
    try:
        cls = ALGORITHM_REGISTRY[key]
    except KeyError as error:
        available = ", ".join(sorted(set(ALGORITHM_REGISTRY)))
        raise ValueError(f"unknown algorithm {name!r}; available: {available}") from error
    return cls(**kwargs)


__all__ = [
    "ALGORITHM_REGISTRY",
    "CELF",
    "GreedySelection",
    "KSIRAlgorithm",
    "MTTD",
    "MTTS",
    "SelectionOutcome",
    "SieveStreaming",
    "TopKRepresentative",
    "make_algorithm",
]
