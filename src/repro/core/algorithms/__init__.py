"""k-SIR processing algorithms.

* :class:`repro.core.algorithms.mtts.MTTS` and
  :class:`repro.core.algorithms.mttd.MTTD` — the paper's contributions
  (Algorithms 2 and 3), both driven by the per-topic ranked lists.
* :class:`repro.core.algorithms.celf.CELF`,
  :class:`repro.core.algorithms.sieve.SieveStreaming`,
  :class:`repro.core.algorithms.greedy.GreedySelection` and
  :class:`repro.core.algorithms.topk_representative.TopKRepresentative` —
  the baselines of the efficiency study (Section 5.3).

All algorithms implement the :class:`repro.core.algorithms.base.KSIRAlgorithm`
interface: given a bound objective (a scoring snapshot + query vector), a
result size ``k`` and, for index-based algorithms, the ranked-list index,
they return a :class:`repro.core.algorithms.base.SelectionOutcome`.
"""

import inspect
from functools import lru_cache
from typing import Optional, Union

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.algorithms.celf import CELF
from repro.core.algorithms.greedy import GreedySelection
from repro.core.algorithms.mttd import MTTD
from repro.core.algorithms.mtts import MTTS
from repro.core.algorithms.sieve import SieveStreaming
from repro.core.algorithms.topk_representative import TopKRepresentative

ALGORITHM_REGISTRY = {
    "greedy": GreedySelection,
    "celf": CELF,
    "sieve": SieveStreaming,
    "sievestreaming": SieveStreaming,
    "topk": TopKRepresentative,
    "top-k": TopKRepresentative,
    "mtts": MTTS,
    "mttd": MTTD,
}
"""Maps user-facing algorithm names to their classes."""


def make_algorithm(name: str, **kwargs) -> KSIRAlgorithm:
    """Instantiate an algorithm by (case-insensitive) name.

    ``kwargs`` are forwarded to the constructor; unknown names raise a
    ``ValueError`` listing the available choices.
    """
    key = name.strip().lower()
    try:
        cls = ALGORITHM_REGISTRY[key]
    except KeyError as error:
        available = ", ".join(sorted(set(ALGORITHM_REGISTRY)))
        raise ValueError(f"unknown algorithm {name!r}; available: {available}") from error
    return cls(**kwargs)


def resolve_algorithm(
    algorithm: Union[str, KSIRAlgorithm, None],
    default_name: str = "mttd",
    epsilon: Optional[float] = None,
) -> KSIRAlgorithm:
    """Resolve an instance, a registry name or ``None`` into an algorithm.

    Instances pass through unchanged; names (``None`` means
    ``default_name``) are instantiated with ``epsilon`` forwarded only when
    the class actually accepts it, so ε-free baselines (greedy, CELF, top-k)
    resolve without special-casing at every call site.
    """
    if isinstance(algorithm, KSIRAlgorithm):
        return algorithm
    name = algorithm or default_name
    key = name.strip().lower()
    cls = ALGORITHM_REGISTRY.get(key)
    if cls is None:
        # Delegate to make_algorithm for the canonical unknown-name error.
        return make_algorithm(name)
    if epsilon is not None and _accepts_epsilon(cls):
        return cls(epsilon=epsilon)
    return cls()


@lru_cache(maxsize=None)
def _accepts_epsilon(cls: type) -> bool:
    return "epsilon" in inspect.signature(cls.__init__).parameters


__all__ = [
    "ALGORITHM_REGISTRY",
    "CELF",
    "GreedySelection",
    "KSIRAlgorithm",
    "MTTD",
    "MTTS",
    "SelectionOutcome",
    "SieveStreaming",
    "TopKRepresentative",
    "make_algorithm",
    "resolve_algorithm",
]
