"""MTTS — Multi-Topic ThresholdStream (Algorithm 2 of the paper).

MTTS combines two ideas:

1. the *thresholding* approach to streaming submodular maximisation: a
   geometric grid of guesses ``ϕ = (1+ε)^j`` for ``OPT`` is maintained, each
   with an independent candidate ``S_ϕ`` that admits an element whenever its
   marginal gain reaches ``ϕ / 2k``;
2. *ranked-list pruning*: elements are fed to the candidates in decreasing
   order of ``x_i · δ_i(e)`` by merging the per-topic ranked lists, and the
   procedure stops as soon as the upper bound ``UB(x)`` on any unevaluated
   element's score drops below the smallest admission threshold ``TH`` of an
   unfilled candidate.

The returned candidate with the maximum score is a ``(1/2 − ε)``-approximate
answer, and every active element is evaluated at most once.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective, ObjectiveState
from repro.utils.validation import require_in_range


class MTTS(KSIRAlgorithm):
    """Multi-Topic ThresholdStream.

    Parameters
    ----------
    epsilon:
        The grid resolution ``ε ∈ (0, 1)``; smaller values give a better
        approximation (``1/2 − ε``) at the cost of more candidates
        (``O(log k / ε)`` of them).
    """

    name = "mtts"
    requires_index = True

    def __init__(self, epsilon: float = 0.1) -> None:
        require_in_range(epsilon, "epsilon", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
        self.epsilon = float(epsilon)

    def __repr__(self) -> str:
        return f"MTTS(epsilon={self.epsilon})"

    # -- threshold grid ----------------------------------------------------------

    def _grid_range(self, delta_max: float, k: int) -> range:
        """Exponents ``j`` with ``δ_max ≤ (1+ε)^j ≤ 2·k·δ_max``."""
        if delta_max <= 0.0:
            return range(0)
        base = 1.0 + self.epsilon
        low = math.ceil(math.log(delta_max, base) - 1e-12)
        high = math.floor(math.log(2.0 * k * delta_max, base) + 1e-12)
        return range(low, high + 1)

    # -- main loop -----------------------------------------------------------------

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        assert index is not None  # guaranteed by KSIRAlgorithm.select
        traversal = index.traversal(objective.query_vector)
        base = 1.0 + self.epsilon

        candidates: Dict[int, ObjectiveState] = {}
        delta_max = 0.0
        threshold = 0.0  # TH: minimum admission threshold of an unfilled candidate
        retrieved = 0

        while traversal.upper_bound() >= threshold:
            item = traversal.pop()
            if item is None:
                break
            element_id, _stored_score = item
            retrieved += 1
            score = objective.singleton_score(element_id)

            if score > delta_max:
                delta_max = score
                valid = set(self._grid_range(delta_max, k))
                candidates = {j: s for j, s in candidates.items() if j in valid}
                for j in valid:
                    candidates.setdefault(j, objective.new_state())

            if candidates:
                for j, state in candidates.items():
                    phi = base**j
                    admission = phi / (2.0 * k)
                    if score < admission or len(state.selected) >= k:
                        continue
                    if objective.marginal_gain(element_id, state) >= admission:
                        objective.add(element_id, state)

            # TH is the smallest admission threshold among unfilled candidates;
            # when every candidate is full no further element can be admitted.
            unfilled = [
                base**j / (2.0 * k)
                for j, state in candidates.items()
                if len(state.selected) < k
            ]
            if candidates and not unfilled:
                break
            threshold = min(unfilled) if unfilled else 0.0

        best_state: Optional[ObjectiveState] = None
        for state in candidates.values():
            if best_state is None or state.value > best_state.value:
                best_state = state
        if best_state is None:
            best_state = objective.new_state()

        return SelectionOutcome(
            element_ids=tuple(best_state.selected),
            value=best_state.value,
            evaluated_elements=objective.evaluated_elements,
            extras={
                "candidates": float(len(candidates)),
                "retrieved": float(retrieved),
            },
        )
