"""The common interface of every k-SIR processing algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective
from repro.utils.validation import require_positive


@dataclass
class SelectionOutcome:
    """What an algorithm returns: the selected set plus execution counters.

    Attributes
    ----------
    element_ids:
        Selected element ids in selection order.
    value:
        ``f(S, x)`` of the selection as tracked by the algorithm.
    evaluated_elements:
        Distinct active elements whose score/marginal gain was evaluated.
    extras:
        Algorithm-specific counters (rounds, candidates, retrievals, ...).
    """

    element_ids: Tuple[int, ...]
    value: float
    evaluated_elements: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.element_ids = tuple(self.element_ids)


class KSIRAlgorithm:
    """Base class: selects at most ``k`` elements maximising ``f(·, x)``.

    ``objective`` is already bound to the query's scoring snapshot and query
    vector.  Index-based algorithms (MTTS, MTTD, Top-k Representative)
    additionally require the ranked-list ``index``; batch algorithms ignore
    it.
    """

    #: Human-readable name used in reports and result objects.
    name: str = "base"
    #: Whether the algorithm requires the ranked-list index to run.
    requires_index: bool = False

    def select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex] = None,
    ) -> SelectionOutcome:
        """Run the algorithm and return its selection outcome."""
        require_positive(k, "k")
        if self.requires_index and index is None:
            raise ValueError(f"{self.name} requires the ranked-list index")
        return self._select(objective, int(k), index)

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
