"""SieveStreaming (Badanidiyuru et al., KDD 2014) for k-SIR queries.

The state-of-the-art single-pass streaming algorithm for monotone submodular
maximisation with a cardinality constraint, achieving ``(1/2 − ε)``.  For a
k-SIR query it streams over *all* active elements in arrival order (there is
no index to prune with), maintaining one candidate per threshold in a
geometric grid of guesses for ``OPT``; each candidate admits an element when
its marginal gain is at least ``(ϕ/2 − f(S_ϕ)) / (k − |S_ϕ|)``.

This is exactly the baseline the paper compares MTTS/MTTD against: same
guarantee family, but it must evaluate every active element for every query.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective, ObjectiveState
from repro.utils.validation import require_in_range


class SieveStreaming(KSIRAlgorithm):
    """Single-pass SieveStreaming over the active elements."""

    name = "sievestreaming"
    requires_index = False

    def __init__(self, epsilon: float = 0.1) -> None:
        require_in_range(epsilon, "epsilon", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
        self.epsilon = float(epsilon)

    def __repr__(self) -> str:
        return f"SieveStreaming(epsilon={self.epsilon})"

    def _threshold_grid(self, delta_max: float, k: int) -> Dict[int, float]:
        """Thresholds ``(1+ε)^j`` with ``δ_max ≤ (1+ε)^j ≤ 2·k·δ_max``."""
        if delta_max <= 0.0:
            return {}
        base = 1.0 + self.epsilon
        low = math.ceil(math.log(delta_max, base) - 1e-12)
        high = math.floor(math.log(2.0 * k * delta_max, base) + 1e-12)
        return {j: base**j for j in range(low, high + 1)}

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        candidates: Dict[int, ObjectiveState] = {}
        delta_max = 0.0

        for element_id in objective.context.active_ids:
            score = objective.singleton_score(element_id)
            if score > delta_max:
                delta_max = score
                grid = self._threshold_grid(delta_max, k)
                # Drop candidates whose threshold left the admissible range
                # and lazily create the new ones.
                candidates = {
                    j: state for j, state in candidates.items() if j in grid
                }
                for j in grid:
                    candidates.setdefault(j, objective.new_state())
            if not candidates:
                continue
            grid = self._threshold_grid(delta_max, k)
            for j, state in candidates.items():
                if len(state.selected) >= k:
                    continue
                phi = grid.get(j)
                if phi is None:
                    continue
                admission = (phi / 2.0 - state.value) / (k - len(state.selected))
                if admission <= 0.0:
                    admission = 0.0
                gain = objective.marginal_gain(element_id, state)
                if gain >= admission and gain > 0.0:
                    objective.add(element_id, state)

        best_state: Optional[ObjectiveState] = None
        for state in candidates.values():
            if best_state is None or state.value > best_state.value:
                best_state = state
        if best_state is None:
            best_state = objective.new_state()
        return SelectionOutcome(
            element_ids=tuple(best_state.selected),
            value=best_state.value,
            evaluated_elements=objective.evaluated_elements,
            extras={"candidates": float(len(candidates))},
        )
