"""Top-k Representative: the k elements with the highest singleton scores.

The paper compares against this baseline to show that classical top-k
processing over the ranked lists (a Fagin-style threshold algorithm) is very
fast but ignores word/influence overlaps, so its result quality degrades as
``k`` grows — it is only ``1/k``-approximate for the k-SIR objective.

The implementation is the textbook threshold algorithm: traverse the ranked
lists in descending merged order, maintain the best ``k`` singleton scores
seen so far, and stop as soon as the k-th best score is at least the upper
bound of any unseen element.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective


class TopKRepresentative(KSIRAlgorithm):
    """Threshold-algorithm top-k by singleton representativeness score."""

    name = "topk-representative"
    requires_index = True

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        assert index is not None  # guaranteed by KSIRAlgorithm.select
        traversal = index.traversal(objective.query_vector)
        # Min-heap of (score, element_id) keeping the best k seen so far.
        best: List[Tuple[float, int]] = []
        retrieved = 0
        while True:
            item = traversal.pop()
            if item is None:
                break
            element_id, _stored = item
            retrieved += 1
            score = objective.singleton_score(element_id)
            if len(best) < k:
                heapq.heappush(best, (score, element_id))
            elif score > best[0][0]:
                heapq.heapreplace(best, (score, element_id))
            if len(best) >= k and best[0][0] >= traversal.upper_bound():
                break

        selected = [element_id for _score, element_id in sorted(best, reverse=True)]
        value = objective.value(selected)
        return SelectionOutcome(
            element_ids=tuple(selected),
            value=value,
            evaluated_elements=objective.evaluated_elements,
            extras={"retrieved": float(retrieved)},
        )
