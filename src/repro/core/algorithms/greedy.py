"""The basic greedy algorithm for monotone submodular maximisation.

Nemhauser et al.'s classic ``(1 − 1/e)``-approximate greedy: ``k`` passes over
all active elements, each pass adding the element with the maximum marginal
gain.  It evaluates ``O(k · n_t)`` marginal gains, so it is only used as the
correctness reference in tests and as the slowest baseline in ablations;
CELF (its lazy variant) is the batch baseline used by the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective


class GreedySelection(KSIRAlgorithm):
    """Exact (non-lazy) greedy selection."""

    name = "greedy"
    requires_index = False

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        state = objective.new_state()
        candidates = set(objective.context.active_ids)
        passes = 0
        while len(state.selected) < k and candidates:
            passes += 1
            best_id = None
            best_gain = 0.0
            for element_id in candidates:
                gain = objective.marginal_gain(element_id, state)
                if gain > best_gain:
                    best_gain = gain
                    best_id = element_id
            if best_id is None:
                # Every remaining element has zero marginal gain; adding more
                # cannot improve a monotone objective, so stop early.
                break
            objective.add(best_id, state)
            candidates.discard(best_id)
        return SelectionOutcome(
            element_ids=tuple(state.selected),
            value=state.value,
            evaluated_elements=objective.evaluated_elements,
            extras={"passes": float(passes)},
        )
