"""Query and result types for k-SIR processing.

A :class:`KSIRQuery` bundles the result-size bound ``k`` and the query vector
``x`` (optionally remembering the raw keywords it was inferred from and the
time it should be evaluated at).  A :class:`QueryResult` carries the selected
elements, their representativeness score and the execution statistics the
experiment harness aggregates (query time, evaluated elements, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class KSIRQuery:
    """A k-SIR query ``q_t(k, x)``.

    Parameters
    ----------
    k:
        Maximum result size (``|S| ≤ k``).
    vector:
        The query vector ``x`` over topics; it is validated to be
        non-negative and normalised to sum to one (the paper's convention)
        unless it sums to zero, which is rejected.
    time:
        Optional query timestamp; ``None`` means "the processor's current
        time" (ad-hoc queries issued against the live window).
    keywords:
        Optional raw keywords the vector was inferred from (kept for
        reporting and for the keyword-based baselines).
    """

    k: int
    vector: np.ndarray
    time: Optional[int] = None
    keywords: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_positive(self.k, "k")
        vector = np.asarray(self.vector, dtype=float)
        if vector.ndim != 1:
            raise ValueError("query vector must be one-dimensional")
        if np.any(vector < 0):
            raise ValueError("query vector entries must be non-negative")
        total = float(vector.sum())
        if total <= 0.0:
            raise ValueError("query vector must have positive mass")
        object.__setattr__(self, "vector", vector / total)
        object.__setattr__(self, "keywords", tuple(self.keywords))

    @classmethod
    def coerce(
        cls,
        query: Union["KSIRQuery", np.ndarray, Sequence[float]],
        k: Optional[int] = None,
    ) -> "KSIRQuery":
        """Normalise a query argument: pass instances through, wrap vectors.

        Raw vectors require ``k``; every query-accepting surface (processor,
        cluster coordinator) shares this coercion.
        """
        if isinstance(query, KSIRQuery):
            return query
        if k is None:
            raise ValueError("k must be provided when passing a raw query vector")
        return cls(k=k, vector=np.asarray(query, dtype=float))

    @property
    def num_topics(self) -> int:
        """Dimensionality ``z`` of the query vector."""
        return int(self.vector.shape[0])

    @property
    def nonzero_topics(self) -> Tuple[int, ...]:
        """Indices of topics with positive interest (``d`` of them)."""
        return tuple(int(i) for i in np.nonzero(self.vector > 0.0)[0])

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dictionary (used by the checkpoint layer)."""
        return {
            "k": self.k,
            "vector": [float(value) for value in self.vector],
            "time": self.time,
            "keywords": list(self.keywords),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "KSIRQuery":
        """Inverse of :meth:`to_dict`."""
        time = payload.get("time")
        return cls(
            k=int(payload["k"]),
            vector=np.asarray(payload["vector"], dtype=float),
            time=None if time is None else int(time),
            keywords=tuple(str(word) for word in payload.get("keywords", ())),
        )


@dataclass
class QueryResult:
    """The outcome of processing one k-SIR query with one algorithm.

    Attributes
    ----------
    element_ids:
        The selected elements in selection order (``|S| ≤ k``).
    score:
        ``f(S, x)`` of the returned set.
    algorithm:
        Name of the algorithm that produced the result.
    elapsed_ms:
        Wall-clock processing time in milliseconds.
    evaluated_elements:
        Number of distinct active elements whose score was evaluated.
    active_elements:
        ``n_t`` at query time, so ``evaluated_elements / active_elements`` is
        the ratio plotted in Figure 10.
    extras:
        Algorithm-specific counters (candidates kept, rounds, buffer size...).
    """

    element_ids: Tuple[int, ...]
    score: float
    algorithm: str
    elapsed_ms: float = 0.0
    evaluated_elements: int = 0
    active_elements: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.element_ids = tuple(self.element_ids)

    def __len__(self) -> int:
        return len(self.element_ids)

    def __iter__(self):
        return iter(self.element_ids)

    @property
    def evaluation_ratio(self) -> float:
        """Fraction of active elements evaluated (0.0 when the window is empty)."""
        if self.active_elements <= 0:
            return 0.0
        return self.evaluated_elements / self.active_elements

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.algorithm}: |S|={len(self.element_ids)} score={self.score:.4f} "
            f"time={self.elapsed_ms:.2f}ms evaluated={self.evaluated_elements}"
            f"/{self.active_elements}"
        )

    def copy(self) -> "QueryResult":
        """An independent copy (own ``extras`` dict).

        The serving layer hands result objects across its cache boundary
        through here, so callers can never mutate cached state.
        """
        return QueryResult(
            element_ids=self.element_ids,
            score=self.score,
            algorithm=self.algorithm,
            elapsed_ms=self.elapsed_ms,
            evaluated_elements=self.evaluated_elements,
            active_elements=self.active_elements,
            extras=dict(self.extras),
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dictionary (used by the checkpoint layer)."""
        return {
            "element_ids": list(self.element_ids),
            "score": float(self.score),
            "algorithm": self.algorithm,
            "elapsed_ms": float(self.elapsed_ms),
            "evaluated_elements": int(self.evaluated_elements),
            "active_elements": int(self.active_elements),
            "extras": {str(key): float(value) for key, value in self.extras.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QueryResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            element_ids=tuple(int(eid) for eid in payload["element_ids"]),
            score=float(payload["score"]),
            algorithm=str(payload["algorithm"]),
            elapsed_ms=float(payload.get("elapsed_ms", 0.0)),
            evaluated_elements=int(payload.get("evaluated_elements", 0)),
            active_elements=int(payload.get("active_elements", 0)),
            extras=dict(payload.get("extras", {})),
        )
