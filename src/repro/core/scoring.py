"""Representativeness scoring: semantic, influence and combined objectives.

This module implements Section 3.2 of the paper:

* the per-word weights ``σ_i(w, e) = −γ(w, e) · p_i(w, e) · log p_i(w, e)``
  with ``p_i(w, e) = p_i(w) · p_i(e)``,
* the topic-specific semantic score ``R_i(S)`` (weighted word coverage,
  Eq. 3),
* the topic-specific time-critical influence score ``I_{i,t}(S)``
  (probabilistic coverage over in-window followers, Eq. 4),
* the combined scores ``f_i(S) = λ·R_i(S) + (1 − λ)/η·I_{i,t}(S)`` and
  ``f(S, x) = Σ_i x_i · f_i(S)`` (Eq. 1–2).

Because every query algorithm is built on marginal gains, the objective
exposes an :class:`ObjectiveState` carrying the word-coverage and
influence-coverage bookkeeping needed to compute
``Δ(e | S) = f(S ∪ {e}, x) − f(S, x)`` in time proportional to the element's
own words and followers (``O(l·d)`` in the paper's analysis) instead of
re-evaluating the whole set.  Naive from-scratch evaluators are kept
alongside for tests and for the effectiveness metrics.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.element import SocialElement
from repro.kernels import get_kernel
from repro.topics.model import TopicModel
from repro.utils.validation import require_in_range, require_positive, require_probability

#: The per-(element, topic) positive-weight counting kernel (thresholded
#: segmented reduce); see :mod:`repro.kernels`.
_POSITIVE_COUNTS = get_kernel("positive_counts")


@dataclass(frozen=True)
class ScoringConfig:
    """Parameters of the representativeness objective.

    Parameters
    ----------
    lambda_weight:
        The trade-off ``λ ∈ [0, 1]`` between semantic and influence scores.
        ``λ = 1`` is pure weighted word coverage; ``λ = 0`` is pure
        probabilistic influence coverage.
    eta:
        The scale factor ``η > 0`` bringing the influence score to the same
        range as the semantic score (the paper uses 20 for AMiner/Reddit and
        200 for Twitter).
    topic_threshold:
        Topic probabilities ``p_i(e)`` at or below this value are treated as
        zero, i.e. the element does not appear on that topic's ranked list.
    """

    lambda_weight: float = 0.5
    eta: float = 20.0
    topic_threshold: float = 1e-4

    def __post_init__(self) -> None:
        require_probability(self.lambda_weight, "lambda_weight")
        require_positive(self.eta, "eta")
        require_in_range(self.topic_threshold, "topic_threshold", 0.0, 1.0, high_inclusive=False)

    @property
    def influence_weight(self) -> float:
        """The coefficient ``(1 − λ) / η`` applied to influence scores."""
        return (1.0 - self.lambda_weight) / self.eta


def word_weight(frequency: int, joint_probability: float) -> float:
    """``σ_i(w, e)`` given ``γ(w, e)`` and ``p_i(w, e)``.

    By convention the weight is zero when the joint probability is zero
    (the ``p·log p`` limit).
    """
    if joint_probability <= 0.0:
        return 0.0
    return -float(frequency) * joint_probability * math.log(joint_probability)


@dataclass(frozen=True)
class ElementProfile:
    """Precomputed per-element scoring data.

    Built once when the element enters the active window; every query reuses
    it.  All maps are keyed by topic index and (for word weights) vocabulary
    word id.

    Attributes
    ----------
    element_id:
        The profiled element's id.
    timestamp:
        The element's posting time.
    topic_probabilities:
        Sparse map ``topic → p_i(e)`` for topics above the threshold.
    word_weights:
        ``topic → {word_id → σ_i(w, e)}`` for the same topics.
    semantic_scores:
        ``topic → R_i(e)`` (the sum of the word weights).
    references:
        The ids the element refers to (copied from the element for locality).
    """

    element_id: int
    timestamp: int
    topic_probabilities: Dict[int, float]
    word_weights: Dict[int, Dict[int, float]]
    semantic_scores: Dict[int, float]
    references: Tuple[int, ...]

    @property
    def topics(self) -> Tuple[int, ...]:
        """Topics on which the element has non-zero probability."""
        return tuple(self.topic_probabilities.keys())

    def topic_probability(self, topic: int) -> float:
        """``p_i(e)`` (0.0 for topics below the threshold)."""
        return self.topic_probabilities.get(topic, 0.0)

    def semantic_score(self, topic: int) -> float:
        """``R_i(e)`` (0.0 for topics below the threshold)."""
        return self.semantic_scores.get(topic, 0.0)


class ProfileBuilder:
    """Builds :class:`ElementProfile` objects against a topic model."""

    def __init__(self, topic_model: TopicModel, config: ScoringConfig) -> None:
        self._model = topic_model
        self._config = config
        # word -> vocabulary id, shared by every build_many call.  Only
        # in-vocabulary words are cached, so the map is bounded by the
        # vocabulary size even on open-ended streams full of one-off
        # out-of-vocabulary tokens.
        self._word_id_cache: Dict[str, int] = {}

    @property
    def config(self) -> ScoringConfig:
        """The scoring configuration used for profiling."""
        return self._config

    @property
    def topic_model(self) -> TopicModel:
        """The topic model oracle."""
        return self._model

    def build(self, element: SocialElement) -> ElementProfile:
        """Profile one element; its topic distribution must be present."""
        distribution = element.topic_distribution
        if distribution is None:
            raise ValueError(
                f"element {element.element_id!r} has no topic distribution; "
                "run topic inference before profiling"
            )
        distribution = np.asarray(distribution, dtype=float)
        if distribution.shape != (self._model.num_topics,):
            raise ValueError(
                f"element {element.element_id!r} topic distribution has shape "
                f"{distribution.shape}, expected ({self._model.num_topics},)"
            )

        vocabulary = self._model.vocabulary
        matrix = self._model.topic_word_matrix
        frequencies = element.word_frequencies
        word_ids = {
            word: vocabulary.get_id(word)
            for word in frequencies
            if vocabulary.get_id(word) is not None
        }

        topic_probabilities: Dict[int, float] = {}
        word_weights: Dict[int, Dict[int, float]] = {}
        semantic_scores: Dict[int, float] = {}
        threshold = self._config.topic_threshold
        for topic in range(self._model.num_topics):
            probability = float(distribution[topic])
            if probability <= threshold:
                continue
            topic_probabilities[topic] = probability
            weights: Dict[int, float] = {}
            total = 0.0
            for word, word_id in word_ids.items():
                joint = float(matrix[topic, word_id]) * probability
                weight = word_weight(frequencies[word], joint)
                if weight > 0.0:
                    weights[word_id] = weight
                    total += weight
            word_weights[topic] = weights
            semantic_scores[topic] = total

        return ElementProfile(
            element_id=element.element_id,
            timestamp=element.timestamp,
            topic_probabilities=topic_probabilities,
            word_weights=word_weights,
            semantic_scores=semantic_scores,
            references=element.references,
        )

    def build_many(self, elements: Sequence[SocialElement]) -> List[ElementProfile]:
        """Profile a whole bucket of elements through the bulk fast path.

        This is the batched counterpart of :meth:`build` used by the
        stream-ingestion fast path.  All ``(topic, word)`` weight entries of
        the bucket are gathered into flat arrays, so the ``σ_i(w, e)``
        weights of every element are produced by a single vectorised numpy
        expression (one gather, one log) instead of one Python
        ``word_weight`` call per entry; word-id lookups are memoised across
        the bucket.  The produced profiles agree with :meth:`build` exactly
        (same operation order per weight), and topic/word orderings are
        preserved.
        """
        elements = list(elements)
        if not elements:
            return []

        model = self._model
        num_topics = model.num_topics
        matrix = model.topic_word_matrix
        vocabulary = model.vocabulary
        threshold = self._config.topic_threshold
        word_id_cache = self._word_id_cache

        for element in elements:
            if element.topic_distribution is None:
                raise ValueError(
                    f"element {element.element_id!r} has no topic distribution; "
                    "run topic inference before profiling"
                )
        try:
            distributions = np.stack(
                [
                    np.asarray(element.topic_distribution, dtype=float)
                    for element in elements
                ]
            )
        except ValueError as error:
            raise ValueError(
                f"inconsistent topic-distribution shapes in bucket: {error}"
            ) from None
        if distributions.shape[1] != num_topics:
            raise ValueError(
                f"bucket topic distributions have {distributions.shape[1]} topics, "
                f"expected {num_topics}"
            )

        # In-vocabulary word ids and frequencies per element (order
        # preserved), flattened as they are collected so the numpy arrays
        # below are built from plain lists in one conversion each.
        word_lists: List[List[int]] = []
        word_count_list: List[int] = []
        word_offset_list: List[int] = []
        flat_words: List[int] = []
        flat_frequencies: List[float] = []
        offset = 0
        for element in elements:
            word_ids: List[int] = []
            word_offset_list.append(offset)
            for word, frequency in Counter(element.tokens).items():
                word_id = word_id_cache.get(word)
                if word_id is None:
                    word_id = vocabulary.get_id(word)
                    if word_id is None:
                        continue
                    word_id_cache[word] = word_id
                word_ids.append(word_id)
                flat_frequencies.append(float(frequency))
            flat_words.extend(word_ids)
            word_lists.append(word_ids)
            word_count_list.append(len(word_ids))
            offset += len(word_ids)

        # One (element, topic) pair per above-threshold probability, in
        # element-major / topic-ascending order (matching :meth:`build`).
        pair_elements, pair_topics = np.nonzero(distributions > threshold)
        pair_probabilities = distributions[pair_elements, pair_topics]
        word_counts = np.asarray(word_count_list, dtype=np.intp)
        word_offsets = np.asarray(word_offset_list, dtype=np.intp)
        pair_counts = word_counts[pair_elements]
        total_entries = int(pair_counts.sum())

        weight_values: List[float] = []
        all_positive = False
        positive_counts: List[int] = []
        if total_entries:
            all_words = np.asarray(flat_words, dtype=np.intp)
            all_frequencies = np.asarray(flat_frequencies, dtype=float)
            # For each (element, topic) pair, gather that element's word slice:
            # starts[i] repeated count[i] times plus an intra-slice ramp.
            starts = np.repeat(word_offsets[pair_elements], pair_counts)
            ramp = np.arange(total_entries) - np.repeat(
                np.cumsum(pair_counts) - pair_counts, pair_counts
            )
            entry_index = starts + ramp
            entry_words = all_words[entry_index]
            joint = matrix[np.repeat(pair_topics, pair_counts), entry_words] * np.repeat(
                pair_probabilities, pair_counts
            )
            positive = joint > 0.0
            if positive.all():
                weights = -all_frequencies[entry_index] * joint * np.log(joint)
            else:
                logs = np.zeros_like(joint)
                np.log(joint, out=logs, where=positive)
                weights = np.where(
                    positive, -all_frequencies[entry_index] * joint * logs, 0.0
                )
            all_positive = bool((weights > 0.0).all())
            if not all_positive:
                # Positive-weight count per (element, topic) pair, so the
                # reassembly loop below can take a C-speed dict(zip(...))
                # fast path whenever a pair has no zero weights to filter
                # out.  The segmented reduce (empty segments stay 0) runs
                # through the ``positive_counts`` kernel.
                positive_counts = _POSITIVE_COUNTS(weights, pair_counts).tolist()
            weight_values = weights.tolist()

        # Reassemble per-element sparse maps from the flat weight array.
        topic_probability_maps: List[Dict[int, float]] = [{} for _ in elements]
        word_weight_maps: List[Dict[int, Dict[int, float]]] = [{} for _ in elements]
        semantic_score_maps: List[Dict[int, float]] = [{} for _ in elements]
        cursor = 0
        for pair_index, (element_index, topic, probability, count) in enumerate(
            zip(
                pair_elements.tolist(),
                pair_topics.tolist(),
                pair_probabilities.tolist(),
                pair_counts.tolist(),
            )
        ):
            word_ids = word_lists[element_index]
            if count and (all_positive or positive_counts[pair_index] == count):
                values = weight_values[cursor : cursor + count]
                entries = dict(zip(word_ids, values))
                total = float(sum(values))
            else:
                entries = {}
                total = 0.0
                for offset in range(count):
                    weight = weight_values[cursor + offset]
                    if weight > 0.0:
                        entries[word_ids[offset]] = weight
                        total += weight
            cursor += count
            topic_probability_maps[element_index][topic] = probability
            word_weight_maps[element_index][topic] = entries
            semantic_score_maps[element_index][topic] = total

        return [
            ElementProfile(
                element_id=element.element_id,
                timestamp=element.timestamp,
                topic_probabilities=topic_probability_maps[index],
                word_weights=word_weight_maps[index],
                semantic_scores=semantic_score_maps[index],
                references=element.references,
            )
            for index, element in enumerate(elements)
        ]


class ScoringContext:
    """A frozen snapshot of the active window used to answer one query.

    Holds the element profiles and the in-window follower view at query time
    ``t``; the objective (and the naive evaluators used in tests) read
    everything from here so queries never mutate the live window.
    """

    def __init__(
        self,
        profiles: Mapping[int, ElementProfile],
        followers: Mapping[int, Sequence[int]],
        config: ScoringConfig,
        time: Optional[int] = None,
    ) -> None:
        self._profiles = dict(profiles)
        self._followers = {key: tuple(value) for key, value in followers.items()}
        self._config = config
        self._time = time

    # -- accessors ---------------------------------------------------------------

    @property
    def config(self) -> ScoringConfig:
        """The scoring configuration."""
        return self._config

    @property
    def time(self) -> Optional[int]:
        """The query time ``t`` this snapshot corresponds to."""
        return self._time

    @property
    def active_ids(self) -> Tuple[int, ...]:
        """Ids of every active element in the snapshot."""
        return tuple(self._profiles.keys())

    @property
    def active_count(self) -> int:
        """``n_t``, the number of active elements."""
        return len(self._profiles)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._profiles

    def profile(self, element_id: int) -> ElementProfile:
        """The profile of an active element (KeyError when inactive)."""
        return self._profiles[element_id]

    def followers_of(self, element_id: int) -> Tuple[int, ...]:
        """``I_t(e)``: in-window followers of the element."""
        return self._followers.get(element_id, ())

    def influence_probability(self, topic: int, source_id: int, follower_id: int) -> float:
        """``p_i(e' ⇝ e) = p_i(e') · p_i(e)`` for an observed reference."""
        source = self._profiles.get(source_id)
        follower = self._profiles.get(follower_id)
        if source is None or follower is None:
            return 0.0
        return source.topic_probability(topic) * follower.topic_probability(topic)

    # -- singleton scores -----------------------------------------------------------

    def singleton_topic_score(self, element_id: int, topic: int) -> float:
        """``δ_i(e) = f_i({e})``: the element's score on one topic."""
        profile = self._profiles[element_id]
        semantic = profile.semantic_score(topic)
        influence = 0.0
        probability = profile.topic_probability(topic)
        if probability > 0.0:
            for follower_id in self.followers_of(element_id):
                follower = self._profiles.get(follower_id)
                if follower is None:
                    continue
                influence += probability * follower.topic_probability(topic)
        return (
            self._config.lambda_weight * semantic
            + self._config.influence_weight * influence
        )

    def singleton_score(self, element_id: int, query_vector: np.ndarray) -> float:
        """``δ(e, x) = f({e}, x)``."""
        profile = self._profiles[element_id]
        total = 0.0
        for topic in profile.topics:
            weight = float(query_vector[topic])
            if weight > 0.0:
                total += weight * self.singleton_topic_score(element_id, topic)
        return total

    # -- naive set evaluators (reference implementations) ------------------------------

    def semantic_score(self, element_ids: Iterable[int], topic: int) -> float:
        """``R_i(S)`` computed directly from Eq. 3."""
        best: Dict[int, float] = {}
        for element_id in element_ids:
            profile = self._profiles[element_id]
            for word_id, weight in profile.word_weights.get(topic, {}).items():
                if weight > best.get(word_id, 0.0):
                    best[word_id] = weight
        return float(sum(best.values()))

    def influence_score(self, element_ids: Iterable[int], topic: int) -> float:
        """``I_{i,t}(S)`` computed directly from Eq. 4."""
        members = [eid for eid in element_ids if eid in self._profiles]
        member_set = set(members)
        influenced: Dict[int, float] = {}
        for source_id in members:
            source = self._profiles[source_id]
            probability = source.topic_probability(topic)
            for follower_id in self.followers_of(source_id):
                follower = self._profiles.get(follower_id)
                if follower is None:
                    continue
                edge = probability * follower.topic_probability(topic)
                remaining = influenced.get(follower_id, 1.0)
                influenced[follower_id] = remaining * (1.0 - edge)
        del member_set
        return float(sum(1.0 - remaining for remaining in influenced.values()))

    def topic_score(self, element_ids: Iterable[int], topic: int) -> float:
        """``f_i(S)`` computed from the naive evaluators."""
        ids = list(element_ids)
        return (
            self._config.lambda_weight * self.semantic_score(ids, topic)
            + self._config.influence_weight * self.influence_score(ids, topic)
        )

    def score(self, element_ids: Iterable[int], query_vector: np.ndarray) -> float:
        """``f(S, x)`` computed from the naive evaluators."""
        ids = list(element_ids)
        total = 0.0
        for topic, weight in enumerate(np.asarray(query_vector, dtype=float)):
            if weight > 0.0:
                total += float(weight) * self.topic_score(ids, topic)
        return total


@dataclass
class ObjectiveState:
    """Mutable bookkeeping for incremental marginal-gain evaluation.

    Attributes
    ----------
    selected:
        The element ids added so far, in insertion order.
    value:
        The current objective value ``f(S, x)``.
    covered_words:
        Per query-topic map ``word_id → max σ`` over the selected elements.
    remaining_influence:
        Per query-topic map ``follower_id → Π (1 − p_i(e' ⇝ follower))`` over
        selected sources ``e'``; followers never touched are implicitly 1.0.
    """

    selected: List[int] = field(default_factory=list)
    value: float = 0.0
    covered_words: Dict[int, Dict[int, float]] = field(default_factory=dict)
    remaining_influence: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def copy(self) -> "ObjectiveState":
        """A deep copy (states are tiny compared to the window)."""
        return ObjectiveState(
            selected=list(self.selected),
            value=self.value,
            covered_words={topic: dict(words) for topic, words in self.covered_words.items()},
            remaining_influence={
                topic: dict(remaining)
                for topic, remaining in self.remaining_influence.items()
            },
        )

    def __len__(self) -> int:
        return len(self.selected)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self.selected


class KSIRObjective:
    """The monotone submodular k-SIR objective ``f(·, x)`` for one query.

    The objective is bound to a :class:`ScoringContext` snapshot and a query
    vector; it exposes singleton scores, incremental marginal gains and the
    exact set value.  Evaluations of distinct elements are counted so the
    experiment harness can reproduce Figure 10 (ratio of evaluated elements).
    """

    def __init__(self, context: ScoringContext, query_vector: np.ndarray) -> None:
        vector = np.asarray(query_vector, dtype=float)
        if vector.ndim != 1:
            raise ValueError("query_vector must be one-dimensional")
        if np.any(vector < 0):
            raise ValueError("query_vector entries must be non-negative")
        self._context = context
        self._vector = vector
        self._query_topics: Tuple[Tuple[int, float], ...] = tuple(
            (topic, float(weight)) for topic, weight in enumerate(vector) if weight > 0.0
        )
        self._evaluated: set = set()
        self._evaluation_calls = 0

    # -- metadata --------------------------------------------------------------------

    @property
    def context(self) -> ScoringContext:
        """The bound scoring snapshot."""
        return self._context

    @property
    def query_vector(self) -> np.ndarray:
        """The query vector ``x``."""
        return self._vector

    @property
    def query_topics(self) -> Tuple[Tuple[int, float], ...]:
        """The non-zero ``(topic, weight)`` entries of the query vector."""
        return self._query_topics

    @property
    def evaluated_elements(self) -> int:
        """Number of *distinct* elements whose score has been evaluated."""
        return len(self._evaluated)

    @property
    def evaluation_calls(self) -> int:
        """Total number of marginal-gain / singleton evaluations."""
        return self._evaluation_calls

    # -- evaluations --------------------------------------------------------------------

    def singleton_score(self, element_id: int) -> float:
        """``δ(e, x) = f({e}, x)``."""
        self._note_evaluation(element_id)
        profile = self._context.profile(element_id)
        config = self._context.config
        total = 0.0
        for topic, weight in self._query_topics:
            probability = profile.topic_probability(topic)
            if probability <= 0.0:
                continue
            semantic = profile.semantic_score(topic)
            influence = 0.0
            for follower_id in self._context.followers_of(element_id):
                try:
                    follower = self._context.profile(follower_id)
                except KeyError:
                    continue
                influence += probability * follower.topic_probability(topic)
            total += weight * (
                config.lambda_weight * semantic + config.influence_weight * influence
            )
        return total

    def new_state(self) -> ObjectiveState:
        """An empty selection state."""
        return ObjectiveState()

    def marginal_gain(self, element_id: int, state: ObjectiveState) -> float:
        """``Δ(e | S) = f(S ∪ {e}, x) − f(S, x)`` without mutating ``state``."""
        return self._gain(element_id, state, commit=False)

    def add(self, element_id: int, state: ObjectiveState) -> float:
        """Add the element to the state and return its marginal gain."""
        gain = self._gain(element_id, state, commit=True)
        state.selected.append(element_id)
        state.value += gain
        return gain

    def value(self, element_ids: Iterable[int]) -> float:
        """``f(S, x)`` evaluated from scratch (used for final scores)."""
        state = self.new_state()
        for element_id in element_ids:
            if element_id in state.selected:
                continue
            self.add(element_id, state)
        return state.value

    # -- internals ------------------------------------------------------------------------

    def _gain(self, element_id: int, state: ObjectiveState, commit: bool) -> float:
        self._note_evaluation(element_id)
        profile = self._context.profile(element_id)
        config = self._context.config
        followers = self._context.followers_of(element_id)
        total = 0.0
        for topic, weight in self._query_topics:
            probability = profile.topic_probability(topic)
            if probability <= 0.0:
                continue

            covered = state.covered_words.get(topic)
            semantic_gain = 0.0
            topic_weights = profile.word_weights.get(topic, {})
            if covered is None:
                semantic_gain = profile.semantic_score(topic)
                if commit and topic_weights:
                    state.covered_words[topic] = dict(topic_weights)
            else:
                for word_id, sigma in topic_weights.items():
                    previous = covered.get(word_id, 0.0)
                    if sigma > previous:
                        semantic_gain += sigma - previous
                        if commit:
                            covered[word_id] = sigma

            influence_gain = 0.0
            if followers:
                remaining_map = state.remaining_influence.get(topic)
                for follower_id in followers:
                    try:
                        follower = self._context.profile(follower_id)
                    except KeyError:
                        continue
                    edge = probability * follower.topic_probability(topic)
                    if edge <= 0.0:
                        continue
                    remaining = 1.0
                    if remaining_map is not None:
                        remaining = remaining_map.get(follower_id, 1.0)
                    influence_gain += edge * remaining
                    if commit:
                        if remaining_map is None:
                            remaining_map = {}
                            state.remaining_influence[topic] = remaining_map
                        remaining_map[follower_id] = remaining * (1.0 - edge)

            total += weight * (
                config.lambda_weight * semantic_gain
                + config.influence_weight * influence_gain
            )
        return total

    def _note_evaluation(self, element_id: int) -> None:
        self._evaluated.add(element_id)
        self._evaluation_calls += 1
