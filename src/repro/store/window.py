"""The array-backed sliding window: Algorithm 1 over an :class:`ElementStore`.

:class:`ColumnarWindow` implements exactly the semantics of
:class:`~repro.core.window.ActiveWindow` — same active-set rules, same
expiry order, same archive-backed re-activation — but keeps the hot state
(timestamps, last-activity, window membership, follower adjacency) in the
columnar store instead of per-element dicts and sets:

* the two expiry scans of :meth:`advance_to` (window members posted before
  the window start; elements whose last activity predates it) are boolean
  masks over contiguous arrays instead of dict iterations;
* follower bookkeeping is row-index adjacency in the store, which the
  processor's batched re-scorer and the shard export read as array slices.

The :class:`~repro.core.element.SocialElement` payloads themselves (tokens,
references, text) stay in plain dicts: they are cold data touched once per
element, and the archive needs the full objects to re-activate expired
precedents and to rebuild profiles after a checkpoint restore.

Both window classes serialise to the same logical ``state_dict`` schema;
this one emits the numeric parts as arrays (the v2 checkpoint extracts
them into the ``.npz`` member) and both restore either shape through
:mod:`repro.store.codec`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple, cast

import numpy as np

from repro.core.element import SocialElement
from repro.core.window_policy import WindowPolicy
from repro.store.codec import (
    decode_followers,
    decode_id_list,
    decode_pairs,
    encode_id_array,
)
from repro.store.store import ElementStore


class ColumnarWindow:
    """Maintains ``W_t``, ``A_t`` and follower sets on columnar arrays."""

    def __init__(
        self,
        window_length: int,
        archive_windows: int = 8,
        store: Optional[ElementStore] = None,
        num_topics: int = 1,
        policy: Optional[WindowPolicy] = None,
    ) -> None:
        if window_length <= 0:
            raise ValueError("window_length must be positive")
        if archive_windows < 1:
            raise ValueError("archive_windows must be at least 1")
        self._policy = policy if policy is not None else WindowPolicy()
        self._tracker = self._policy.tracker(int(window_length))
        self._window_length = int(window_length)
        self._archive_horizon = int(archive_windows) * self._window_length
        self._current_time: Optional[int] = None
        self._store = store if store is not None else ElementStore(num_topics)
        # Cold per-element payloads: the active objects and the bounded
        # archive that re-activates expired precedents.
        self._elements: Dict[int, SocialElement] = {}
        self._archive: Dict[int, SocialElement] = {}
        self._touched_by_expiry: Set[int] = set()

    # -- configuration ----------------------------------------------------------

    @property
    def store(self) -> ElementStore:
        """The columnar store backing this window."""
        return self._store

    @property
    def window_length(self) -> int:
        """The window length ``T``."""
        return self._window_length

    @property
    def archive_horizon(self) -> int:
        """Archive retention horizon in stream time units."""
        return self._archive_horizon

    @property
    def current_time(self) -> Optional[int]:
        """The time of the last :meth:`advance_to` call (None before any)."""
        return self._current_time

    @property
    def policy(self) -> WindowPolicy:
        """The window policy governing the expiry cutoff."""
        return self._policy

    @property
    def window_start(self) -> Optional[int]:
        """The earliest in-window timestamp (``t − T + 1`` when sliding)."""
        if self._current_time is None:
            return None
        return self._tracker.cutoff(self._current_time)

    # -- updates -----------------------------------------------------------------

    def insert(self, element: SocialElement) -> Tuple[int, ...]:
        """Insert a newly arrived element (same contract as ActiveWindow)."""
        store = self._store
        element_id = element.element_id
        if self._policy.stateful:
            self._tracker.observe(element.timestamp)
        self._retire_replaced_edges(element_id)
        row = store.acquire(element_id, element.timestamp)
        store.raise_last_activity(row, element.timestamp)
        store.set_in_window(row, True)
        self._elements[element_id] = element
        self._archive[element_id] = element

        touched: List[int] = []
        for parent_id in element.references:
            parent_row = store.get_row(parent_id)
            if parent_row is None:
                parent = self._archive.get(parent_id)
                if parent is None:
                    # Never observed (or already dropped from the archive):
                    # dangling references are ignored, as a deployment would.
                    continue
                # Re-activate the expired precedent from the archive.
                parent_row = store.acquire(parent_id, parent.timestamp)
                self._elements[parent_id] = parent
            store.add_follower(parent_row, row)
            store.raise_last_activity(parent_row, element.timestamp)
            touched.append(parent_id)
        return tuple(touched)

    def _retire_replaced_edges(self, element_id: int) -> None:
        """Retire the follower edges of a re-posted window member.

        A replacement's old edges must not outlive the old version: the
        columnar store recycles rows, so a dangling edge would later point
        at an unrelated element.  Parents losing an edge are re-scored
        through the touched-by-expiry channel, mirroring ActiveWindow.
        """
        store = self._store
        row = store.get_row(element_id)
        if row is None or not store.in_window(row):
            return
        previous = self._elements[element_id]
        for parent_id in previous.references:
            parent_row = store.get_row(parent_id)
            if parent_row is not None and store.discard_follower(parent_row, row):
                self._touched_by_expiry.add(parent_id)

    def insert_bucket(
        self, elements: Iterable[SocialElement]
    ) -> Dict[int, Tuple[int, ...]]:
        """Insert a bucket; returns ``{element_id: touched_parent_ids}``."""
        return {element.element_id: self.insert(element) for element in elements}

    def insert_many(
        self, elements: List[SocialElement]
    ) -> Tuple[List[Tuple[int, ...]], List[int]]:
        """Insert a bucket through the store's bulk row allocation.

        Returns per-element touched-parent tuples (same contract as
        :meth:`insert`, in order) plus the interned rows, so the caller
        can follow up with bulk profile writes.  Semantically identical
        to calling :meth:`insert` per element.
        """
        store = self._store
        if self._policy.stateful:
            self._tracker.observe_many(
                [element.timestamp for element in elements]
            )
        # Rows are interned for the whole bucket up front, so reference
        # resolution below must reconstruct the element-at-a-time world:
        # ids that were not live before the bucket and have not been
        # reached yet are *pending* — a reference to one resolves through
        # the archive (re-activating the archived precedent) or stays
        # dropped as dangling, exactly as the element-wise paths behave.
        pending = set()
        member_before = set()
        for element in elements:
            existing_row = store.get_row(element.element_id)
            if existing_row is None:
                pending.add(element.element_id)
            elif store.in_window(existing_row):
                member_before.add(element.element_id)
        rows = store.bulk_acquire(
            [element.element_id for element in elements],
            [element.timestamp for element in elements],
        )
        store.set_in_window_many(rows, True)
        elements_map = self._elements
        archive = self._archive
        reposted = set()
        touched_lists: List[Tuple[int, ...]] = []
        for element, row in zip(elements, rows):
            element_id = element.element_id
            pending.discard(element_id)
            # Retire the edges of a replaced window member (the membership
            # test uses the pre-bucket state: the bulk pre-flagged every
            # row as a member already).
            if element_id in member_before or element_id in reposted:
                previous = elements_map[element_id]
                for parent_id in previous.references:
                    parent_row = store.get_row(parent_id)
                    if parent_row is not None and store.discard_follower(
                        parent_row, row
                    ):
                        self._touched_by_expiry.add(parent_id)
            reposted.add(element_id)
            elements_map[element_id] = element
            archive[element_id] = element
            # Fresh rows already carry last_activity = timestamp; a bucket
            # that re-acquired a live id fell back to element-wise acquire,
            # which also leaves last_activity ≥ the new timestamp only if
            # raised — do it explicitly for that (rare) case.
            store.raise_last_activity(row, element.timestamp)
            touched: List[int] = []
            for parent_id in element.references:
                if parent_id in pending:
                    # Pre-interned by the bulk but not observed yet at this
                    # insertion point: resolvable only through the archive
                    # (an expired precedent re-posted later in the bucket).
                    parent = archive.get(parent_id)
                    if parent is None:
                        continue
                    elements_map[parent_id] = parent
                    parent_row = store.row_of(parent_id)
                    # The element-wise path re-activates with the archived
                    # timestamp before the re-post overwrites it; fold its
                    # contribution into the activity max explicitly.
                    store.raise_last_activity(parent_row, parent.timestamp)
                else:
                    maybe_row = store.get_row(parent_id)
                    if maybe_row is None:
                        parent = archive.get(parent_id)
                        if parent is None:
                            continue
                        maybe_row = store.acquire(parent_id, parent.timestamp)
                        elements_map[parent_id] = parent
                    parent_row = maybe_row
                store.add_follower(parent_row, row)
                store.raise_last_activity(parent_row, element.timestamp)
                touched.append(parent_id)
            touched_lists.append(tuple(touched))
        return touched_lists, rows

    def advance_to(self, time: int) -> Tuple[int, ...]:
        """Advance the window to ``time``; returns the expired element ids."""
        if self._current_time is not None and time < self._current_time:
            raise ValueError(
                f"cannot move the window backwards (from {self._current_time} to {time})"
            )
        self._current_time = int(time)
        window_start = self.window_start
        assert window_start is not None
        store = self._store

        # Both row sets come out of one fused column scan (the
        # ``window_scan`` kernel).  Computing them upfront is equivalent
        # to the historical two-pass order: step 1 only mutates window
        # membership and follower edges, never the element-id or
        # last-activity columns the inactive mask reads.
        expired_rows, inactive_rows = store.window_scan_rows(window_start)

        # 1. Window members posted before the window start leave W_t; their
        #    follower edges disappear and the affected parents are marked
        #    stale for re-scoring.
        for row in expired_rows.tolist():
            store.set_in_window(row, False)
            element = self._elements[store.element_id_at(row)]
            for parent_id in element.references:
                parent_row = store.get_row(parent_id)
                if parent_row is not None and store.discard_follower(parent_row, row):
                    self._touched_by_expiry.add(parent_id)

        # 2. Elements whose last activity predates the window start leave
        #    the active set entirely (their rows are recycled).
        removed: List[int] = []
        for row in inactive_rows.tolist():
            element_id = store.element_id_at(row)
            store.release(element_id)
            self._elements.pop(element_id, None)
            self._touched_by_expiry.discard(element_id)
            removed.append(element_id)

        # 3. Trim the archive so memory stays bounded by the horizon.
        archive_cutoff = self._current_time - self._archive_horizon
        if archive_cutoff > 0:
            stale = [
                element_id
                for element_id, element in self._archive.items()
                if element.timestamp < archive_cutoff
                and element_id not in self._elements
            ]
            for element_id in stale:
                del self._archive[element_id]
        return tuple(removed)

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._elements

    def __iter__(self) -> Iterator[SocialElement]:
        return iter(self._elements.values())

    def get(self, element_id: int) -> SocialElement:
        """Return the active element with the given id (KeyError when absent)."""
        return self._elements[element_id]

    def active_ids(self) -> Tuple[int, ...]:
        """Ids of every active element (``A_t``)."""
        return tuple(self._elements.keys())

    def active_elements(self) -> Tuple[SocialElement, ...]:
        """Every active element (``A_t``)."""
        return tuple(self._elements.values())

    def window_ids(self) -> Tuple[int, ...]:
        """Ids of the elements inside the sliding window (``W_t``)."""
        store = self._store
        return tuple(
            int(i) for i in store.ids_at(store.window_member_rows()).tolist()
        )

    def in_window(self, element_id: int) -> bool:
        """Whether the element is currently a member of ``W_t``."""
        row = self._store.get_row(element_id)
        return row is not None and self._store.in_window(row)

    def take_touched_by_expiry(self) -> Tuple[int, ...]:
        """Drain the stale-score set (same contract as ActiveWindow)."""
        touched = tuple(
            eid for eid in self._touched_by_expiry if eid in self._elements
        )
        self._touched_by_expiry.clear()
        return touched

    def followers_of(self, element_id: int) -> Tuple[int, ...]:
        """``I_t(e)``: ids of in-window elements referencing ``element_id``."""
        row = self._store.get_row(element_id)
        if row is None:
            return ()
        return self._store.follower_ids(row)

    def followers_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """``I_t(e)`` of every active element via one CSR slice."""
        store = self._store
        rows = store.live_rows()
        parent_ids = store.ids_at(rows)
        indptr, follower_ids = store.followers_csr(rows)
        flat = follower_ids.tolist()
        snapshot: Dict[int, Tuple[int, ...]] = {}
        for position, parent in enumerate(parent_ids.tolist()):
            start, stop = int(indptr[position]), int(indptr[position + 1])
            snapshot[int(parent)] = tuple(flat[start:stop])
        return snapshot

    def follower_count(self, element_id: int) -> int:
        """``|I_t(e)|`` without materialising the tuple."""
        row = self._store.get_row(element_id)
        return 0 if row is None else self._store.follower_count(row)

    def last_activity(self, element_id: int) -> int:
        """Last post/reference time of the element (KeyError when inactive)."""
        return self._store.last_activity_of(self._store.row_of(element_id))

    @property
    def active_count(self) -> int:
        """``n_t = |A_t|``."""
        return len(self._elements)

    @property
    def window_count(self) -> int:
        """``|W_t|``."""
        return self._store.window_count

    # -- checkpoint state --------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The shared window snapshot schema, numeric parts as arrays.

        Same logical content as :meth:`ActiveWindow.state_dict` — the
        checkpoint layer extracts the arrays into the ``.npz`` member of
        the v2 format, and either window class restores either shape.
        """
        store = self._store
        ordered = encode_id_array(self._elements)
        rows = store.rows_of(ordered.tolist())
        indptr, follower_ids = store.followers_csr(rows)
        last_activity = np.stack(
            [ordered, store.last_activity_slice(rows)], axis=1
        ).astype(np.int64)
        extra: Dict[str, object] = {}
        if self._policy.kind != "sliding":
            # Non-sliding policies carry their identity and tracker state;
            # the sliding default writes neither so its checkpoints stay
            # identical to every earlier release.
            extra["window_policy"] = self._policy.to_dict()
            extra["window_tracker"] = self._tracker.state_dict()
        return {
            **extra,
            "window_length": self._window_length,
            "archive_horizon": self._archive_horizon,
            "current_time": self._current_time,
            "archive": [element.to_dict() for element in self._archive.values()],
            "active_ids": ordered,
            "window_member_ids": encode_id_array(self.window_ids()),
            "last_activity": last_activity,
            "followers": {
                "parents": ordered,
                "indptr": indptr,
                "followers": follower_ids,
            },
            "touched_by_expiry": sorted(self._touched_by_expiry),
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore either window snapshot shape (JSON lists or arrays)."""
        if int(cast(int, state["window_length"])) != self._window_length:
            raise ValueError(
                f"checkpoint window_length {state['window_length']} does not match "
                f"the configured window_length {self._window_length}"
            )
        persisted_policy = WindowPolicy.from_dict(
            cast("Optional[Mapping[str, object]]", state.get("window_policy"))
        )
        if persisted_policy.kind != self._policy.kind:
            raise ValueError(
                f"checkpoint window policy {persisted_policy.kind!r} does not "
                f"match the configured policy {self._policy.kind!r}"
            )
        tracker_state = state.get("window_tracker")
        if tracker_state is not None:
            self._tracker.restore_state(
                cast("Mapping[str, object]", tracker_state)
            )
        archive_payload = cast(List[Dict[str, object]], state["archive"])
        archive = {
            int(cast(int, payload["element_id"])): SocialElement.from_dict(payload)
            for payload in archive_payload
        }
        current_time = cast(Optional[int], state["current_time"])
        self._current_time = None if current_time is None else int(current_time)

        store = self._store
        store.clear()
        self._elements = {}
        active_ids = decode_id_list(state["active_ids"])
        for element_id in active_ids:
            element = archive[element_id]
            self._elements[element_id] = element
            store.acquire(element_id, element.timestamp)
        for element_id in decode_id_list(state["window_member_ids"]):
            store.set_in_window(store.row_of(element_id), True)
        for element_id, time in decode_pairs(state["last_activity"]):
            row = store.get_row(element_id)
            if row is not None:
                store.set_last_activity(row, time)
        for parent_id, follower_ids in decode_followers(state["followers"]).items():
            parent_row = store.get_row(parent_id)
            if parent_row is None:
                continue
            for follower_id in follower_ids:
                store.add_follower(parent_row, store.row_of(follower_id))
        self._touched_by_expiry = {
            int(eid) for eid in decode_id_list(state["touched_by_expiry"])
        }
        # Prune archived elements beyond the configured horizon: a restored
        # window must not carry more history than a live one would.
        if self._current_time is not None:
            cutoff = self._current_time - self._archive_horizon
            if cutoff > 0:
                archive = {
                    element_id: element
                    for element_id, element in archive.items()
                    if element.timestamp >= cutoff or element_id in self._elements
                }
        self._archive = archive

    def validate(self) -> bool:
        """Check internal invariants (used by property-based tests)."""
        store = self._store
        if not store.validate():
            return False
        if len(self._elements) != len(store):
            return False
        window_start = self.window_start
        for element_id, element in self._elements.items():
            row = store.get_row(element_id)
            if row is None:
                return False
            if store.in_window(row):
                if window_start is not None and element.timestamp < window_start:
                    return False
            for follower_row in store.follower_rows(row):
                follower = self._elements.get(store.element_id_at(follower_row))
                if follower is None or element_id not in follower.references:
                    return False
            if element_id not in self._archive and element_id in self._elements:
                # Actives are always archived first (insert order), except
                # re-activated precedents whose archive entry must exist too.
                return False
        return True
