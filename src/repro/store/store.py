"""The columnar element state store.

:class:`ElementStore` re-encodes the hot per-element stream state —
timestamps, last-activity times ``t_e``, window membership, the thresholded
topic-profile matrix ``P[rows, z]`` and the in-window follower adjacency —
as contiguous NumPy arrays over interned *rows* instead of per-element
Python objects.  One store instance backs one
:class:`~repro.store.window.ColumnarWindow` (and through it one
:class:`~repro.core.processor.KSIRProcessor`), giving every layer above a
vectorised view of the active set:

* **row interning with free-row recycling** — element ids are mapped to
  dense row indices; expired rows return to a free list and are reused, so
  the arrays stay compact over unbounded streams;
* **vectorised scans** — window expiry and activity-based eviction become
  boolean masks over the columns instead of dict iterations;
* **the profile matrix** — ``P[row, i]`` holds the element's thresholded
  topic probability ``p_i(e)``, so batched influence re-scoring reduces to
  one gather + ``reduceat`` over follower rows;
* **CSR export** — the follower adjacency of any row subset serialises to
  ``(indptr, indices)`` array slices for shard candidate export, merged
  snapshots and the v2 checkpoint format;
* **topic epochs** — a monotonically increasing epoch is stamped on every
  topic whose ranked list changes, which is what the serving layer's
  incremental scheduler reads instead of draining per-topic dirty sets.

The store is deliberately dumb about *semantics*: the sliding-window rules
of Algorithm 1 live in :class:`~repro.store.window.ColumnarWindow`, which
drives the store; scoring lives in :mod:`repro.core.scoring`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np
import numpy.typing as npt

from repro.kernels import get_kernel

_NO_ACTIVITY = np.iinfo(np.int64).min

#: The fused expiry + free-row recycling scan kernel; see :mod:`repro.kernels`.
_WINDOW_SCAN = get_kernel("window_scan")


class StoreCapacityError(RuntimeError):
    """A fixed-capacity store ran out of rows.

    Raised instead of growing when the store's columns are externally
    provided (shared-memory segments owned by the cluster coordinator):
    the store cannot reallocate arrays it does not own.  Carries the row
    capacity the operation needs so the owner can grow the segments and
    retry.
    """

    def __init__(self, required_capacity: int) -> None:
        self.required_capacity = int(required_capacity)
        super().__init__(
            f"store needs capacity for {required_capacity} rows"
        )


class ElementStore:
    """Contiguous columnar storage for the active-element state.

    Columns are normally private heap arrays that double on demand.  The
    shared-memory cluster transport instead passes ``columns`` — views of
    coordinator-owned segments — in which case the store adopts them at a
    *fixed* capacity: exhausting it raises :class:`StoreCapacityError` and
    the owner swaps in larger segments via :meth:`adopt_columns`.
    """

    def __init__(
        self,
        num_topics: int,
        initial_capacity: int = 1024,
        columns: Optional[Mapping[str, npt.NDArray]] = None,
    ) -> None:
        if num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self._num_topics = int(num_topics)
        self._external_columns = columns is not None
        self._element_ids: npt.NDArray[np.int64]
        self._timestamps: npt.NDArray[np.int64]
        self._last_activity: npt.NDArray[np.int64]
        self._in_window: npt.NDArray[np.bool_]
        self._profiles: npt.NDArray[np.float64]
        self._profile_set: npt.NDArray[np.bool_]
        if columns is not None:
            capacity = int(columns["ids"].shape[0])
            self._capacity = capacity
            self._element_ids = columns["ids"]
            self._timestamps = columns["ts"]
            self._last_activity = columns["act"]
            self._in_window = columns["inw"]
            self._profiles = columns["prof"]
            self._profile_set = columns["pset"]
            if self._profiles.shape != (capacity, self._num_topics):
                raise ValueError(
                    f"profile column shape {self._profiles.shape} does not "
                    f"match ({capacity}, {self._num_topics})"
                )
            # A fresh store is empty; the segments may hold stale data from
            # a previous worker incarnation (restart after a crash).
            self._element_ids[:] = -1
            self._timestamps[:] = 0
            self._last_activity[:] = _NO_ACTIVITY
            self._in_window[:] = False
            self._profiles[:, :] = 0.0
            self._profile_set[:] = False
        else:
            capacity = int(initial_capacity)
            self._capacity = capacity
            # row -> element id (-1 marks a free row).
            self._element_ids = np.full(capacity, -1, dtype=np.int64)
            self._timestamps = np.zeros(capacity, dtype=np.int64)
            self._last_activity = np.full(capacity, _NO_ACTIVITY, dtype=np.int64)
            self._in_window = np.zeros(capacity, dtype=np.bool_)
            # Thresholded topic probabilities p_i(e) (zeros below the scoring
            # threshold and for rows whose profile has not been set yet).
            self._profiles = np.zeros(
                (capacity, self._num_topics), dtype=np.float64
            )
            self._profile_set = np.zeros(capacity, dtype=np.bool_)
        # Dynamic in-window follower adjacency: row -> set of follower rows.
        # Mutation-friendly sets here; CSR array slices on export.
        self._followers: List[Set[int]] = [set() for _ in range(capacity)]
        self._row_of: Dict[int, int] = {}
        self._free_rows: List[int] = []
        self._high_water = 0
        # Per-topic change epochs (see mark_topics_dirty).
        self._topic_epochs: npt.NDArray[np.int64] = np.zeros(
            self._num_topics, dtype=np.int64
        )
        self._epoch = 0

    # -- metadata ----------------------------------------------------------------

    @property
    def num_topics(self) -> int:
        """Number of topic columns ``z`` of the profile matrix."""
        return self._num_topics

    @property
    def capacity(self) -> int:
        """Current row capacity of the arrays."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._row_of

    @property
    def free_row_count(self) -> int:
        """Rows currently parked on the free list (recycled on acquire)."""
        return len(self._free_rows)

    # -- interning ---------------------------------------------------------------

    def row_of(self, element_id: int) -> int:
        """The row interned for ``element_id`` (KeyError when absent)."""
        return self._row_of[element_id]

    def get_row(self, element_id: int) -> Optional[int]:
        """The row interned for ``element_id``, or ``None`` when absent."""
        return self._row_of.get(element_id)

    def element_id_at(self, row: int) -> int:
        """The element id stored at ``row`` (-1 for a free row)."""
        return int(self._element_ids[row])

    def rows_of(self, element_ids: Iterable[int]) -> npt.NDArray[np.intp]:
        """Interned rows of the given ids, in order (KeyError when absent)."""
        table = self._row_of
        return np.asarray([table[eid] for eid in element_ids], dtype=np.intp)

    def ids_at(self, rows: npt.NDArray[np.intp]) -> npt.NDArray[np.int64]:
        """Element ids at the given rows (vectorised gather)."""
        result: npt.NDArray[np.int64] = self._element_ids[rows]
        return result

    def acquire(self, element_id: int, timestamp: int) -> int:
        """Intern ``element_id``, allocating (or recycling) a row.

        A fresh row starts outside the window, with ``last_activity`` equal
        to the timestamp, an empty follower set and a zeroed profile row.
        Re-acquiring a live id refreshes its timestamp and returns the
        existing row without touching the rest of its state.
        """
        existing = self._row_of.get(element_id)
        if existing is not None:
            self._timestamps[existing] = int(timestamp)
            return existing
        if self._free_rows:
            row = self._free_rows.pop()
        else:
            if self._high_water >= self._capacity:
                self._grow()
            row = self._high_water
            self._high_water += 1
        self._element_ids[row] = int(element_id)
        self._timestamps[row] = int(timestamp)
        self._last_activity[row] = int(timestamp)
        self._row_of[element_id] = row
        return row

    def bulk_acquire(
        self, element_ids: List[int], timestamps: List[int]
    ) -> List[int]:
        """Intern a whole bucket of elements at once.

        When every id is new (the common streaming case) the column writes
        happen as one fancy-indexed assignment per array — recycled free
        rows first, then a fresh contiguous range — instead of one scalar
        write per element.  Buckets containing duplicates or already-live
        ids fall back to element-wise :meth:`acquire`.
        """
        row_of = self._row_of
        count = len(element_ids)
        if len(set(element_ids)) != count or any(
            eid in row_of for eid in element_ids
        ):
            return [
                self.acquire(eid, ts) for eid, ts in zip(element_ids, timestamps)
            ]
        free = self._free_rows
        take = min(len(free), count)
        rows = [free.pop() for _ in range(take)]
        remaining = count - take
        if remaining:
            while self._high_water + remaining > self._capacity:
                self._grow()
            rows.extend(range(self._high_water, self._high_water + remaining))
            self._high_water += remaining
        index = np.asarray(rows, dtype=np.intp)
        ids_arr = np.asarray(element_ids, dtype=np.int64)
        ts_arr = np.asarray(timestamps, dtype=np.int64)
        self._element_ids[index] = ids_arr
        self._timestamps[index] = ts_arr
        self._last_activity[index] = ts_arr
        # Free and never-used rows already hold the fresh-row defaults
        # (out of window, zero profile row, empty follower set).
        for eid, row in zip(element_ids, rows):
            row_of[eid] = row
        return rows

    def release(self, element_id: int) -> int:
        """Free the row of ``element_id`` and recycle it.

        The caller is responsible for having detached the row from every
        other row's follower set first (the window's expiry discipline
        guarantees it: an element is only released after it left ``W_t``,
        which removed it from its parents' follower sets).
        """
        row = self._row_of.pop(element_id)
        self._element_ids[row] = -1
        self._last_activity[row] = _NO_ACTIVITY
        self._in_window[row] = False
        self._profiles[row, :] = 0.0
        self._profile_set[row] = False
        self._followers[row].clear()
        self._free_rows.append(row)
        return row

    def clear(self) -> None:
        """Drop every row (used when restoring a checkpoint)."""
        self._element_ids[:] = -1
        self._last_activity[:] = _NO_ACTIVITY
        self._in_window[:] = False
        self._profiles[:, :] = 0.0
        self._profile_set[:] = False
        for followers in self._followers:
            followers.clear()
        self._row_of.clear()
        self._free_rows.clear()
        self._high_water = 0

    def required_capacity(self, extra_rows: int) -> int:
        """Row capacity sufficient for ``extra_rows`` further acquires.

        Acquires consume the free list before extending the high-water
        mark, so this is an exact upper bound; duplicates and already-live
        ids only make it looser.  The shm transport's workers call this
        *before* ingesting a bucket so a capacity miss is reported without
        having mutated any state.
        """
        return self._high_water + max(0, int(extra_rows) - len(self._free_rows))

    def adopt_columns(self, columns: Mapping[str, npt.NDArray]) -> None:
        """Swap in externally grown columns (shared-memory remap).

        The caller (the coordinator, via the grow handshake) guarantees the
        new arrays are at least as large as the current ones and that their
        prefix already holds the current column contents.  Interning state
        (row map, free list, high water) is untouched.
        """
        capacity = int(columns["ids"].shape[0])
        if capacity < self._capacity:
            raise ValueError(
                f"adopted capacity {capacity} below current {self._capacity}"
            )
        self._element_ids = columns["ids"]
        self._timestamps = columns["ts"]
        self._last_activity = columns["act"]
        self._in_window = columns["inw"]
        self._profiles = columns["prof"]
        self._profile_set = columns["pset"]
        self._followers.extend(set() for _ in range(capacity - self._capacity))
        self._capacity = capacity
        self._external_columns = True

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        if self._external_columns:
            raise StoreCapacityError(new_capacity)
        self._element_ids = self._extend_1d(self._element_ids, new_capacity, -1)
        self._timestamps = self._extend_1d(self._timestamps, new_capacity, 0)
        self._last_activity = self._extend_1d(
            self._last_activity, new_capacity, _NO_ACTIVITY
        )
        in_window = np.zeros(new_capacity, dtype=np.bool_)
        in_window[: self._capacity] = self._in_window
        self._in_window = in_window
        profile_set = np.zeros(new_capacity, dtype=np.bool_)
        profile_set[: self._capacity] = self._profile_set
        self._profile_set = profile_set
        profiles = np.zeros((new_capacity, self._num_topics), dtype=np.float64)
        profiles[: self._capacity, :] = self._profiles
        self._profiles = profiles
        self._followers.extend(set() for _ in range(new_capacity - self._capacity))
        self._capacity = new_capacity

    @staticmethod
    def _extend_1d(
        array: npt.NDArray[np.int64], capacity: int, fill: int
    ) -> npt.NDArray[np.int64]:
        grown: npt.NDArray[np.int64] = np.full(capacity, fill, dtype=np.int64)
        grown[: array.shape[0]] = array
        return grown

    # -- column access -----------------------------------------------------------

    def timestamp_of(self, row: int) -> int:
        """The posting time stored at ``row``."""
        return int(self._timestamps[row])

    def last_activity_of(self, row: int) -> int:
        """``t_e`` stored at ``row``."""
        return int(self._last_activity[row])

    def set_last_activity(self, row: int, time: int) -> None:
        """Overwrite ``t_e`` of ``row``."""
        self._last_activity[row] = int(time)

    def raise_last_activity(self, row: int, time: int) -> int:
        """``t_e ← max(t_e, time)``; returns the stored value."""
        current = self._last_activity[row]
        if time > current:
            self._last_activity[row] = int(time)
            return int(time)
        return int(current)

    def last_activity_slice(
        self, rows: npt.NDArray[np.intp]
    ) -> npt.NDArray[np.int64]:
        """``t_e`` of many rows as one array slice."""
        result: npt.NDArray[np.int64] = self._last_activity[rows]
        return result

    def set_in_window(self, row: int, member: bool) -> None:
        """Mark whether ``row`` is a current member of ``W_t``."""
        self._in_window[row] = bool(member)

    def set_in_window_many(self, rows: List[int], member: bool) -> None:
        """Mark many rows' ``W_t`` membership in one write."""
        self._in_window[np.asarray(rows, dtype=np.intp)] = bool(member)

    def in_window(self, row: int) -> bool:
        """Whether ``row`` is a current member of ``W_t``."""
        return bool(self._in_window[row])

    @property
    def window_count(self) -> int:
        """``|W_t|``: number of rows flagged as window members."""
        return int(self._in_window.sum())

    # -- profile matrix ----------------------------------------------------------

    @property
    def profile_matrix(self) -> npt.NDArray[np.float64]:
        """The full ``P[rows, z]`` matrix (index it with interned rows)."""
        return self._profiles

    def set_profile(self, row: int, probabilities: Dict[int, float]) -> None:
        """Store an element's thresholded topic probabilities at ``row``."""
        if self._profile_set[row]:
            # Fresh and recycled rows are already zeroed; only a re-profiled
            # row needs its previous entries wiped.
            self._profiles[row, :] = 0.0
        for topic, probability in probabilities.items():
            self._profiles[row, topic] = probability
        self._profile_set[row] = True

    def set_profiles_bulk(
        self, rows: List[int], probability_maps: List[Dict[int, float]]
    ) -> None:
        """Store a whole bucket of profiles with one fancy-indexed write.

        A bucket that re-profiles the same row twice (duplicate element
        ids) falls back to element-wise writes: fancy assignment would
        merge the two sparse profiles instead of replacing the first.
        """
        if len(set(rows)) != len(rows):
            for row, probabilities in zip(rows, probability_maps):
                self.set_profile(row, probabilities)
            return
        index = np.asarray(rows, dtype=np.intp)
        stale = index[self._profile_set[index]]
        if stale.size:
            self._profiles[stale, :] = 0.0
        flat_rows = np.asarray(
            [
                row
                for row, probabilities in zip(rows, probability_maps)
                for _ in probabilities
            ],
            dtype=np.intp,
        )
        if flat_rows.size:
            flat_topics = np.asarray(
                [
                    topic
                    for probabilities in probability_maps
                    for topic in probabilities
                ],
                dtype=np.intp,
            )
            flat_values = np.asarray(
                [
                    probability
                    for probabilities in probability_maps
                    for probability in probabilities.values()
                ],
                dtype=np.float64,
            )
            self._profiles[flat_rows, flat_topics] = flat_values
        self._profile_set[index] = True

    def has_profile(self, row: int) -> bool:
        """Whether :meth:`set_profile` was called for ``row``."""
        return bool(self._profile_set[row])

    # -- follower adjacency ------------------------------------------------------

    def add_follower(self, parent_row: int, follower_row: int) -> bool:
        """Record ``follower_row ∈ I_t(parent)``; True when newly added."""
        followers = self._followers[parent_row]
        if follower_row in followers:
            return False
        followers.add(follower_row)
        return True

    def discard_follower(self, parent_row: int, follower_row: int) -> bool:
        """Remove a follower edge; True when it existed."""
        followers = self._followers[parent_row]
        if follower_row not in followers:
            return False
        followers.discard(follower_row)
        return True

    def follower_count(self, row: int) -> int:
        """``|I_t(e)|`` of the element at ``row``."""
        return len(self._followers[row])

    def follower_rows(self, row: int) -> Tuple[int, ...]:
        """The follower rows of ``row`` (unordered)."""
        return tuple(self._followers[row])

    def follower_ids(self, row: int) -> Tuple[int, ...]:
        """The follower *element ids* of ``row`` (unordered)."""
        ids = self._element_ids
        return tuple(int(ids[follower]) for follower in self._followers[row])

    def followers_concat(
        self, rows: npt.NDArray[np.intp]
    ) -> Tuple[npt.NDArray[np.intp], npt.NDArray[np.intp]]:
        """Concatenated follower rows of ``rows`` plus per-row counts.

        The CSR-style primitive behind batched re-scoring and array-slice
        export: ``indices`` holds every follower row, segment ``j`` covering
        ``indices[counts[:j].sum() : counts[:j+1].sum()]``.
        """
        counts = np.empty(rows.shape[0], dtype=np.intp)
        chunks: List[List[int]] = []
        followers = self._followers
        for position, row in enumerate(rows.tolist()):
            member_rows = list(followers[row])
            counts[position] = len(member_rows)
            chunks.append(member_rows)
        if chunks:
            flat = [follower for chunk in chunks for follower in chunk]
        else:
            flat = []
        indices = np.asarray(flat, dtype=np.intp)
        return indices, counts

    def followers_csr(
        self, rows: npt.NDArray[np.intp]
    ) -> Tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """``(indptr, follower_element_ids)`` CSR slices for ``rows``.

        Follower ids within a segment are sorted so the export is
        deterministic (set iteration order is not).
        """
        indptr = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        segments: List[List[int]] = []
        ids = self._element_ids
        followers = self._followers
        for position, row in enumerate(rows.tolist()):
            segment = sorted(int(ids[follower]) for follower in followers[row])
            segments.append(segment)
            indptr[position + 1] = indptr[position] + len(segment)
        flat = [element_id for segment in segments for element_id in segment]
        return indptr, np.asarray(flat, dtype=np.int64)

    # -- vectorised scans ---------------------------------------------------------

    def live_rows(self) -> npt.NDArray[np.intp]:
        """Rows currently interned, ascending."""
        result: npt.NDArray[np.intp] = np.nonzero(
            self._element_ids[: self._high_water] >= 0
        )[0]
        return result

    def window_member_rows(self) -> npt.NDArray[np.intp]:
        """Rows flagged as ``W_t`` members, ascending."""
        result: npt.NDArray[np.intp] = np.nonzero(self._in_window[: self._high_water])[0]
        return result

    def expired_window_rows(self, window_start: int) -> npt.NDArray[np.intp]:
        """Window-member rows whose posting time predates ``window_start``."""
        limit = self._high_water
        mask = self._in_window[:limit] & (self._timestamps[:limit] < window_start)
        result: npt.NDArray[np.intp] = np.nonzero(mask)[0]
        return result

    def inactive_rows(self, window_start: int) -> npt.NDArray[np.intp]:
        """Live rows whose last activity predates ``window_start``."""
        limit = self._high_water
        mask = (self._element_ids[:limit] >= 0) & (
            self._last_activity[:limit] < window_start
        )
        result: npt.NDArray[np.intp] = np.nonzero(mask)[0]
        return result

    def window_scan_rows(
        self, window_start: int
    ) -> Tuple[npt.NDArray[np.intp], npt.NDArray[np.intp]]:
        """Both window-advance row sets in one fused column scan.

        Returns ``(expired, inactive)`` — the same rows
        :meth:`expired_window_rows` and :meth:`inactive_rows` yield
        individually, computed by the ``window_scan`` kernel in a single
        pass over the columns (one loop under Numba, two masks in the
        NumPy reference).
        """
        limit = self._high_water
        result: Tuple[npt.NDArray[np.intp], npt.NDArray[np.intp]] = _WINDOW_SCAN(
            self._element_ids[:limit],
            self._in_window[:limit],
            self._timestamps[:limit],
            self._last_activity[:limit],
            int(window_start),
        )
        return result

    # -- topic epochs -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current (monotonically increasing) change epoch."""
        return self._epoch

    def mark_topics_dirty(self, topics: Iterable[int]) -> None:
        """Stamp the given topics with a fresh epoch.

        Called by the ranked-list index whenever a topic's list changes;
        the serving layer's incremental scheduler reads the stamps through
        :meth:`dirty_topics_since` instead of draining a dirty set.
        """
        topic_list = list(topics)
        if not topic_list:
            return
        self._epoch += 1
        self._topic_epochs[topic_list] = self._epoch

    def dirty_topics_since(self, epoch: int) -> Tuple[int, ...]:
        """Topics stamped after ``epoch``, ascending."""
        dirty = np.nonzero(self._topic_epochs > epoch)[0]
        return tuple(int(topic) for topic in dirty)

    # -- invariants ---------------------------------------------------------------

    def validate(self) -> bool:
        """Check interning/adjacency invariants (used by property tests)."""
        for element_id, row in self._row_of.items():
            if int(self._element_ids[row]) != element_id:
                return False
        live = set(self._row_of.values())
        if len(live) != len(self._row_of):
            return False
        for row in self._free_rows:
            if row in live or int(self._element_ids[row]) != -1:
                return False
        for row in range(self._high_water):
            followers = self._followers[row]
            if row not in live and followers:
                return False
            for follower_row in followers:
                if follower_row not in live or not self._in_window[follower_row]:
                    return False
        return True
