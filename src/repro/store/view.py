"""The ``StateView`` protocol: the window-state surface consumers rely on.

The stream processor, the ranked-list maintenance, the scatter-gather
export and the snapshot builders never depend on a concrete window class —
they are typed against :class:`StateView`, which both the object-backed
:class:`~repro.core.window.ActiveWindow` and the array-backed
:class:`~repro.store.window.ColumnarWindow` satisfy.  Swapping the state
representation (``ProcessorConfig.store``) therefore changes no consumer
code.

:class:`TopicEpochSink` is the narrow write-side protocol the ranked-list
index uses to stamp topic change epochs onto the columnar store without
importing it.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.core.element import SocialElement


@runtime_checkable
class TopicEpochSink(Protocol):
    """Anything that can receive per-topic change stamps."""

    def mark_topics_dirty(self, topics: Iterable[int]) -> None:
        """Record that the given topics' ranked lists changed."""
        ...


@runtime_checkable
class StateView(Protocol):
    """The full sliding-window state surface of Algorithm 1."""

    # -- configuration ----------------------------------------------------------

    @property
    def window_length(self) -> int:
        """The window length ``T``."""
        ...

    @property
    def current_time(self) -> Optional[int]:
        """The time of the last advance (None before any)."""
        ...

    @property
    def window_start(self) -> Optional[int]:
        """The earliest in-window timestamp, ``t − T + 1``."""
        ...

    # -- updates ----------------------------------------------------------------

    def insert(self, element: SocialElement) -> Tuple[int, ...]:
        """Insert an arrival; returns the touched (referenced) parent ids."""
        ...

    def insert_bucket(
        self, elements: Iterable[SocialElement]
    ) -> Dict[int, Tuple[int, ...]]:
        """Insert a bucket; returns ``{element_id: touched_parent_ids}``."""
        ...

    def advance_to(self, time: int) -> Tuple[int, ...]:
        """Advance to ``time``; returns the ids expired from the active set."""
        ...

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int: ...

    def __contains__(self, element_id: int) -> bool: ...

    def __iter__(self) -> Iterator[SocialElement]: ...

    def get(self, element_id: int) -> SocialElement:
        """The active element with the given id (KeyError when absent)."""
        ...

    def active_ids(self) -> Tuple[int, ...]:
        """Ids of every active element (``A_t``)."""
        ...

    def active_elements(self) -> Tuple[SocialElement, ...]:
        """Every active element (``A_t``)."""
        ...

    def window_ids(self) -> Tuple[int, ...]:
        """Ids of the current ``W_t`` members."""
        ...

    def in_window(self, element_id: int) -> bool:
        """Whether the element is currently a member of ``W_t``."""
        ...

    def take_touched_by_expiry(self) -> Tuple[int, ...]:
        """Drain the set of elements whose follower set shrank by expiry."""
        ...

    def followers_of(self, element_id: int) -> Tuple[int, ...]:
        """``I_t(e)``: ids of in-window elements referencing the element."""
        ...

    def followers_snapshot(self) -> Dict[int, Tuple[int, ...]]:
        """``I_t(e)`` for every active element, in one bulk pass."""
        ...

    def follower_count(self, element_id: int) -> int:
        """``|I_t(e)|``."""
        ...

    def last_activity(self, element_id: int) -> int:
        """``t_e`` (KeyError when inactive)."""
        ...

    @property
    def active_count(self) -> int:
        """``n_t = |A_t|``."""
        ...

    @property
    def window_count(self) -> int:
        """``|W_t|``."""
        ...

    # -- checkpoint state -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """A serialisable snapshot of the full window state."""
        ...

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Replace the window contents with a :meth:`state_dict` snapshot."""
        ...

    def validate(self) -> bool:
        """Check internal invariants (used by property-based tests)."""
        ...
