"""Dual-format (de)serialisation helpers for checkpointed state.

The v1 checkpoint format stores numeric state as plain JSON lists (id
lists, ``[id, time]`` pairs, per-parent follower lists).  The v2 format
stores the same state as NumPy arrays — id vectors, ``(N, 2)`` pair
matrices and CSR ``(parents, indptr, followers)`` triples — which the
checkpoint layer extracts into an ``.npz`` member instead of JSON.

Every decoder here accepts *both* shapes, so any window / ranked-list
implementation can restore any checkpoint vintage: an array-backed
(columnar) engine loads a v1 JSON checkpoint and an object-backed engine
loads a v2 array checkpoint, without either knowing which writer produced
it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple, Union

import numpy as np
import numpy.typing as npt

#: JSON form of a follower table: ``[[parent_id, [follower_ids...]], ...]``.
FollowerPairs = List[List[object]]
#: Array form of a follower table: CSR ``{"parents", "indptr", "followers"}``.
FollowerCSR = Mapping[str, "npt.NDArray[np.int64]"]
FollowersState = Union[FollowerPairs, FollowerCSR]


def encode_id_array(ids: Iterable[int]) -> npt.NDArray[np.int64]:
    """Ascending id vector (the array form of a sorted id list)."""
    return np.asarray(sorted(int(i) for i in ids), dtype=np.int64)


def decode_id_list(value: object) -> List[int]:
    """Id list from either a JSON list or an id vector."""
    if isinstance(value, np.ndarray):
        return [int(i) for i in value.tolist()]
    assert isinstance(value, (list, tuple))
    return [int(i) for i in value]


def encode_pairs(pairs: Mapping[int, int]) -> npt.NDArray[np.int64]:
    """``(N, 2)`` matrix of ``(id, value)`` rows, ascending by id."""
    ordered = sorted(pairs.items())
    if not ordered:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(ordered, dtype=np.int64)


def decode_pairs(value: object) -> List[Tuple[int, int]]:
    """``(id, value)`` pairs from either a JSON pair list or a matrix."""
    if isinstance(value, np.ndarray):
        return [(int(row[0]), int(row[1])) for row in value.tolist()]
    assert isinstance(value, (list, tuple))
    return [(int(key), int(item)) for key, item in value]


def encode_followers_csr(
    followers: Mapping[int, Iterable[int]]
) -> Dict[str, npt.NDArray[np.int64]]:
    """CSR-encode a follower table (parents ascending, segments sorted)."""
    parents = sorted(followers)
    indptr = np.zeros(len(parents) + 1, dtype=np.int64)
    flat: List[int] = []
    for position, parent in enumerate(parents):
        segment = sorted(int(f) for f in followers[parent])
        flat.extend(segment)
        indptr[position + 1] = indptr[position] + len(segment)
    return {
        "parents": np.asarray(parents, dtype=np.int64),
        "indptr": indptr,
        "followers": np.asarray(flat, dtype=np.int64),
    }


def decode_followers(value: object) -> Dict[int, Set[int]]:
    """Follower table from either JSON pair lists or a CSR triple."""
    if isinstance(value, Mapping):
        parents = np.asarray(value["parents"], dtype=np.int64)
        indptr = np.asarray(value["indptr"], dtype=np.int64)
        flat = np.asarray(value["followers"], dtype=np.int64)
        table: Dict[int, Set[int]] = {}
        for position, parent in enumerate(parents.tolist()):
            start, stop = int(indptr[position]), int(indptr[position + 1])
            table[int(parent)] = {int(f) for f in flat[start:stop].tolist()}
        return table
    assert isinstance(value, (list, tuple))
    return {
        int(parent): {int(f) for f in follower_ids}
        for parent, follower_ids in value
    }
