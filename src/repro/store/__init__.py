"""repro.store — the columnar element state layer.

A :class:`ElementStore` re-encodes the hot sliding-window state
(timestamps, last-activity ``t_e``, window membership, the thresholded
topic-profile matrix ``P[rows, z]``, follower adjacency) as contiguous
NumPy arrays over interned rows with free-row recycling;
:class:`ColumnarWindow` implements Algorithm 1's window semantics on top
of it, and the :class:`StateView` protocol is the surface every consumer
(processor, ranked lists, shard export, snapshot builders) is typed
against — so the object-backed and array-backed representations are
drop-in interchangeable via ``ProcessorConfig(store=...)``.
"""

from repro.store.codec import (
    decode_followers,
    decode_id_list,
    decode_pairs,
    encode_followers_csr,
    encode_id_array,
    encode_pairs,
)
from repro.store.store import ElementStore, StoreCapacityError
from repro.store.view import StateView, TopicEpochSink
from repro.store.window import ColumnarWindow

#: Accepted ``ProcessorConfig.store`` values.
STORE_CHOICES = ("columnar", "objects")

__all__ = [
    "STORE_CHOICES",
    "ColumnarWindow",
    "ElementStore",
    "StateView",
    "StoreCapacityError",
    "TopicEpochSink",
    "decode_followers",
    "decode_id_list",
    "decode_pairs",
    "encode_followers_csr",
    "encode_id_array",
    "encode_pairs",
]
