"""repro — Semantic and Influence aware k-Representative queries over social streams.

A full reproduction of Wang, Li and Tan, *"Semantic and Influence aware
k-Representative Queries over Social Streams"* (EDBT 2019): the k-SIR query
model, the MTTS and MTTD index-assisted approximation algorithms, every
baseline used in the paper's evaluation, the topic-model substrate, a
synthetic social-stream generator standing in for the paper's proprietary
crawls, and an experiment harness regenerating each table and figure.

Quickstart
----------

>>> from repro import (
...     EngineConfig, KSIREngine, ProcessorConfig, SyntheticStreamGenerator,
... )
>>> generator = SyntheticStreamGenerator.from_profile("twitter-small", seed=7)
>>> dataset = generator.generate()
>>> engine = KSIREngine(dataset.topic_model, EngineConfig(
...     processor=ProcessorConfig(window_length=6 * 3600, bucket_length=900)))
>>> engine.process_stream(dataset.stream)
>>> result = engine.query(dataset.make_query(k=5, keywords=["music"]))
>>> len(result) <= 5
True

The same engine runs sharded (``EngineConfig(backend="sharded")``) or as
a standing-query service (``backend="service"``), and can be persisted
mid-stream with ``engine.save(path)`` / ``KSIREngine.load(path)``.
"""

from repro.api import (
    CheckpointError,
    EngineConfig,
    ExecutionBackend,
    InferenceConfig,
    KSIREngine,
    LocalBackend,
    ServiceBackend,
    ServiceConfig,
    ShardedBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    ShardPlanner,
    ShardWorker,
    TransportBackend,
    register_transport,
    transport_names,
    verify_equivalence,
)
from repro.core.algorithms import (
    CELF,
    GreedySelection,
    MTTD,
    MTTS,
    SieveStreaming,
    TopKRepresentative,
    make_algorithm,
)
from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery, QueryResult
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective, ScoringConfig, ScoringContext
from repro.core.stream import SocialStream
from repro.core.window import ActiveWindow
from repro.store import ColumnarWindow, ElementStore, StateView
from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile
from repro.datasets.synthetic import SyntheticDataset, SyntheticStreamGenerator
from repro.service import (
    IncrementalScheduler,
    QueryRegistry,
    ServiceEngine,
    ServiceMetrics,
    SnapshotCache,
    StandingQuery,
    StandingResult,
)
from repro.streams import (
    StreamConfig,
    StreamIngestor,
    StreamMetrics,
    StreamSource,
    WatermarkTracker,
    WindowPolicy,
    create_source,
    inject_disorder,
    register_source,
    source_names,
)
from repro.topics.btm import BitermTopicModel
from repro.topics.inference import TopicInferencer, infer_query_vector
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.model import MatrixTopicModel, TopicModel
from repro.topics.preprocess import Preprocessor, tokenize
from repro.topics.vocabulary import Vocabulary

__version__ = "1.0.0"

__all__ = [
    "ActiveWindow",
    "BitermTopicModel",
    "CELF",
    "CheckpointError",
    "ClusterConfig",
    "ClusterCoordinator",
    "ColumnarWindow",
    "ElementStore",
    "StateView",
    "EngineConfig",
    "ExecutionBackend",
    "InferenceConfig",
    "KSIREngine",
    "LocalBackend",
    "ServiceBackend",
    "ServiceConfig",
    "ShardedBackend",
    "TransportBackend",
    "backend_names",
    "create_backend",
    "register_backend",
    "register_transport",
    "transport_names",
    "DATASET_PROFILES",
    "DatasetProfile",
    "GreedySelection",
    "KSIRObjective",
    "KSIRProcessor",
    "KSIRQuery",
    "LatentDirichletAllocation",
    "MatrixTopicModel",
    "MTTD",
    "MTTS",
    "IncrementalScheduler",
    "Preprocessor",
    "ProcessorConfig",
    "QueryRegistry",
    "QueryResult",
    "RankedListIndex",
    "ScoringConfig",
    "ScoringContext",
    "ServiceEngine",
    "ServiceMetrics",
    "ShardPlanner",
    "ShardWorker",
    "SieveStreaming",
    "SnapshotCache",
    "StandingQuery",
    "StandingResult",
    "SocialElement",
    "SocialStream",
    "StreamConfig",
    "StreamIngestor",
    "StreamMetrics",
    "StreamSource",
    "SyntheticDataset",
    "SyntheticStreamGenerator",
    "TopKRepresentative",
    "TopicInferencer",
    "TopicModel",
    "Vocabulary",
    "WatermarkTracker",
    "WindowPolicy",
    "create_source",
    "infer_query_vector",
    "inject_disorder",
    "make_algorithm",
    "register_source",
    "source_names",
    "tokenize",
    "verify_equivalence",
    "__version__",
]
