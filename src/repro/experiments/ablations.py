"""Ablation studies for the design choices called out in DESIGN.md §6.

* :func:`ranked_list_ablation` — the bisect-backed sorted ranked list vs a
  naive "re-sort the whole list on every change" maintenance strategy.
  The paper's Algorithm 1 assumes an order-maintaining structure; this
  ablation quantifies what that structure buys during stream ingestion.
* :func:`lazy_buffer_ablation` — MTTD's lazy max-heap candidate buffer vs a
  naive variant that rescans the whole buffer to find the best cached gain
  at every step.  Both return identical selections (the selection rule is
  the same); the ablation isolates the data-structure cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.algorithms.base import KSIRAlgorithm, SelectionOutcome
from repro.core.algorithms.mttd import MTTD
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective
from repro.experiments.config import DEFAULT_EFFICIENCY_CONFIG, EfficiencyConfig
from repro.experiments.runner import EfficiencyExperiment, load_dataset, prepare_processor
from repro.utils.sorted_list import DescendingSortedList


@dataclass
class AblationResult:
    """Outcome of one ablation comparison."""

    name: str
    baseline_label: str
    variant_label: str
    baseline_value: float
    variant_value: float
    unit: str

    @property
    def speedup(self) -> float:
        """baseline / variant (``> 1`` means the variant is slower)."""
        if self.variant_value <= 0:
            return float("inf")
        return self.baseline_value / self.variant_value

    def render(self) -> str:
        """One-line summary of the comparison."""
        return (
            f"{self.name}: {self.baseline_label}={self.baseline_value:.4f}{self.unit} "
            f"vs {self.variant_label}={self.variant_value:.4f}{self.unit} "
            f"(ratio {self.speedup:.2f}x)"
        )


# ---------------------------------------------------------------------------
# Ranked-list maintenance ablation
# ---------------------------------------------------------------------------


class _ResortRankedList:
    """A naive ranked list that fully re-sorts its entries on every change."""

    def __init__(self) -> None:
        self._scores: Dict[int, float] = {}
        self._ordered: List[Tuple[int, float]] = []

    def insert(self, key: int, score: float) -> None:
        self._scores[key] = score
        self._resort()

    def update(self, key: int, score: float) -> None:
        self.insert(key, score)

    def discard(self, key: int) -> None:
        if key in self._scores:
            del self._scores[key]
            self._resort()

    def _resort(self) -> None:
        self._ordered = sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))

    def items(self) -> List[Tuple[int, float]]:
        return list(self._ordered)


def _replay_maintenance(structure_factory, operations: Sequence[Tuple[str, int, float]]) -> float:
    """Replay a recorded insert/update/remove trace and return elapsed seconds."""
    structure = structure_factory()
    start = time.perf_counter()
    for action, key, score in operations:
        if action == "insert":
            structure.insert(key, score)
        elif action == "update":
            structure.update(key, score)
        else:
            structure.discard(key)
    return time.perf_counter() - start


def ranked_list_ablation(
    dataset_name: str = "twitter-small",
    seed: int = DEFAULT_EFFICIENCY_CONFIG.seed,
    max_operations: int = 20000,
) -> AblationResult:
    """Compare sorted-list maintenance against naive re-sorting.

    The operation trace is derived from the dataset's stream: one insert per
    element/topic pair, one update per reference, one removal per expiry,
    replayed against both structures.
    """
    dataset = load_dataset(dataset_name, seed=seed)
    operations: List[Tuple[str, int, float]] = []
    alive: Dict[int, float] = {}
    for element in dataset.stream:
        if len(operations) >= max_operations:
            break
        score = float(len(element.tokens))
        operations.append(("insert", element.element_id, score))
        alive[element.element_id] = score
        for parent_id in element.references:
            if parent_id in alive:
                alive[parent_id] += 1.0
                operations.append(("update", parent_id, alive[parent_id]))
        if len(alive) > 2000:
            victim = next(iter(alive))
            del alive[victim]
            operations.append(("remove", victim, 0.0))

    naive_seconds = _replay_maintenance(_ResortRankedList, operations)
    sorted_seconds = _replay_maintenance(DescendingSortedList, operations)
    return AblationResult(
        name=f"ranked-list maintenance ({dataset_name}, {len(operations)} ops)",
        baseline_label="naive-resort",
        variant_label="bisect-sorted-list",
        baseline_value=naive_seconds * 1000.0,
        variant_value=sorted_seconds * 1000.0,
        unit="ms",
    )


# ---------------------------------------------------------------------------
# MTTD lazy-buffer ablation
# ---------------------------------------------------------------------------


class _ScanBufferMTTD(KSIRAlgorithm):
    """MTTD variant whose buffer is a plain dict scanned linearly each step."""

    name = "mttd-scan-buffer"
    requires_index = True

    def __init__(self, epsilon: float = 0.1) -> None:
        self.epsilon = float(epsilon)

    def _select(
        self,
        objective: KSIRObjective,
        k: int,
        index: Optional[RankedListIndex],
    ) -> SelectionOutcome:
        assert index is not None
        traversal = index.traversal(objective.query_vector)
        buffer: Dict[int, float] = {}
        state = objective.new_state()
        tau = traversal.upper_bound()
        termination = 0.0
        while tau >= termination and tau > 0.0:
            while traversal.upper_bound() >= tau:
                item = traversal.pop()
                if item is None:
                    break
                element_id, _stored = item
                score = objective.singleton_score(element_id)
                if score > 0.0:
                    buffer[element_id] = score
            while buffer:
                element_id = max(buffer, key=lambda eid: (buffer[eid], -eid))
                if buffer[element_id] < tau:
                    break
                cached = buffer.pop(element_id)
                del cached
                gain = objective.marginal_gain(element_id, state)
                if gain >= tau:
                    objective.add(element_id, state)
                    if len(state.selected) >= k:
                        return SelectionOutcome(
                            tuple(state.selected), state.value,
                            evaluated_elements=objective.evaluated_elements,
                        )
                elif gain > 0.0:
                    buffer[element_id] = gain
            termination = state.value * self.epsilon / k
            tau *= 1.0 - self.epsilon
            if traversal.exhausted() and not buffer:
                break
        return SelectionOutcome(
            tuple(state.selected), state.value,
            evaluated_elements=objective.evaluated_elements,
        )


def lazy_buffer_ablation(
    dataset_name: str = "twitter-small",
    config: Optional[EfficiencyConfig] = None,
    num_queries: int = 10,
) -> AblationResult:
    """Compare MTTD's lazy-heap buffer against a linear-scan buffer."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    scoring = config.scoring_for(dataset_name)
    dataset, processor = prepare_processor(
        dataset_name,
        seed=config.seed,
        window_length=config.window_length,
        bucket_length=config.bucket_length,
        lambda_weight=scoring.lambda_weight,
        eta=scoring.eta,
        replay_fraction=config.replay_fraction,
    )
    experiment = EfficiencyExperiment(dataset, processor, seed=config.seed)
    workload = experiment.make_workload(num_queries, config.k)
    lazy_runs = experiment.run([MTTD(epsilon=config.epsilon)], workload, k=config.k)
    scan_runs = experiment.run([_ScanBufferMTTD(epsilon=config.epsilon)], workload, k=config.k)
    return AblationResult(
        name=f"MTTD candidate buffer ({dataset_name}, {num_queries} queries)",
        baseline_label="linear-scan-buffer",
        variant_label="lazy-heap-buffer",
        baseline_value=scan_runs["mttd-scan-buffer"].mean_time_ms,
        variant_value=lazy_runs["mttd"].mean_time_ms,
        unit="ms/query",
    )
