"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints the same rows/series the paper reports; these
helpers format them as aligned monospace tables so ``pytest benchmarks/ -s``
output is directly readable and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or (abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an aligned text table with optional title."""
    formatted_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in formatted_rows:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))

    def format_line(cells: Sequence[str]) -> str:
        padded = [
            str(cells[index]).ljust(widths[index]) if index < len(cells) else " " * widths[index]
            for index in range(columns)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_line(list(headers)))
    lines.append(separator)
    for row in formatted_rows:
        lines.append(format_line(row))
    lines.append(separator)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    title: str = "",
    precision: int = 4,
) -> str:
    """Render one figure panel: x values as columns, one row per series."""
    headers = [x_label] + [_format_cell(x, precision) for x in x_values]
    rows = []
    for name in sorted(series):
        rows.append([name] + [value for value in series[name]])
    return render_table(headers, rows, title=title, precision=precision)


def render_figure(
    figure_title: str,
    x_label: str,
    x_values: Sequence[Number],
    panels: Mapping[str, Mapping[str, Sequence[Number]]],
    precision: int = 4,
) -> str:
    """Render a multi-panel figure (one panel per dataset, as in the paper)."""
    blocks = [figure_title]
    for panel_name in sorted(panels):
        blocks.append(
            render_series(
                x_label,
                x_values,
                panels[panel_name],
                title=f"[{panel_name}]",
                precision=precision,
            )
        )
    return "\n\n".join(blocks)
