"""Experiment parameters: the paper's Table 4 scaled to synthetic streams.

The paper's defaults are ``ε = 0.1``, ``k = 10``, ``z = 50`` topics and a
``T = 24 h`` window over streams of 1.6–20 M elements, with ``λ = 0.5`` and
``η ∈ {20, 200}``, bucket length 15 minutes.  The synthetic ``-small``
profiles span two days of stream time with a few thousand elements, so the
scaled defaults below keep every experiment proportionally identical (same
ε / k sweeps, same λ/η, window lengths expressed in hours of stream time)
while finishing in minutes on a laptop.  Every parameter can be overridden
when constructing a config.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

from repro.core.scoring import ScoringConfig

#: Datasets used by default in every experiment (Table 3's three corpora).
DEFAULT_DATASETS: Tuple[str, ...] = ("aminer-small", "reddit-small", "twitter-small")

#: Per-dataset η.  η's role (Eq. 2) is to bring the influence score to the
#: same range as the semantic score.  The paper uses 20 for AMiner/Reddit and
#: 200 for Twitter because its 24-hour windows contain millions of elements
#: and popular posts collect hundreds of references; the laptop-scale
#: synthetic windows contain thousands of elements and popular posts collect
#: a handful of references, so proportionally smaller η values restore the
#: same semantic/influence balance.  The full-size profiles keep values
#: closer to the paper's.
DATASET_ETA: Dict[str, float] = {
    "aminer": 20.0,
    "aminer-small": 1.0,
    "reddit": 10.0,
    "reddit-small": 2.0,
    "twitter": 20.0,
    "twitter-small": 1.5,
    "tiny": 1.0,
}


@dataclass(frozen=True)
class SweepValues:
    """The x-axis values of the paper's parameter sweeps (Figures 7–14)."""

    epsilon: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    k: Tuple[int, ...] = (5, 10, 15, 20, 25)
    #: Number of topics; the paper sweeps 50–250, the scaled default sweeps
    #: 10–50 (the trend — fewer elements per list as z grows — is identical).
    num_topics: Tuple[int, ...] = (10, 20, 30, 40, 50)
    #: Window lengths in hours (same values as the paper).
    window_hours: Tuple[int, ...] = (6, 12, 18, 24, 30)


@dataclass(frozen=True)
class EfficiencyConfig:
    """Configuration of the efficiency / scalability experiments (Section 5.3)."""

    datasets: Tuple[str, ...] = DEFAULT_DATASETS
    seed: int = 2019
    k: int = 10
    epsilon: float = 0.1
    num_queries: int = 20
    window_hours: int = 24
    bucket_minutes: int = 15
    lambda_weight: float = 0.5
    #: Fraction of the stream replayed before queries are issued.
    replay_fraction: float = 0.75
    sweeps: SweepValues = field(default_factory=SweepValues)

    def scoring_for(self, dataset: str) -> ScoringConfig:
        """The scoring configuration (λ, η) for one dataset."""
        return ScoringConfig(
            lambda_weight=self.lambda_weight,
            eta=DATASET_ETA.get(dataset, 20.0),
        )

    @property
    def window_length(self) -> int:
        """Window length in seconds."""
        return self.window_hours * 3600

    @property
    def bucket_length(self) -> int:
        """Bucket length in seconds."""
        return self.bucket_minutes * 60

    def with_overrides(self, **kwargs) -> "EfficiencyConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class EffectivenessConfig:
    """Configuration of the effectiveness experiments (Section 5.2)."""

    datasets: Tuple[str, ...] = DEFAULT_DATASETS
    seed: int = 2019
    #: Result size of the user study (the paper shows 5 elements per query).
    user_study_k: int = 5
    #: Result size of the quantitative comparison (the paper's default k).
    quantitative_k: int = 10
    num_user_study_queries: int = 20
    num_quantitative_queries: int = 30
    evaluators_per_query: int = 3
    evaluator_noise: float = 0.08
    window_hours: int = 24
    bucket_minutes: int = 15
    lambda_weight: float = 0.5
    replay_fraction: float = 0.75
    epsilon: float = 0.1

    def scoring_for(self, dataset: str) -> ScoringConfig:
        """The scoring configuration (λ, η) for one dataset."""
        return ScoringConfig(
            lambda_weight=self.lambda_weight,
            eta=DATASET_ETA.get(dataset, 20.0),
        )

    @property
    def window_length(self) -> int:
        """Window length in seconds."""
        return self.window_hours * 3600

    @property
    def bucket_length(self) -> int:
        """Bucket length in seconds."""
        return self.bucket_minutes * 60

    def with_overrides(self, **kwargs) -> "EffectivenessConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_EFFICIENCY_CONFIG = EfficiencyConfig()
"""Defaults used by the efficiency benchmarks."""

DEFAULT_EFFECTIVENESS_CONFIG = EffectivenessConfig()
"""Defaults used by the effectiveness benchmarks."""


def quick_efficiency_config(num_queries: int = 6, datasets: Sequence[str] = ("twitter-small",)) -> EfficiencyConfig:
    """A reduced config for smoke tests and CI-sized benchmark runs."""
    return EfficiencyConfig(datasets=tuple(datasets), num_queries=num_queries)


def quick_effectiveness_config(datasets: Sequence[str] = ("twitter-small",)) -> EffectivenessConfig:
    """A reduced effectiveness config for smoke tests."""
    return EffectivenessConfig(
        datasets=tuple(datasets),
        num_user_study_queries=6,
        num_quantitative_queries=8,
    )
