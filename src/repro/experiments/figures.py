"""Regenerating the paper's figures (efficiency and scalability sweeps).

Each ``figureN_*`` function reproduces one figure of Section 5.3: it sweeps
the figure's x-axis parameter over every dataset, runs the relevant
algorithms on a shared query workload, and returns a :class:`FigureResult`
whose panels hold one series per algorithm — exactly the series the paper
plots.  Absolute milliseconds differ from the paper's Java/Xeon testbed;
the reported *shape* (orderings, speed-up factors, monotone trends) is what
EXPERIMENTS.md compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import DEFAULT_EFFICIENCY_CONFIG, EfficiencyConfig
from repro.experiments.reporting import render_figure
from repro.experiments.runner import EfficiencyExperiment, prepare_processor

#: The five methods of Figures 9, 11, 12 and 13, in the paper's legend order.
EFFICIENCY_METHODS: Sequence[str] = ("celf", "mttd", "mtts", "topk", "sieve")

#: The two index-based methods of Figures 7, 8 and 10.
INDEXED_METHODS: Sequence[str] = ("mttd", "mtts")


@dataclass
class FigureResult:
    """One reproduced figure: per-dataset panels of per-method series."""

    name: str
    x_label: str
    x_values: List[float]
    panels: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    notes: Dict[str, str] = field(default_factory=dict)

    def render(self, precision: int = 4) -> str:
        """Aligned text rendering of every panel."""
        text = render_figure(self.name, self.x_label, self.x_values, self.panels, precision)
        if self.notes:
            note_lines = [f"  {key}: {value}" for key, value in sorted(self.notes.items())]
            text = text + "\n" + "\n".join(note_lines)
        return text

    def series(self, dataset: str, method: str) -> List[float]:
        """One method's series in one dataset panel."""
        return self.panels[dataset][method]


def _experiment_for(
    dataset_name: str,
    config: EfficiencyConfig,
    num_topics: Optional[int] = None,
    window_length: Optional[int] = None,
) -> EfficiencyExperiment:
    scoring = config.scoring_for(dataset_name)
    dataset, processor = prepare_processor(
        dataset_name,
        seed=config.seed,
        num_topics=num_topics,
        window_length=window_length or config.window_length,
        bucket_length=config.bucket_length,
        lambda_weight=scoring.lambda_weight,
        eta=scoring.eta,
        replay_fraction=config.replay_fraction,
    )
    return EfficiencyExperiment(dataset, processor, seed=config.seed)


# ---------------------------------------------------------------------------
# Figures 7 and 8 — effect of epsilon
# ---------------------------------------------------------------------------


def figure7_time_vs_epsilon(
    config: Optional[EfficiencyConfig] = None,
    num_queries: Optional[int] = None,
) -> FigureResult:
    """Figure 7: MTTS/MTTD query time (ms) as ε varies."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    queries_per_point = num_queries or config.num_queries
    epsilons = list(config.sweeps.epsilon)
    figure = FigureResult(
        name="Figure 7 — query time (ms) vs epsilon",
        x_label="epsilon",
        x_values=[float(e) for e in epsilons],
    )
    for dataset_name in config.datasets:
        experiment = _experiment_for(dataset_name, config)
        workload = experiment.make_workload(queries_per_point, config.k)
        panel: Dict[str, List[float]] = {method: [] for method in INDEXED_METHODS}
        for epsilon in epsilons:
            runs = experiment.run(INDEXED_METHODS, workload, epsilon=epsilon, k=config.k)
            for method in INDEXED_METHODS:
                panel[method].append(runs[method].mean_time_ms)
        figure.panels[dataset_name] = panel
    return figure


def figure8_score_vs_epsilon(
    config: Optional[EfficiencyConfig] = None,
    num_queries: Optional[int] = None,
) -> FigureResult:
    """Figure 8: MTTS/MTTD result score as ε varies (CELF shown for reference)."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    queries_per_point = num_queries or config.num_queries
    epsilons = list(config.sweeps.epsilon)
    figure = FigureResult(
        name="Figure 8 — representativeness score vs epsilon",
        x_label="epsilon",
        x_values=[float(e) for e in epsilons],
    )
    for dataset_name in config.datasets:
        experiment = _experiment_for(dataset_name, config)
        workload = experiment.make_workload(queries_per_point, config.k)
        celf_runs = experiment.run(["celf"], workload, k=config.k)
        celf_score = celf_runs["celf"].mean_score
        panel: Dict[str, List[float]] = {method: [] for method in INDEXED_METHODS}
        panel["celf"] = [celf_score for _ in epsilons]
        for epsilon in epsilons:
            runs = experiment.run(INDEXED_METHODS, workload, epsilon=epsilon, k=config.k)
            for method in INDEXED_METHODS:
                panel[method].append(runs[method].mean_score)
        figure.panels[dataset_name] = panel
    return figure


# ---------------------------------------------------------------------------
# Figures 9, 10, 11 — effect of k
# ---------------------------------------------------------------------------


def _k_sweep(
    config: EfficiencyConfig,
    num_queries: Optional[int],
    methods: Sequence[str],
    statistic: str,
    name: str,
) -> FigureResult:
    queries_per_point = num_queries or config.num_queries
    k_values = list(config.sweeps.k)
    figure = FigureResult(
        name=name,
        x_label="k",
        x_values=[float(k) for k in k_values],
    )
    for dataset_name in config.datasets:
        experiment = _experiment_for(dataset_name, config)
        workload = experiment.make_workload(queries_per_point, config.k)
        panel: Dict[str, List[float]] = {method: [] for method in methods}
        for k in k_values:
            runs = experiment.run(methods, workload, epsilon=config.epsilon, k=k)
            for method in methods:
                run = runs[method]
                panel[method].append(getattr(run, statistic))
        figure.panels[dataset_name] = panel
    return figure


def figure9_time_vs_k(
    config: Optional[EfficiencyConfig] = None, num_queries: Optional[int] = None
) -> FigureResult:
    """Figure 9: query time (ms) of all five methods as k varies."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    return _k_sweep(
        config,
        num_queries,
        EFFICIENCY_METHODS,
        "mean_time_ms",
        "Figure 9 — query time (ms) vs k",
    )


def figure10_evaluation_ratio(
    config: Optional[EfficiencyConfig] = None, num_queries: Optional[int] = None
) -> FigureResult:
    """Figure 10: fraction of active elements evaluated by MTTS/MTTD vs k."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    return _k_sweep(
        config,
        num_queries,
        INDEXED_METHODS,
        "mean_evaluation_ratio",
        "Figure 10 — ratio of evaluated elements vs k",
    )


def figure11_score_vs_k(
    config: Optional[EfficiencyConfig] = None, num_queries: Optional[int] = None
) -> FigureResult:
    """Figure 11: result score of all five methods as k varies."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    return _k_sweep(
        config,
        num_queries,
        EFFICIENCY_METHODS,
        "mean_score",
        "Figure 11 — representativeness score vs k",
    )


# ---------------------------------------------------------------------------
# Figures 12 and 13 — scalability in z and T
# ---------------------------------------------------------------------------


def figure12_time_vs_topics(
    config: Optional[EfficiencyConfig] = None,
    num_queries: Optional[int] = None,
    methods: Sequence[str] = EFFICIENCY_METHODS,
) -> FigureResult:
    """Figure 12: query time (ms) as the number of topics z varies."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    queries_per_point = num_queries or config.num_queries
    z_values = list(config.sweeps.num_topics)
    figure = FigureResult(
        name="Figure 12 — query time (ms) vs number of topics",
        x_label="z",
        x_values=[float(z) for z in z_values],
    )
    for dataset_name in config.datasets:
        panel: Dict[str, List[float]] = {method: [] for method in methods}
        for z in z_values:
            experiment = _experiment_for(dataset_name, config, num_topics=z)
            workload = experiment.make_workload(queries_per_point, config.k)
            runs = experiment.run(methods, workload, epsilon=config.epsilon, k=config.k)
            for method in methods:
                panel[method].append(runs[method].mean_time_ms)
        figure.panels[dataset_name] = panel
    return figure


def figure13_time_vs_window(
    config: Optional[EfficiencyConfig] = None,
    num_queries: Optional[int] = None,
    methods: Sequence[str] = EFFICIENCY_METHODS,
) -> FigureResult:
    """Figure 13: query time (ms) as the window length T varies."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    queries_per_point = num_queries or config.num_queries
    window_hours = list(config.sweeps.window_hours)
    figure = FigureResult(
        name="Figure 13 — query time (ms) vs window length (hours)",
        x_label="T (hours)",
        x_values=[float(hours) for hours in window_hours],
    )
    for dataset_name in config.datasets:
        panel: Dict[str, List[float]] = {method: [] for method in methods}
        for hours in window_hours:
            experiment = _experiment_for(
                dataset_name, config, window_length=hours * 3600
            )
            workload = experiment.make_workload(queries_per_point, config.k)
            runs = experiment.run(methods, workload, epsilon=config.epsilon, k=config.k)
            for method in methods:
                panel[method].append(runs[method].mean_time_ms)
        figure.panels[dataset_name] = panel
    return figure


# ---------------------------------------------------------------------------
# Figure 14 — ranked-list update time
# ---------------------------------------------------------------------------


def figure14_update_time(
    config: Optional[EfficiencyConfig] = None,
) -> FigureResult:
    """Figure 14: per-element ranked-list update time vs z and vs T."""
    config = config or DEFAULT_EFFICIENCY_CONFIG
    z_values = list(config.sweeps.num_topics)
    window_hours = list(config.sweeps.window_hours)
    figure = FigureResult(
        name="Figure 14 — ranked-list update time (ms per element)",
        x_label="sweep value",
        x_values=[float(v) for v in range(max(len(z_values), len(window_hours)))],
    )
    figure.notes["x-axis"] = (
        f"'vs z' panels sweep z over {z_values}; 'vs T' panels sweep T (hours) "
        f"over {window_hours}"
    )
    for dataset_name in config.datasets:
        z_series: List[float] = []
        for z in z_values:
            experiment = _experiment_for(dataset_name, config, num_topics=z)
            z_series.append(experiment.processor.update_timer.mean_ms)
        t_series: List[float] = []
        for hours in window_hours:
            experiment = _experiment_for(dataset_name, config, window_length=hours * 3600)
            t_series.append(experiment.processor.update_timer.mean_ms)
        figure.panels[f"{dataset_name} vs z"] = {"update": z_series}
        figure.panels[f"{dataset_name} vs T"] = {"update": t_series}
    return figure
