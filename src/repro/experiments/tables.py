"""Regenerating the paper's tables.

* Table 3 — dataset statistics (here: of the synthetic stand-in streams).
* Table 5 — the (simulated) user study: representativeness and impact
  ratings per method, with inter-rater kappa.
* Table 6 — quantitative coverage and influence per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import (
    DEFAULT_EFFECTIVENESS_CONFIG,
    EffectivenessConfig,
)
from repro.experiments.reporting import render_table
from repro.experiments.runner import EffectivenessExperiment, load_dataset, prepare_processor


@dataclass
class TableResult:
    """A rendered-able experiment table."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    notes: Dict[str, str] = field(default_factory=dict)

    def render(self, precision: int = 4) -> str:
        """Aligned text rendering of the table (plus any notes)."""
        text = render_table(self.headers, self.rows, title=self.name, precision=precision)
        if self.notes:
            note_lines = [f"  {key}: {value}" for key, value in sorted(self.notes.items())]
            text = text + "\n" + "\n".join(note_lines)
        return text


# ---------------------------------------------------------------------------
# Table 3 — dataset statistics
# ---------------------------------------------------------------------------


def dataset_statistics_table(
    datasets: Sequence[str] = DEFAULT_EFFECTIVENESS_CONFIG.datasets,
    seed: int = DEFAULT_EFFECTIVENESS_CONFIG.seed,
) -> TableResult:
    """Table 3: per-dataset statistics of the synthetic streams."""
    headers = [
        "Dataset",
        "Elements",
        "Vocabulary",
        "Avg length",
        "Avg references",
        "Topics",
        "Duration (h)",
    ]
    rows: List[List[object]] = []
    for name in datasets:
        dataset = load_dataset(name, seed=seed)
        stats = dataset.statistics()
        rows.append(
            [
                name,
                int(stats["num_elements"]),
                int(stats["vocabulary_size"]),
                stats["average_length"],
                stats["average_references"],
                int(stats["num_topics"]),
                stats["duration"] / 3600.0,
            ]
        )
    return TableResult(name="Table 3 — dataset statistics", headers=headers, rows=rows)


# ---------------------------------------------------------------------------
# Shared effectiveness experiment construction
# ---------------------------------------------------------------------------


def _build_effectiveness_experiment(
    dataset_name: str, config: EffectivenessConfig
) -> EffectivenessExperiment:
    scoring = config.scoring_for(dataset_name)
    dataset, processor = prepare_processor(
        dataset_name,
        seed=config.seed,
        window_length=config.window_length,
        bucket_length=config.bucket_length,
        lambda_weight=scoring.lambda_weight,
        eta=scoring.eta,
        replay_fraction=config.replay_fraction,
    )
    return EffectivenessExperiment(
        dataset, processor, epsilon=config.epsilon, seed=config.seed
    )


# ---------------------------------------------------------------------------
# Table 5 — simulated user study
# ---------------------------------------------------------------------------


def user_study_table(
    config: Optional[EffectivenessConfig] = None,
    num_queries: Optional[int] = None,
) -> TableResult:
    """Table 5: simulated user-study ratings per dataset and method."""
    config = config or DEFAULT_EFFECTIVENESS_CONFIG
    queries_per_dataset = num_queries or config.num_user_study_queries
    headers = ["Dataset", "Aspect"] + list(EffectivenessExperiment.METHOD_ORDER)
    rows: List[List[object]] = []
    notes: Dict[str, str] = {}
    for dataset_name in config.datasets:
        experiment = _build_effectiveness_experiment(dataset_name, config)
        queries = experiment.topical_queries(queries_per_dataset, config.user_study_k)
        outcome = experiment.user_study(
            queries,
            evaluators_per_query=config.evaluators_per_query,
            noise=config.evaluator_noise,
        )
        rows.append(
            [dataset_name, "Represent."]
            + [outcome.representativeness[m] for m in EffectivenessExperiment.METHOD_ORDER]
        )
        rows.append(
            [dataset_name, "Impact"]
            + [outcome.impact[m] for m in EffectivenessExperiment.METHOD_ORDER]
        )
        notes[f"{dataset_name} kappa (represent.)"] = (
            f"min={outcome.representativeness_kappa[0]:.2f} "
            f"mean={outcome.representativeness_kappa[1]:.2f} "
            f"max={outcome.representativeness_kappa[2]:.2f}"
        )
        notes[f"{dataset_name} kappa (impact)"] = (
            f"min={outcome.impact_kappa[0]:.2f} "
            f"mean={outcome.impact_kappa[1]:.2f} "
            f"max={outcome.impact_kappa[2]:.2f}"
        )
    return TableResult(
        name="Table 5 — simulated user study (ratings 1-5)",
        headers=headers,
        rows=rows,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Table 6 — quantitative coverage / influence
# ---------------------------------------------------------------------------


def quantitative_table(
    config: Optional[EffectivenessConfig] = None,
    num_queries: Optional[int] = None,
) -> TableResult:
    """Table 6: quantitative coverage and influence per dataset and method."""
    config = config or DEFAULT_EFFECTIVENESS_CONFIG
    queries_per_dataset = num_queries or config.num_quantitative_queries
    headers = ["Dataset", "Metric"] + list(EffectivenessExperiment.METHOD_ORDER)
    rows: List[List[object]] = []
    for dataset_name in config.datasets:
        experiment = _build_effectiveness_experiment(dataset_name, config)
        queries = experiment.mixed_queries(queries_per_dataset, config.quantitative_k)
        summary = experiment.quantitative(queries)
        rows.append(
            [dataset_name, "Coverage"]
            + [summary[m]["coverage"] for m in EffectivenessExperiment.METHOD_ORDER]
        )
        rows.append(
            [dataset_name, "Influence"]
            + [summary[m]["influence"] for m in EffectivenessExperiment.METHOD_ORDER]
        )
    return TableResult(
        name="Table 6 — quantitative coverage / influence",
        headers=headers,
        rows=rows,
    )
