"""Shared experiment machinery: dataset/processor caching and runners.

Every table/figure experiment needs the same ingredients — a synthetic
dataset, a processor that has replayed (part of) the stream, a query
workload, and loops that run algorithms or baselines over the workload.
This module provides them once:

* :func:`load_dataset` / :func:`prepare_processor` — memoised builders so
  repeated benchmark rounds (pytest-benchmark re-runs the same callable) do
  not regenerate streams or replay buckets.
* :class:`EfficiencyExperiment` — runs k-SIR algorithms over a workload and
  collects per-query :class:`repro.core.query.QueryResult` statistics
  (query time, score, evaluated-element ratio).
* :class:`EffectivenessExperiment` — runs the search baselines and the k-SIR
  query over the same snapshots and computes the Table 5 / Table 6 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.algorithms import KSIRAlgorithm, resolve_algorithm
from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery, QueryResult
from repro.core.scoring import ScoringConfig
from repro.datasets.profiles import get_profile
from repro.datasets.synthetic import SyntheticDataset, SyntheticStreamGenerator
from repro.evaluation.metrics import coverage_score, influence_score
from repro.evaluation.user_study import JudgedQuery, SimulatedUserStudy, UserStudyOutcome
from repro.evaluation.workload import WorkloadGenerator
from repro.search import SEARCH_REGISTRY, SearchMethod, SearchRequest
from repro.utils.deprecation import library_managed_construction


@lru_cache(maxsize=32)
def load_dataset(
    profile_name: str, seed: int = 2019, num_topics: Optional[int] = None
) -> SyntheticDataset:
    """Generate (and memoise) a synthetic dataset for a profile name."""
    profile = get_profile(profile_name)
    if num_topics is not None and num_topics != profile.num_topics:
        profile = profile.with_topics(num_topics)
    return SyntheticStreamGenerator(profile, seed=seed).generate()


@lru_cache(maxsize=32)
def prepare_processor(
    profile_name: str,
    seed: int = 2019,
    num_topics: Optional[int] = None,
    window_length: int = 24 * 3600,
    bucket_length: int = 15 * 60,
    lambda_weight: float = 0.5,
    eta: float = 20.0,
    replay_fraction: float = 0.75,
) -> Tuple[SyntheticDataset, KSIRProcessor]:
    """Build a processor and replay the stream up to ``replay_fraction``.

    Returns the dataset and the prepared processor; both are memoised so a
    benchmark that re-runs the same configuration pays the replay cost once.
    The processor should be treated as read-only by callers (queries do not
    mutate it).
    """
    dataset = load_dataset(profile_name, seed=seed, num_topics=num_topics)
    scoring = ScoringConfig(lambda_weight=lambda_weight, eta=eta)
    config = ProcessorConfig(
        window_length=window_length,
        bucket_length=bucket_length,
        scoring=scoring,
    )
    with library_managed_construction():
        processor = KSIRProcessor(dataset.topic_model, config)
    start = dataset.stream.start_time
    end = dataset.stream.end_time
    until = start + int((end - start) * replay_fraction)
    processor.process_stream(dataset.stream, until=until)
    return dataset, processor


def clear_caches() -> None:
    """Drop all memoised datasets and processors (used by tests)."""
    load_dataset.cache_clear()
    prepare_processor.cache_clear()


# ---------------------------------------------------------------------------
# Efficiency experiments (Figures 7-13)
# ---------------------------------------------------------------------------


@dataclass
class EfficiencyRun:
    """Per-algorithm aggregated statistics over one workload."""

    algorithm: str
    results: List[QueryResult] = field(default_factory=list)

    @property
    def mean_time_ms(self) -> float:
        """Average query time in milliseconds."""
        if not self.results:
            return 0.0
        return float(np.mean([result.elapsed_ms for result in self.results]))

    @property
    def mean_score(self) -> float:
        """Average representativeness score of the returned sets."""
        if not self.results:
            return 0.0
        return float(np.mean([result.score for result in self.results]))

    @property
    def mean_evaluation_ratio(self) -> float:
        """Average fraction of active elements evaluated per query."""
        if not self.results:
            return 0.0
        return float(np.mean([result.evaluation_ratio for result in self.results]))


class EfficiencyExperiment:
    """Runs k-SIR algorithms over a workload against a prepared processor."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        processor: KSIRProcessor,
        seed: int = 2019,
    ) -> None:
        self.dataset = dataset
        self.processor = processor
        self.seed = seed

    def make_workload(self, num_queries: int, k: int, mode: str = "frequency"):
        """A query workload bound to this experiment's dataset."""
        generator = WorkloadGenerator(
            self.dataset, k=k, mode=mode, seed=self.seed + 17
        )
        return generator.generate(num_queries)

    def _resolve(self, algorithm: Union[str, KSIRAlgorithm], epsilon: float) -> KSIRAlgorithm:
        return resolve_algorithm(algorithm, epsilon=epsilon)

    def run(
        self,
        algorithms: Sequence[Union[str, KSIRAlgorithm]],
        queries: Sequence[KSIRQuery],
        epsilon: float = 0.1,
        k: Optional[int] = None,
    ) -> Dict[str, EfficiencyRun]:
        """Run every algorithm on every query and collect its statistics.

        The returned mapping is keyed by the *requested* algorithm label
        (the registry name when a string was passed, ``solver.name``
        otherwise) so callers can look results up with the same labels they
        passed in.
        """
        labelled: List[Tuple[str, KSIRAlgorithm]] = []
        for algorithm in algorithms:
            solver = self._resolve(algorithm, epsilon)
            label = algorithm if isinstance(algorithm, str) else solver.name
            labelled.append((label, solver))
        runs: Dict[str, EfficiencyRun] = {
            label: EfficiencyRun(algorithm=solver.name) for label, solver in labelled
        }
        for query in queries:
            effective_query = query if k is None else KSIRQuery(
                k=k, vector=query.vector, time=query.time, keywords=query.keywords
            )
            for label, solver in labelled:
                result = self.processor.query(effective_query, algorithm=solver)
                runs[label].results.append(result)
        return runs


# ---------------------------------------------------------------------------
# Effectiveness experiments (Tables 5 and 6)
# ---------------------------------------------------------------------------


@dataclass
class EffectivenessRecord:
    """Per-method result sets and metrics for one query."""

    query: KSIRQuery
    results: Dict[str, Tuple[int, ...]]
    coverage: Dict[str, float]
    influence: Dict[str, float]


class EffectivenessExperiment:
    """Runs the search baselines and k-SIR on the same snapshots."""

    #: Method order used in reports (matches the paper's Table 5/6 columns).
    METHOD_ORDER: Tuple[str, ...] = ("tfidf", "div", "sumblr", "rel", "ksir")

    def __init__(
        self,
        dataset: SyntheticDataset,
        processor: KSIRProcessor,
        epsilon: float = 0.1,
        seed: int = 2019,
    ) -> None:
        self.dataset = dataset
        self.processor = processor
        self.epsilon = epsilon
        self.seed = seed
        self._baselines: Dict[str, SearchMethod] = {
            name: cls() for name, cls in SEARCH_REGISTRY.items()
        }

    # -- query generation ----------------------------------------------------------

    def topical_queries(self, num_queries: int, k: int) -> List[KSIRQuery]:
        """Trending-topic queries for the user study (topical keywords)."""
        generator = WorkloadGenerator(
            self.dataset, k=k, mode="topical", min_keywords=3, max_keywords=5,
            seed=self.seed + 71,
        )
        return list(generator.generate(num_queries))

    def mixed_queries(self, num_queries: int, k: int) -> List[KSIRQuery]:
        """Frequency-weighted keyword queries for the quantitative analysis."""
        generator = WorkloadGenerator(
            self.dataset, k=k, mode="frequency", seed=self.seed + 37
        )
        return list(generator.generate(num_queries))

    # -- method execution --------------------------------------------------------------

    def _active_elements(self) -> List[SocialElement]:
        return list(self.processor.window.active_elements())

    def _window_elements(self) -> List[SocialElement]:
        window = self.processor.window
        return [window.get(element_id) for element_id in window.window_ids()]

    def run_methods(self, query: KSIRQuery) -> Dict[str, Tuple[int, ...]]:
        """Run every baseline and k-SIR for one query; returns id tuples."""
        candidates = self._active_elements()
        request = SearchRequest(
            elements=candidates,
            keywords=query.keywords,
            query_vector=query.vector,
            k=query.k,
        )
        results: Dict[str, Tuple[int, ...]] = {}
        for name, method in self._baselines.items():
            results[name] = tuple(method.search(request))
        ksir_result = self.processor.query(query, algorithm="mttd", epsilon=self.epsilon)
        results["ksir"] = tuple(ksir_result.element_ids)
        return results

    # -- metrics ------------------------------------------------------------------------

    def evaluate_query(self, query: KSIRQuery) -> EffectivenessRecord:
        """Run all methods for one query and compute Table 6 metrics."""
        candidates = self._active_elements()
        window_elements = self._window_elements()
        by_id = {element.element_id: element for element in candidates}
        results = self.run_methods(query)
        coverage: Dict[str, float] = {}
        influence: Dict[str, float] = {}
        for method, element_ids in results.items():
            selected = [by_id[eid] for eid in element_ids if eid in by_id]
            coverage[method] = coverage_score(selected, candidates, query.vector)
            influence[method] = influence_score(
                element_ids, window_elements, k=query.k
            )
        return EffectivenessRecord(
            query=query, results=results, coverage=coverage, influence=influence
        )

    def quantitative(self, queries: Sequence[KSIRQuery]) -> Dict[str, Dict[str, float]]:
        """Mean coverage / influence per method over a workload (Table 6)."""
        records = [self.evaluate_query(query) for query in queries]
        summary: Dict[str, Dict[str, float]] = {}
        for method in self.METHOD_ORDER:
            summary[method] = {
                "coverage": float(np.mean([record.coverage[method] for record in records])),
                "influence": float(np.mean([record.influence[method] for record in records])),
            }
        return summary

    def user_study(
        self,
        queries: Sequence[KSIRQuery],
        evaluators_per_query: int = 3,
        noise: float = 0.08,
    ) -> UserStudyOutcome:
        """Simulated user study over trending-topic queries (Table 5)."""
        study = SimulatedUserStudy(
            evaluators_per_query=evaluators_per_query,
            noise=noise,
            seed=self.seed + 101,
        )
        candidates = self._active_elements()
        window_elements = self._window_elements()
        by_id = {element.element_id: element for element in candidates}
        judged: List[JudgedQuery] = []
        for query in queries:
            results = self.run_methods(query)
            materialised = {
                method: [by_id[eid] for eid in element_ids if eid in by_id]
                for method, element_ids in results.items()
            }
            judged.append(
                study.judge_query(materialised, query.vector, candidates, window_elements)
            )
        return study.aggregate(judged)
