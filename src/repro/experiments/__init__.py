"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.experiments.config` — experiment parameters (Table 4 defaults,
  scaled to laptop-size synthetic streams) and sweep definitions.
* :mod:`repro.experiments.runner` — dataset/processor caching, stream
  replay, and the efficiency / effectiveness runners shared by all
  experiments.
* :mod:`repro.experiments.tables` — Table 3 (dataset statistics), Table 5
  (simulated user study) and Table 6 (quantitative coverage / influence).
* :mod:`repro.experiments.figures` — Figures 7–14 (efficiency and
  scalability sweeps) plus the ablation studies listed in DESIGN.md.
* :mod:`repro.experiments.reporting` — plain-text rendering of tables and
  figure series, used by the benchmark harness to print the same rows the
  paper reports.
"""

from repro.experiments.config import (
    DEFAULT_EFFECTIVENESS_CONFIG,
    DEFAULT_EFFICIENCY_CONFIG,
    EffectivenessConfig,
    EfficiencyConfig,
    SweepValues,
)
from repro.experiments.figures import (
    FigureResult,
    figure7_time_vs_epsilon,
    figure8_score_vs_epsilon,
    figure9_time_vs_k,
    figure10_evaluation_ratio,
    figure11_score_vs_k,
    figure12_time_vs_topics,
    figure13_time_vs_window,
    figure14_update_time,
)
from repro.experiments.reporting import render_figure, render_table
from repro.experiments.runner import (
    EffectivenessExperiment,
    EfficiencyExperiment,
    load_dataset,
    prepare_processor,
)
from repro.experiments.tables import (
    TableResult,
    dataset_statistics_table,
    quantitative_table,
    user_study_table,
)

__all__ = [
    "DEFAULT_EFFECTIVENESS_CONFIG",
    "DEFAULT_EFFICIENCY_CONFIG",
    "EffectivenessConfig",
    "EffectivenessExperiment",
    "EfficiencyConfig",
    "EfficiencyExperiment",
    "FigureResult",
    "SweepValues",
    "TableResult",
    "dataset_statistics_table",
    "figure7_time_vs_epsilon",
    "figure8_score_vs_epsilon",
    "figure9_time_vs_k",
    "figure10_evaluation_ratio",
    "figure11_score_vs_k",
    "figure12_time_vs_topics",
    "figure13_time_vs_window",
    "figure14_update_time",
    "load_dataset",
    "prepare_processor",
    "quantitative_table",
    "render_figure",
    "render_table",
    "user_study_table",
]
